"""Using the library's lower-level API directly.

Shows how to build a custom split-federated-learning setup without the
experiment runner: construct a model, split it at a chosen layer, create
workers and a simulated cluster, plug in a custom control policy and drive
the training engine by hand.  This is the path a downstream user would take
to prototype a new selection or batching strategy.

Usage::

    python examples/custom_split_learning.py
"""

import numpy as np

from repro.config import ExperimentConfig
from repro.core.batching import regulate_batch_sizes
from repro.core.controller import ControlContext, RoundPlan
from repro.core.engine import SplitTrainingEngine
from repro.core.worker import SplitWorker
from repro.data.partition import partition_dataset
from repro.data.synthetic import make_speech
from repro.nn.models import build_cnn_s, default_split_layer
from repro.nn.split import split_model
from repro.simulation.cluster import build_cluster


class TopKFastestPolicy:
    """A custom control policy: merge features of the K fastest workers.

    Demonstrates the policy interface: any object with ``merge_features``,
    ``aggregate_every_iteration`` and ``plan_round`` can drive the engine.
    """

    merge_features = True
    aggregate_every_iteration = False

    def __init__(self, k: int) -> None:
        self.k = k

    def plan_round(self, context: ControlContext) -> RoundPlan:
        order = np.argsort(context.per_sample_durations)
        selected = sorted(int(worker) for worker in order[: self.k])
        batch_sizes = regulate_batch_sizes(
            context.per_sample_durations, context.max_batch_size
        )
        return RoundPlan(
            selected=selected,
            batch_sizes={worker: int(batch_sizes[worker]) for worker in selected},
        )


def main() -> None:
    config = ExperimentConfig(
        dataset="speech",
        model="cnn_s",
        num_workers=8,
        num_rounds=4,
        local_iterations=6,
        non_iid_level=5.0,
        max_batch_size=16,
        base_batch_size=8,
        learning_rate=0.08,
        train_samples=640,
        test_samples=160,
        seed=3,
    )

    # 1. Data: synthetic Google-Speech analogue, Dirichlet-partitioned.
    data = make_speech(config.train_samples, config.test_samples, seed=config.seed)
    shards = partition_dataset(
        data.train, config.num_workers, config.non_iid_level, seed=config.seed
    )

    # 2. Model: CNN-S split after its 4th conv layer (as in the paper).
    model = build_cnn_s(width=0.5, seed=config.seed)
    split = split_model(model, default_split_layer("cnn_s", model))
    print(f"bottom layers: {len(split.bottom)}, top layers: {len(split.top)}")

    # 3. Workers and the simulated Jetson/WiFi cluster.
    workers = [
        SplitWorker(i, data.train.subset(shard), data.num_classes, seed=i)
        for i, shard in enumerate(shards)
    ]
    cluster = build_cluster(config.num_workers, config.bandwidth_budget_mbps,
                            seed=config.seed)

    # 4. A custom policy plugged into the shared training engine.
    engine = SplitTrainingEngine(
        config=config,
        split=split,
        workers=workers,
        cluster=cluster,
        data=data,
        policy=TopKFastestPolicy(k=5),
    )
    history = engine.run()

    for record in history:
        print(f"round {record.round_index}: "
              f"selected={record.num_selected} "
              f"batch={record.total_batch} "
              f"acc={record.test_accuracy:.3f} "
              f"time={record.sim_time:.1f}s")


if __name__ == "__main__":
    main()
