"""Simulate a 100,000-worker fleet on a laptop with the lazy population.

With ``population="lazy"`` the experiment registers every worker as a
compact metadata row in a sharded registry (:mod:`repro.population`) and
materialises live worker objects only for each round's selected cohort:
bottom weights are rebuilt from the global model plus a bounded delta
cache, data shards are drawn lazily from per-worker RNG streams, and the
cohort is released at round end.  Peak memory tracks the cohort size --
here a 64-worker candidate pool -- not the registered population, and the
trajectory is bit-exact against the eager path at any size where eager
still fits in memory.

Usage::

    python examples/population_scale.py               # 100k workers, ~10 s
    POPULATION_WORKERS=1000000 python examples/population_scale.py
"""

import os
import time

from repro import ExperimentConfig
from repro.api.session import Session
from repro.experiments.reporting import format_table
from repro.metrics.summary import cache_hit_rate, participation_summary


def main() -> None:
    num_workers = int(os.environ.get("POPULATION_WORKERS") or "100000")
    config = ExperimentConfig(
        dataset="blobs",
        model="mlp",
        algorithm="mergesfl",
        num_workers=num_workers,
        num_rounds=8,
        local_iterations=2,
        max_batch_size=32,
        base_batch_size=16,
        selection_fraction=0.25,
        bandwidth_budget_mbps=40.0,
        # The population knobs: lazy materialisation, a 64-worker candidate
        # pool per round and a 32-entry delta cache for returning workers.
        population="lazy",
        population_candidates=64,
        population_cache=32,
        seed=7,
        extras={
            # Shards are sampled from per-worker RNG streams (O(1) in the
            # population); partitioning a small train set over 100k workers
            # would yield empty shards.
            "population_sharding": "sampled",
            "auto_budget": False,
            "population_live_devices": 4096,
        },
    )

    print(f"registering {num_workers:,} workers ...")
    start = time.perf_counter()
    session = Session(config)
    print(f"  built in {time.perf_counter() - start:.3f}s "
          "(rows, not worker objects)")

    start = time.perf_counter()
    session.run()
    elapsed = time.perf_counter() - start

    pool = session.algorithm.engine.pool
    stats = pool.stats()
    participation = participation_summary(session.history)
    rows = [
        ["registered workers", f"{stats['registered']:,}"],
        ["rounds", str(config.num_rounds)],
        ["wall-clock / round", f"{elapsed / config.num_rounds:.3f}s"],
        ["peak live workers", str(stats["peak_live"])],
        ["live after run", str(stats["live"])],
        ["distinct participants", str(participation["distinct_workers"])],
        ["mean cohort", f"{participation['mean_cohort']:.1f}"],
        ["delta-cache hit rate", f"{cache_hit_rate(session.history):.2f}"],
        ["final accuracy", f"{session.history.records[-1].test_accuracy:.3f}"],
    ]
    print()
    print(format_table(["metric", "value"], rows,
                       title=f"Lazy population at {num_workers:,} workers"))


if __name__ == "__main__":
    main()
