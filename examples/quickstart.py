"""Quickstart: train MergeSFL on a synthetic CIFAR-10 analogue.

Drives MergeSFL through the steppable :class:`repro.Session` API: per-round
progress streams through an ``on_round_end`` hook, and the run is split in
two halves with a JSON checkpoint round trip in between to demonstrate
bit-exact resume.  Takes well under a minute on a laptop CPU.

Usage::

    python examples/quickstart.py

Set ``QUICKSTART_TINY=1`` (used by the CI smoke job) to shrink the run to a
few seconds.
"""

import os
import tempfile

from repro import ExperimentConfig, Session
from repro.metrics.summary import best_accuracy, final_accuracy, mean_waiting_time
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()
    tiny = bool(os.environ.get("QUICKSTART_TINY"))
    config = ExperimentConfig(
        algorithm="mergesfl",
        dataset="cifar10",        # synthetic CIFAR-10 analogue (3x32x32, 10 classes)
        model="alexnet_s",        # scaled-down AlexNet, split after the 5th conv
        num_workers=4 if tiny else 8,
        num_rounds=2 if tiny else 5,
        local_iterations=2 if tiny else 6,     # tau
        non_iid_level=10.0,       # p = 1/delta as in the paper
        max_batch_size=16,        # D, assigned to the fastest worker
        base_batch_size=8,
        learning_rate=0.08,
        model_width=0.25 if tiny else 0.5,
        train_samples=160 if tiny else 640,
        test_samples=80 if tiny else 200,
        seed=42,
    )

    session = Session.from_config(config)

    print(f"MergeSFL on {config.dataset} (non-IID p={config.non_iid_level:g})")
    print(f"{'round':>5} {'sim time (s)':>12} {'waiting (s)':>11} "
          f"{'traffic (MB)':>12} {'accuracy':>9}")

    @session.on_round_end
    def report(session, record):
        print(f"{record.round_index:>5} {record.sim_time:>12.1f} "
              f"{record.waiting_time:>11.2f} {record.traffic_mb:>12.1f} "
              f"{record.test_accuracy:>9.3f}")

    # First half of the schedule, then a checkpoint round trip: the resumed
    # session continues bit-exactly where the saved one stopped.
    session.run(config.num_rounds // 2)
    checkpoint = os.path.join(tempfile.mkdtemp(), "quickstart.ckpt.json")
    session.save_checkpoint(checkpoint)

    resumed = Session.load_checkpoint(checkpoint)
    resumed.on_round_end(report)
    history = resumed.run()          # the remaining rounds

    print(f"\nresumed from {checkpoint} after round {config.num_rounds // 2 - 1}")
    print(f"final accuracy : {final_accuracy(history):.3f}")
    print(f"best accuracy  : {best_accuracy(history):.3f}")
    print(f"avg waiting    : {mean_waiting_time(history):.2f} s/round")
    print(f"total traffic  : {history.records[-1].traffic_mb:.1f} MB")


if __name__ == "__main__":
    main()
