"""Quickstart: train MergeSFL on a synthetic CIFAR-10 analogue.

Runs MergeSFL end to end on the simulated edge-computing cluster and prints
the per-round progress plus a summary.  Takes well under a minute on a
laptop CPU.

Usage::

    python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment
from repro.metrics.summary import best_accuracy, final_accuracy, mean_waiting_time
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()
    config = ExperimentConfig(
        algorithm="mergesfl",
        dataset="cifar10",        # synthetic CIFAR-10 analogue (3x32x32, 10 classes)
        model="alexnet_s",        # scaled-down AlexNet, split after the 5th conv
        num_workers=8,
        num_rounds=5,
        local_iterations=6,       # tau
        non_iid_level=10.0,       # p = 1/delta as in the paper
        max_batch_size=16,        # D, assigned to the fastest worker
        base_batch_size=8,
        learning_rate=0.08,
        model_width=0.5,
        train_samples=640,
        test_samples=200,
        seed=42,
    )

    history = run_experiment(config)

    print(f"\nMergeSFL on {config.dataset} (non-IID p={config.non_iid_level:g})")
    print(f"{'round':>5} {'sim time (s)':>12} {'waiting (s)':>11} "
          f"{'traffic (MB)':>12} {'accuracy':>9}")
    for record in history:
        print(f"{record.round_index:>5} {record.sim_time:>12.1f} "
              f"{record.waiting_time:>11.2f} {record.traffic_mb:>12.1f} "
              f"{record.test_accuracy:>9.3f}")

    print(f"\nfinal accuracy : {final_accuracy(history):.3f}")
    print(f"best accuracy  : {best_accuracy(history):.3f}")
    print(f"avg waiting    : {mean_waiting_time(history):.2f} s/round")
    print(f"total traffic  : {history.records[-1].traffic_mb:.1f} MB")


if __name__ == "__main__":
    main()
