"""Statistical heterogeneity and the MergeSFL ablation.

Sweeps the non-IID level p for MergeSFL and its two ablated variants
(without feature merging, without batch-size regulation), mirroring the
paper's Fig. 10/11, and prints the Fig. 4-style gradient-direction analysis
that motivates feature merging.

Usage::

    python examples/noniid_ablation.py
"""

from repro import ExperimentConfig, run_experiment
from repro.experiments.figures import figure4_gradient_directions
from repro.experiments.reporting import format_table
from repro.metrics.summary import final_accuracy, mean_waiting_time


def gradient_direction_demo() -> None:
    """Fig. 4: merged features produce SGD-aligned top-model gradients."""
    result = figure4_gradient_directions(
        dataset="cifar10", num_workers=5, batch_size=12, model_width=0.4
    )
    print(format_table(
        ["approach", "cosine similarity to centralized SGD"],
        [["SFL with feature merging", f"{result.cosine_fm:.4f}"],
         ["typical SFL (per-worker)", f"{result.cosine_t:.4f}"]],
        title="Gradient-direction analysis (one iteration, non-IID mini-batches)",
    ))
    print()


def main() -> None:
    gradient_direction_demo()

    base = ExperimentConfig(
        dataset="cifar10",
        model="alexnet_s",
        num_workers=8,
        num_rounds=5,
        local_iterations=6,
        max_batch_size=16,
        base_batch_size=8,
        learning_rate=0.08,
        model_width=0.4,
        train_samples=560,
        test_samples=160,
        seed=13,
    )

    rows = []
    for level in (0.0, 5.0, 10.0):
        for algorithm in ("mergesfl", "mergesfl_no_fm", "mergesfl_no_br"):
            history = run_experiment(
                base.replace(algorithm=algorithm, non_iid_level=level)
            )
            rows.append([
                f"p={level:g}",
                algorithm,
                f"{final_accuracy(history):.3f}",
                f"{mean_waiting_time(history):.2f}",
                f"{history.records[-1].sim_time:.1f}",
            ])
    print(format_table(
        ["non-IID level", "variant", "final acc", "avg wait (s)", "total time (s)"],
        rows, title="MergeSFL ablation across non-IID levels (CIFAR-10 analogue)",
    ))


if __name__ == "__main__":
    main()
