"""Declarative sweeps with the Study API: parallel, resumable trials.

Builds the paper's Fig. 10-style grid (non-IID levels x algorithms) as a
:class:`repro.study.Study`, runs it with trial-level parallelism, persists
every completed trial to a :class:`repro.study.StudyStore`, and then calls
``resume()`` to show that a re-run (e.g. after a crash or Ctrl-C) only
executes what is missing.  Shipped callbacks checkpoint each trial every
round and stream records to JSONL, so even a trial killed mid-run continues
bit-exactly from its last round.

Usage::

    python examples/sweep_study.py             # full demo, ~1 min on CPU
    SWEEP_TINY=1 python examples/sweep_study.py
    SWEEP_JOBS=4 python examples/sweep_study.py

Re-running the script with the same settings resumes instead of recomputing:
delete ``sweep_results/`` to start over.
"""

import os

from repro import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.metrics.summary import final_accuracy, mean_waiting_time
from repro.study import JSONLLogger, Study, StudyRunner, StudyStore


def build_study(tiny: bool) -> Study:
    base = ExperimentConfig(
        dataset="blobs" if tiny else "cifar10",
        model="mlp" if tiny else "alexnet_s",
        num_workers=4 if tiny else 8,
        num_rounds=2 if tiny else 5,
        local_iterations=2 if tiny else 6,
        max_batch_size=16,
        base_batch_size=8,
        learning_rate=0.08,
        model_width=0.25 if tiny else 0.4,
        train_samples=200 if tiny else 560,
        test_samples=64 if tiny else 160,
        seed=13,
    )
    return Study.grid("noniid-sweep", base, axes={
        "non_iid_level": (0.0, 10.0),
        "algorithm": ("mergesfl", "mergesfl_no_fm"),
    })


def main() -> None:
    tiny = bool(os.environ.get("SWEEP_TINY"))
    n_jobs = int(os.environ.get("SWEEP_JOBS") or "2")
    study = build_study(tiny)
    store = StudyStore("sweep_results")

    runner = StudyRunner(
        study,
        store=store,
        n_jobs=n_jobs,
        checkpoint_every=1,   # killed trials resume mid-run, bit-exactly
        callbacks=lambda trial: [
            JSONLLogger(f"sweep_results/{study.name}/logs/{trial.name}.jsonl"),
        ],
    )

    already_done = len(store.completed(study.name))
    if already_done:
        print(f"store has {already_done}/{len(study)} trials; resuming the rest")
        results = runner.resume()
    else:
        print(f"running {len(study)} trials with n_jobs={n_jobs}")
        results = runner.run()

    rows = [
        [f"p={trial.tags['non_iid_level']:g}",
         trial.tags["algorithm"],
         f"{final_accuracy(results[trial.name].history):.3f}",
         f"{mean_waiting_time(results[trial.name].history):.2f}"]
        for trial in study
    ]
    print()
    print(format_table(
        ["non-IID level", "algorithm", "final acc", "avg wait (s)"],
        rows, title=f"Study {study.name!r}: {len(results)} trials",
    ))
    print("\nresults persisted under sweep_results/ -- re-run to resume, "
          "delete the directory to start over")


if __name__ == "__main__":
    main()
