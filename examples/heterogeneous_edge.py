"""System heterogeneity: compare waiting time and completion time.

Reproduces the spirit of the paper's Fig. 9 on one dataset: the fixed-batch
approaches (LocFedMix-SL, FedAvg) leave fast workers idle, while batch-size
regulation (AdaSFL, MergeSFL) aligns per-worker iteration times on the
heterogeneous Jetson cluster.

Usage::

    python examples/heterogeneous_edge.py
"""

from repro import ExperimentConfig, run_experiment
from repro.experiments.reporting import format_table
from repro.metrics.summary import final_accuracy, mean_waiting_time
from repro.simulation.cluster import build_cluster


def show_cluster_heterogeneity() -> None:
    """Print the per-sample compute-time spread of a simulated cluster."""
    cluster = build_cluster(num_workers=12, bandwidth_budget_mbps=100, seed=1)
    times = cluster.compute_times(forward_flops=2e6)
    rows = [
        [device.worker_id, device.profile.name, device.mode,
         f"{device.bandwidth_mbps:.1f}", f"{1000 * mu:.2f}"]
        for device, mu in zip(cluster.devices, times)
    ]
    print(format_table(
        ["worker", "device", "mode", "bandwidth (Mb/s)", "ms / sample"],
        rows, title="Simulated heterogeneous edge cluster",
    ))
    print(f"compute-time spread: {times.max() / times.min():.1f}x\n")


def main() -> None:
    show_cluster_heterogeneity()

    config = ExperimentConfig(
        dataset="har",
        model="cnn_h",
        num_workers=10,
        num_rounds=5,
        local_iterations=6,
        non_iid_level=0.0,
        max_batch_size=16,
        base_batch_size=8,
        learning_rate=0.08,
        model_width=0.5,
        train_samples=800,
        test_samples=200,
        seed=21,
    )

    rows = []
    for algorithm in ("mergesfl", "adasfl", "locfedmix_sl", "fedavg"):
        history = run_experiment(config.replace(algorithm=algorithm))
        rows.append([
            algorithm,
            f"{final_accuracy(history):.3f}",
            f"{mean_waiting_time(history):.2f}",
            f"{history.records[-1].sim_time:.1f}",
            f"{history.records[-1].traffic_mb:.1f}",
        ])
    print(format_table(
        ["approach", "final acc", "avg wait (s)", "total time (s)", "traffic (MB)"],
        rows, title="System heterogeneity on the HAR analogue (IID)",
    ))


if __name__ == "__main__":
    main()
