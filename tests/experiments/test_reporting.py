"""Tests for the plain-text reporting tables."""

from repro.experiments.reporting import format_comparison, format_table


class TestFormatTable:
    def test_basic_layout_and_title(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]],
                            title="My table")
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert lines[1].split() == ["name", "value"]
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].split() == ["a", "1"]
        assert lines[4].split() == ["bb", "22"]

    def test_no_title_starts_with_headers(self):
        text = format_table(["h"], [["x"]])
        assert text.splitlines()[0] == "h"

    def test_floats_get_four_significant_digits(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text
        assert "0.123456789" not in text

    def test_none_renders_as_dash(self):
        text = format_table(["x"], [[None]])
        assert text.splitlines()[-1].strip() == "-"

    def test_columns_align_to_widest_cell(self):
        text = format_table(["h", "k"], [["wide-cell", "x"], ["a", "y"]])
        lines = text.splitlines()
        # Every row pads the first column to the widest cell's width.
        assert lines[-1].index("y") == lines[-2].index("x")

    def test_empty_rows_render_headers_only(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestFormatComparison:
    def test_renders_compare_histories_shape(self):
        table = {
            "mergesfl": {
                "final_accuracy": 0.9, "best_accuracy": 0.91,
                "time_to_target_s": 12.0, "traffic_to_target_mb": 3.5,
                "mean_waiting_time_s": 0.2, "total_time_s": 40.0,
            },
            "fedavg": {
                "final_accuracy": 0.8, "best_accuracy": 0.82,
                "time_to_target_s": None, "traffic_to_target_mb": None,
                "mean_waiting_time_s": 0.5, "total_time_s": 60.0,
            },
        }
        text = format_comparison(table, title="cmp")
        lines = text.splitlines()
        assert lines[0] == "cmp"
        assert "approach" in lines[1] and "final_acc" in lines[1]
        assert any(line.startswith("mergesfl") for line in lines)
        fedavg_line = next(line for line in lines if line.startswith("fedavg"))
        assert "-" in fedavg_line  # the None cells

    def test_missing_metrics_render_as_dash(self):
        text = format_comparison({"x": {}})
        assert text.splitlines()[-1].split()[0] == "x"
        assert "-" in text.splitlines()[-1]
