"""Tests for ExperimentConfig and the experiment runner."""

import numpy as np
import pytest

from repro.config import KNOWN_ALGORITHMS, ExperimentConfig
from repro.exceptions import ConfigurationError
from repro.experiments.reporting import format_comparison, format_table
from repro.experiments.runner import (
    build_components,
    build_model_for,
    run_experiment,
)
from repro.metrics.summary import compare_histories


class TestExperimentConfig:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.algorithm == "mergesfl"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(algorithm="sgd")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="mnist")

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_workers=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(learning_rate=-0.1)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(non_iid_level=-1)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(lr_decay=1.5)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(max_grad_norm=0.0)

    def test_cross_field_batch_sizes_validated(self):
        """Regression: max < base used to pass silently, leaving the
        batch-size regulator an empty [base, max] range."""
        with pytest.raises(ConfigurationError, match="max_batch_size"):
            ExperimentConfig(max_batch_size=8, base_batch_size=16)
        # Equal sizes are a valid (degenerate) regulation range.
        config = ExperimentConfig(max_batch_size=16, base_batch_size=16)
        assert config.max_batch_size == config.base_batch_size
        # replace() re-validates: a consistent config cannot be made
        # inconsistent through the copy API either.
        with pytest.raises(ConfigurationError, match="max_batch_size"):
            ExperimentConfig().replace(max_batch_size=4)

    def test_negative_optimiser_fields_rejected(self):
        """Regression: negative momentum/weight_decay passed validation and
        only blew up (or silently corrupted updates) deep in the optimiser."""
        with pytest.raises(ConfigurationError, match="momentum"):
            ExperimentConfig(momentum=-0.1)
        with pytest.raises(ConfigurationError, match="weight_decay"):
            ExperimentConfig(weight_decay=-1e-4)
        ExperimentConfig(momentum=0.9, weight_decay=1e-4)  # valid values pass

    def test_dict_roundtrip(self):
        config = ExperimentConfig(dataset="har", model="cnn_h", num_workers=7)
        clone = ExperimentConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_collects_unknown_keys_into_extras(self):
        config = ExperimentConfig.from_dict({"dataset": "blobs", "model": "mlp",
                                             "mystery_knob": 3})
        assert config.extras["mystery_knob"] == 3

    def test_replace(self):
        config = ExperimentConfig()
        changed = config.replace(num_rounds=99)
        assert changed.num_rounds == 99
        assert config.num_rounds != 99

    def test_all_known_algorithms_construct(self):
        for algorithm in KNOWN_ALGORITHMS:
            ExperimentConfig(algorithm=algorithm)


class TestRunnerAssembly:
    def test_build_components_shapes(self, fast_config):
        components = build_components(fast_config)
        assert len(components.workers) == fast_config.num_workers
        assert len(components.cluster) == fast_config.num_workers
        assert components.bandwidth_budget > 0
        total = sum(worker.num_samples for worker in components.workers)
        assert total == fast_config.train_samples

    def test_build_model_for_matches_dataset(self, fast_config):
        components = build_components(fast_config)
        model = build_model_for(fast_config, components.data)
        out = model.forward(components.data.test.data[:2])
        assert out.shape == (2, components.data.num_classes)

    def test_mismatched_model_dataset_rejected(self):
        config = ExperimentConfig(dataset="blobs", model="alexnet_s")
        with pytest.raises(ConfigurationError):
            build_components(config)

    def test_explicit_bandwidth_budget(self, fast_config):
        config = fast_config.replace(extras={"auto_budget": False},
                                     bandwidth_budget_mbps=42.0)
        components = build_components(config)
        assert components.bandwidth_budget == 42.0

    def test_run_experiment_deterministic(self, fast_config):
        first = run_experiment(fast_config)
        second = run_experiment(fast_config)
        assert np.allclose(first.accuracies, second.accuracies)
        assert np.allclose(first.times, second.times)

    def test_run_experiment_different_seeds_differ(self, fast_config):
        first = run_experiment(fast_config)
        second = run_experiment(fast_config.replace(seed=99))
        # A different seed changes the cluster, partition and initial model,
        # so the simulated timeline and losses must differ (accuracy may
        # saturate on the easy smoke-test task).
        times_differ = not np.allclose(first.times, second.times)
        losses_differ = not np.allclose(
            [r.test_loss for r in first.records],
            [r.test_loss for r in second.records],
        )
        assert times_differ or losses_differ


class TestReporting:
    def test_format_table_contains_cells(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", None]], title="T")
        assert "T" in text and "2.5" in text and "x" in text and "-" in text

    def test_format_comparison_renders_all_rows(self, fast_config):
        history = run_experiment(fast_config)
        table = compare_histories({"mergesfl": history})
        text = format_comparison(table, title="cmp")
        assert "mergesfl" in text and "final_acc" in text
