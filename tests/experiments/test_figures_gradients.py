"""Tests for the per-figure entry points and the Fig. 4 gradient analysis."""

import numpy as np
import pytest

from repro.data.synthetic import make_blobs
from repro.experiments import figures
from repro.experiments.gradients import compare_gradient_directions
from repro.nn.models import build_mlp
from repro.nn.split import split_model
from repro.utils.rng import new_rng

#: Overrides that make figure entry points fast enough for unit tests.
TINY = {
    "num_workers": 4,
    "num_rounds": 2,
    "local_iterations": 2,
    "train_samples": 200,
    "test_samples": 60,
    "model_width": 0.25,
}


def _skewed_batches(num_workers=4, batch=8, seed=0):
    data = make_blobs(train_samples=400, test_samples=50, seed=seed)
    rng = new_rng(seed)
    batches = []
    for worker in range(num_workers):
        cls = worker % data.num_classes
        pool = np.flatnonzero(data.train.targets == cls)
        picked = rng.choice(pool, size=batch, replace=False)
        batches.append((data.train.data[picked], data.train.targets[picked]))
    return batches


class TestGradientComparison:
    def test_merged_gradient_aligns_better_than_sequential(self, tiny_mlp):
        split = split_model(tiny_mlp, 2)
        result = compare_gradient_directions(split, _skewed_batches())
        assert -1.0 <= result.cosine_t <= 1.0
        assert result.cosine_fm >= result.cosine_t - 1e-9
        assert result.cosine_fm > 0.95

    def test_pca_points_are_2d(self, tiny_mlp):
        split = split_model(tiny_mlp, 2)
        result = compare_gradient_directions(split, _skewed_batches())
        assert {"sgd", "sfl_fm", "sfl_t"} <= set(result.pca_points)
        assert all(point.shape == (2,) for point in result.pca_points.values())

    def test_bottom_cosines_one_per_worker(self, tiny_mlp):
        split = split_model(tiny_mlp, 2)
        result = compare_gradient_directions(split, _skewed_batches(num_workers=3))
        assert len(result.bottom_cosines) == 3

    def test_requires_two_batches(self, tiny_mlp):
        split = split_model(tiny_mlp, 2)
        with pytest.raises(ValueError):
            compare_gradient_directions(split, _skewed_batches(num_workers=1))


class TestFigureEntryPoints:
    def test_table2_rows(self):
        rows = figures.table2_device_specifications()
        assert {row["device"] for row in rows} == {
            "jetson_tx2", "jetson_nx", "jetson_agx",
        }
        assert all(row["memory_gb"] > 0 for row in rows)

    def test_figure2_3_motivation_rows(self):
        result = figures.figure2_3_motivation(dataset="har", **TINY)
        assert {row["variant"] for row in result["rows"]} == set(figures.MOTIVATION_VARIANTS)
        assert all(row["total_time_s"] > 0 for row in result["rows"])

    def test_figure4_runs_on_cifar_analogue(self):
        result = figures.figure4_gradient_directions(num_workers=3, batch_size=8,
                                                     model_width=0.25)
        assert result.cosine_fm > result.cosine_t - 1e-9

    def test_figure6_structure(self):
        result = figures.figure6_iid_accuracy(datasets=("har",), **TINY)
        assert "har" in result
        assert set(result["har"]["histories"]) == set(figures.FIVE_APPROACHES)

    def test_figure10_rows_cover_levels_and_approaches(self):
        result = figures.figure10_noniid_levels(
            dataset="har", levels=(0.0, 10.0),
            approaches=("mergesfl", "fedavg"), **TINY,
        )
        rows = result["rows"]
        assert len(rows) == 4
        assert {row["non_iid_level"] for row in rows} == {0.0, 10.0}

    def test_figure11_ablation_structure(self):
        result = figures.figure11_ablation(dataset="har", **TINY)
        assert set(result) == {"iid", "non_iid"}
        assert set(result["iid"]["histories"]) == {
            "mergesfl", "mergesfl_no_fm", "mergesfl_no_br",
        }

    def test_figure12_scalability_rows(self):
        result = figures.figure12_scalability(dataset="har", scales=(4, 6), **{
            key: value for key, value in TINY.items() if key != "num_workers"
        })
        assert [row["num_workers"] for row in result["rows"]] == [4, 6]
        assert all(row["final_accuracy"] >= 0 for row in result["rows"])

    def test_figure7_structure(self):
        result = figures.figure7_noniid_accuracy(
            datasets=("har",), approaches=("mergesfl", "fedavg"), **TINY
        )
        assert set(result["har"]["histories"]) == {"mergesfl", "fedavg"}
        assert set(result["har"]["comparison"]) == {"mergesfl", "fedavg"}

    def test_figure8_reuses_supplied_histories(self):
        histories = figures.run_approaches(
            "har", approaches=("mergesfl", "fedavg"), non_iid_level=10.0, **TINY
        )
        result = figures.figure8_network_traffic({"har": histories})
        assert result["histories"] == {"har": histories}
        assert {row["approach"] for row in result["rows"]} == {"mergesfl", "fedavg"}
        # Three targets (50%, 75%, 100% of the common ceiling) per approach.
        assert len(result["rows"]) == 6

    def test_figure9_rows_one_per_approach(self):
        histories = figures.run_approaches(
            "har", approaches=("mergesfl", "fedavg"), non_iid_level=10.0, **TINY
        )
        result = figures.figure9_waiting_time({"har": histories})
        assert [row["approach"] for row in result["rows"]] == ["mergesfl", "fedavg"]
        assert all(row["mean_waiting_time_s"] >= 0 for row in result["rows"])


class TestStudyBackedFigures:
    """The figure entry points are Studies underneath (same shapes, and
    n_jobs > 1 must not change any result)."""

    def test_approaches_study_trials_and_tags(self):
        study = figures.approaches_study(
            "har", approaches=("mergesfl", "fedavg"), non_iid_level=10.0, **TINY
        )
        assert study.names() == ["mergesfl", "fedavg"]
        trial = study.trial("fedavg")
        assert trial.config.algorithm == "fedavg"
        assert trial.config.non_iid_level == 10.0
        assert trial.tags["dataset"] == "har"

    def test_run_approaches_parallel_matches_serial(self):
        from dataclasses import asdict

        serial = figures.run_approaches(
            "blobs", approaches=("mergesfl", "fedavg"), **TINY
        )
        parallel = figures.run_approaches(
            "blobs", approaches=("mergesfl", "fedavg"), n_jobs=2, **TINY
        )
        for name in serial:
            assert ([asdict(r) for r in serial[name].records]
                    == [asdict(r) for r in parallel[name].records])

    def test_run_approaches_with_store_is_resumable(self, tmp_path):
        from repro.study import StudyStore

        store = StudyStore(tmp_path)
        first = figures.run_approaches(
            "blobs", approaches=("mergesfl",), store=store, **TINY
        )
        again = figures.run_approaches(
            "blobs", approaches=("mergesfl",), store=store, **TINY
        )
        assert first["mergesfl"].to_dict() == again["mergesfl"].to_dict()
