"""Tests for the plugin registries and out-of-tree extension."""

import numpy as np
import pytest

from repro.api.registry import (
    ALGORITHMS,
    DATASETS,
    MODELS,
    POLICIES,
    Registry,
    register_algorithm,
    register_dataset,
    register_model,
)
from repro.config import KNOWN_ALGORITHMS, KNOWN_DATASETS, KNOWN_MODELS, ExperimentConfig
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("thing")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry
        assert len(registry) == 1

    def test_decorator_form_returns_target(self):
        registry = Registry("thing")

        @registry.register("f", flavour="test")
        def factory():
            return 42

        assert factory() == 42
        assert registry.get("f") is factory
        assert registry.metadata("f") == {"flavour": "test"}

    def test_duplicate_rejected_unless_override(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("a", 2)
        registry.register("a", 2, override=True)
        assert registry.get("a") == 2

    def test_unknown_name_error_lists_and_suggests(self):
        registry = Registry("gadget")
        registry.register("mergesfl", 1)
        with pytest.raises(ConfigurationError) as excinfo:
            registry.get("mergsfl")
        message = str(excinfo.value)
        assert "unknown gadget" in message
        assert "did you mean 'mergesfl'" in message

    def test_empty_name_rejected(self):
        registry = Registry("thing")
        with pytest.raises(ConfigurationError):
            registry.register("", 1)

    def test_names_sorted_and_iterable(self):
        registry = Registry("thing")
        registry.register("b", 2)
        registry.register("a", 1)
        assert registry.names() == ["a", "b"]
        assert list(registry) == ["a", "b"]

    def test_unregister(self):
        registry = Registry("thing")
        registry.register("a", 1)
        registry.unregister("a")
        assert "a" not in registry
        with pytest.raises(ConfigurationError):
            registry.unregister("a")

    def test_populate_hook_runs_once_before_first_lookup(self):
        calls = []

        def populate():
            calls.append(1)

        registry = Registry("thing", populate=populate)
        assert "x" not in registry
        assert "x" not in registry
        assert calls == [1]

    def test_entry_registered_before_population_wins_over_builtin(self):
        """A plugin overriding a built-in name before the first lookup must
        not crash population, and the plugin's entry must survive it."""
        registry = Registry("thing", populate=lambda: registry.register("a", "builtin"))
        registry.register("a", "plugin", override=True)
        assert registry.get("a") == "plugin"

    def test_accidental_builtin_collision_before_population_errors(self):
        """Without override=True, a pre-population registration that
        collides with a built-in name must error, not silently shadow it."""
        registry = Registry("thing", populate=lambda: registry.register("a", "builtin"))
        registry.register("a", "plugin")        # accidental collision
        with pytest.raises(ConfigurationError, match="collides with a built-in"):
            registry.get("a")

    def test_duplicate_within_one_population_attempt_errors(self):
        """Two built-in modules claiming the same name in a single
        population run must error, not silently last-win."""
        holder: dict = {}

        def populate():
            holder["registry"].register("a", "module-one")
            holder["registry"].register("a", "module-two")

        registry = Registry("thing", populate=populate)
        holder["registry"] = registry
        with pytest.raises(ConfigurationError, match="registered twice"):
            registry.names()

    def test_failed_population_recovers_after_user_fixes_collision(self):
        """Entries left behind by an aborted population must not poison the
        retry: once the colliding entry is overridden, population completes
        and both built-in and plugin entries resolve."""
        holder: dict = {}

        def populate():
            holder["registry"].register("a", "builtin-a")   # survives the abort
            holder["registry"].register("b", "builtin-b")   # collides, aborts

        registry = Registry("thing", populate=populate)
        holder["registry"] = registry
        registry.register("b", "plugin")                    # accidental collision
        with pytest.raises(ConfigurationError, match="'b'.*collides"):
            registry.names()
        # The user fixes their registration; the next lookup retries
        # population, re-registering 'a' idempotently.
        registry.register("b", "plugin2", override=True)
        assert registry.get("a") == "builtin-a"
        assert registry.get("b") == "plugin2"

    def test_failed_population_is_retried(self):
        attempts = []

        def populate():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient import failure")
            registry.register("a", 1)

        registry = Registry("thing", populate=populate)
        with pytest.raises(RuntimeError):
            registry.names()
        assert registry.get("a") == 1
        assert len(attempts) == 2

    def test_override_builtin_algorithm_in_fresh_process(self):
        """End to end: overriding 'fedavg' before any lookup leaves every
        other built-in usable and keeps the override (regression test for
        population poisoning)."""
        import subprocess
        import sys

        code = (
            "from repro.api.registry import ALGORITHMS, register_algorithm\n"
            "register_algorithm('fedavg', lambda components: None, override=True)\n"
            "from repro.config import ExperimentConfig\n"
            "ExperimentConfig(algorithm='splitfed', dataset='blobs', model='mlp')\n"
            "assert ALGORITHMS.get('fedavg')(None) is None\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"


class TestBuiltinRegistries:
    def test_all_builtin_algorithms_registered(self):
        assert set(KNOWN_ALGORITHMS) <= set(ALGORITHMS.names())

    def test_all_builtin_datasets_registered(self):
        assert set(KNOWN_DATASETS) <= set(DATASETS.names())

    def test_all_builtin_models_registered(self):
        assert set(KNOWN_MODELS) <= set(MODELS.names())

    def test_builtin_policies_registered(self):
        assert {"mergesfl", "fixed_batch", "regulated_batch",
                "select_all", "pyramid"} <= set(POLICIES.names())

    def test_model_metadata_carries_split_position(self):
        assert MODELS.metadata("alexnet_s")["split_after_weighted"] == 5
        assert MODELS.metadata("vgg_s")["split_after_weighted"] == 13

    def test_policy_factories_build(self, fast_config):
        policy = POLICIES.get("mergesfl")(fast_config)
        assert policy.merge_features is True
        fixed = POLICIES.get("fixed_batch")(fast_config, merge_features=True)
        assert fixed.merge_features is True


class TestPolicyDrivenAlgorithms:
    """extras['policy'] wires POLICIES entries into the generic engines."""

    def test_split_custom_runs_registered_policy(self, fast_config):
        from repro.api.session import Session

        config = fast_config.replace(
            algorithm="split_custom",
            extras={"policy": "fixed_batch",
                    "policy_kwargs": {"merge_features": True}},
        )
        session = Session.from_config(config)
        assert session.algorithm.policy.merge_features is True
        assert len(session.run(2)) == 2

    def test_fl_custom_runs_registered_selection(self, fast_config):
        from repro.api.session import Session

        config = fast_config.replace(
            algorithm="fl_custom", extras={"policy": "pyramid"}
        )
        history = Session.from_config(config).run(2)
        assert len(history) == 2

    def test_out_of_tree_policy_reaches_the_engine(self, fast_config):
        from repro.api.registry import register_policy
        from repro.api.session import Session
        from repro.baselines.policies import FixedBatchPolicy

        calls = []

        @register_policy("probe")
        def build_probe(config, **overrides):
            calls.append(1)
            return FixedBatchPolicy(**overrides)

        try:
            config = fast_config.replace(
                algorithm="split_custom", extras={"policy": "probe"}
            )
            Session.from_config(config).run(1)
            assert calls == [1]
        finally:
            POLICIES.unregister("probe")

    def test_missing_policy_extra_rejected(self, fast_config):
        from repro.api.components import build_algorithm, build_components

        config = fast_config.replace(algorithm="split_custom")
        with pytest.raises(ConfigurationError, match="extras\\['policy'\\]"):
            build_algorithm(build_components(config))

    def test_policy_kind_mismatch_rejected_upfront(self, fast_config):
        from repro.api.components import build_algorithm, build_components

        config = fast_config.replace(
            algorithm="fl_custom", extras={"policy": "fixed_batch"}
        )
        with pytest.raises(ConfigurationError, match="needs a fl_selection policy"):
            build_algorithm(build_components(config))
        config = fast_config.replace(
            algorithm="split_custom", extras={"policy": "pyramid"}
        )
        with pytest.raises(ConfigurationError, match="needs a split_control policy"):
            build_algorithm(build_components(config))


class TestOutOfTreePlugin:
    """A new algorithm + dataset + model validate and run without touching config.py."""

    def test_plugin_experiment_runs_end_to_end(self):
        from repro.api.session import Session
        from repro.baselines.policies import FixedBatchPolicy
        from repro.core.engine import SplitTrainingEngine
        from repro.data.dataset import Dataset, TrainTestSplit
        from repro.nn.models import build_mlp
        from repro.utils.rng import new_rng

        @register_dataset("plugin_rings")
        def make_rings(train_samples=200, test_samples=50, seed=0):
            rng = new_rng(seed)

            def sample(count):
                labels = rng.integers(0, 3, size=count)
                radii = 1.0 + labels + rng.normal(0.0, 0.1, size=count)
                angles = rng.uniform(0.0, 2 * np.pi, size=count)
                data = np.stack([
                    radii * np.cos(angles), radii * np.sin(angles)
                ], axis=1)
                return Dataset(data, labels, 3, name="plugin_rings")

            return TrainTestSplit(train=sample(train_samples), test=sample(test_samples))

        @register_model("plugin_mlp", input_kind="raw", split_after_weighted=1)
        def build_plugin_mlp(feature_shape, num_classes, seed=None):
            return build_mlp(
                input_dim=int(np.prod(feature_shape)),
                num_classes=num_classes,
                hidden_dims=(16,),
                seed=seed,
            )

        @register_algorithm("plugin_sfl")
        def build_plugin_sfl(components):
            return SplitTrainingEngine(
                config=components.config,
                split=components.split,
                workers=components.workers,
                cluster=components.cluster,
                data=components.data,
                policy=FixedBatchPolicy(merge_features=True),
                bandwidth_budget_override=components.bandwidth_budget,
            )

        try:
            config = ExperimentConfig(
                algorithm="plugin_sfl",
                dataset="plugin_rings",
                model="plugin_mlp",
                num_workers=3,
                num_rounds=2,
                train_samples=120,
                test_samples=40,
            )
            history = Session.from_config(config).run()
            assert len(history) == 2
        finally:
            ALGORITHMS.unregister("plugin_sfl")
            DATASETS.unregister("plugin_rings")
            MODELS.unregister("plugin_mlp")

    def test_raw_model_without_split_runs_fl_algorithms(self):
        """A raw plugin model with no split point works with full-model
        algorithms, and split algorithms fail with a clear error."""
        from repro.api.components import build_algorithm, build_components
        from repro.api.session import Session
        from repro.nn.models import build_mlp

        @register_model("plugin_splitless")
        def build_splitless(feature_shape, num_classes, seed=None):
            return build_mlp(
                int(np.prod(feature_shape)), num_classes, (8,), seed=seed
            )

        try:
            config = ExperimentConfig(
                algorithm="fedavg",
                dataset="blobs",
                model="plugin_splitless",
                num_workers=3,
                num_rounds=2,
                train_samples=120,
                test_samples=40,
            )
            history = Session.from_config(config).run()
            assert len(history) == 2

            with pytest.raises(ConfigurationError, match="no split point"):
                build_algorithm(
                    build_components(config.replace(algorithm="mergesfl"))
                )
        finally:
            MODELS.unregister("plugin_splitless")

    def test_legacy_dict_mutation_still_resolves(self):
        """Entries pushed into the legacy MODEL_REGISTRY / DATASET_REGISTRY
        dicts (the pre-registry extension path) still resolve."""
        from repro.data.synthetic import DATASET_REGISTRY, make_blobs, make_dataset
        from repro.nn.models import MODEL_REGISTRY, build_mlp, build_model

        MODEL_REGISTRY["legacy_mlp"] = build_mlp
        DATASET_REGISTRY["legacy_blobs"] = make_blobs
        try:
            model = build_model("legacy_mlp", input_dim=8, num_classes=2, seed=0)
            assert model.forward(np.zeros((1, 8))).shape == (1, 2)
            split = make_dataset("legacy_blobs", train_samples=32, test_samples=8)
            assert len(split.train) == 32
        finally:
            del MODEL_REGISTRY["legacy_mlp"]
            del DATASET_REGISTRY["legacy_blobs"]

    def test_legacy_dict_replacement_of_builtin_wins(self):
        """Replacing a built-in name in the legacy dicts (pre-registry
        monkeypatch pattern) still changes what build_model/make_dataset
        return."""
        from repro.data.synthetic import DATASET_REGISTRY, make_blobs, make_dataset
        from repro.nn.models import MODEL_REGISTRY, build_mlp, build_model

        def sentinel_model(**kwargs):
            return build_mlp(input_dim=8, num_classes=2, hidden_dims=(3,), seed=0)

        def sentinel_dataset(**kwargs):
            return make_blobs(train_samples=16, test_samples=4, seed=0)

        original_model = MODEL_REGISTRY["mlp"]
        original_dataset = DATASET_REGISTRY["blobs"]
        MODEL_REGISTRY["mlp"] = sentinel_model
        DATASET_REGISTRY["blobs"] = sentinel_dataset
        try:
            model = build_model("mlp", input_dim=99, num_classes=7)
            assert model.forward(np.zeros((1, 8))).shape == (1, 2)  # sentinel's dims
            split = make_dataset("blobs", train_samples=500)
            assert len(split.train) == 16                           # sentinel's size
        finally:
            MODEL_REGISTRY["mlp"] = original_model
            DATASET_REGISTRY["blobs"] = original_dataset

    def test_legacy_dataset_replacement_reaches_run_experiment(self, fast_config):
        """Legacy dict mutation must affect whole experiments, not just the
        direct make_dataset call (build_components routes through it)."""
        from repro.data.synthetic import DATASET_REGISTRY, make_blobs
        from repro.experiments.runner import run_experiment

        calls = []

        def counting_blobs(**kwargs):
            calls.append(1)
            return make_blobs(**kwargs)

        original = DATASET_REGISTRY["blobs"]
        DATASET_REGISTRY["blobs"] = counting_blobs
        try:
            run_experiment(fast_config.replace(num_rounds=1))
            assert calls, "legacy DATASET_REGISTRY replacement was bypassed"
        finally:
            DATASET_REGISTRY["blobs"] = original

    def test_unknown_names_still_rejected_with_registry_message(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            ExperimentConfig(algorithm="definitely_not_registered")
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            ExperimentConfig(dataset="definitely_not_registered")
        with pytest.raises(ConfigurationError, match="unknown model"):
            ExperimentConfig(model="definitely_not_registered")
