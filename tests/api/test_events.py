"""Tests for the typed session event API and its failure isolation."""

import pytest

from repro.api.events import (
    EVENT_TYPES,
    Callback,
    CheckpointSaved,
    EventBus,
    RoundEnd,
    RoundStart,
)
from repro.api.session import Session
from repro.exceptions import CallbackError, ConfigurationError


class TestEventBus:
    def test_unknown_event_rejected(self):
        bus = EventBus()
        with pytest.raises(ConfigurationError, match="unknown session event"):
            bus.on("round_finish", lambda s, e: None)
        with pytest.raises(ConfigurationError, match="unknown session event"):
            bus.emit("round_finish", None, None)

    def test_on_as_decorator_returns_handler(self):
        bus = EventBus()

        @bus.on("round_start")
        def handler(session, event):
            return None

        assert bus.handlers("round_start") == (handler,)

    def test_stop_only_from_stopping_events(self):
        bus = EventBus()
        bus.on("round_start", lambda s, e: True)
        bus.on("checkpoint_saved", lambda s, e: True)
        assert bus.emit("round_start", None, None) is False
        assert bus.emit("checkpoint_saved", None, None) is False
        bus.on("round_end", lambda s, e: True)
        assert bus.emit("round_end", None, None) is True

    def test_failing_handler_does_not_suppress_later_handlers(self):
        bus = EventBus()
        fired = []

        def bad(session, event):
            raise ValueError("broken hook")

        bus.on("round_end", bad)
        bus.on("round_end", lambda s, e: fired.append("late"))
        with pytest.raises(CallbackError, match="bad") as excinfo:
            bus.emit("round_end", None, None)
        assert fired == ["late"]
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_error_names_the_callback(self):
        bus = EventBus()

        def flaky_metrics_hook(session, event):
            raise RuntimeError("nope")

        bus.on("round_end", flaky_metrics_hook)
        with pytest.raises(CallbackError, match="flaky_metrics_hook"):
            bus.emit("round_end", None, None)


class TestSessionEvents:
    def test_round_events_fire_in_order(self, fast_config):
        session = Session.from_config(fast_config)
        seen = []
        session.on("round_start", lambda s, e: seen.append(("start", e.round_index)))
        session.on("evaluation", lambda s, e: seen.append(("eval", e.record.round_index)))
        session.on("round_end", lambda s, e: seen.append(("end", e.record.round_index)))
        session.run(2)
        assert seen == [
            ("start", 0), ("eval", 0), ("end", 0),
            ("start", 1), ("eval", 1), ("end", 1),
        ]

    def test_typed_and_legacy_hooks_coexist(self, fast_config):
        """session.on("round_end", ...) and on_round_end fire side by side."""
        session = Session.from_config(fast_config)
        typed, legacy = [], []
        session.on("round_end", lambda s, e: typed.append(e.record.round_index))

        @session.on_round_end
        def watch(sess, record):
            legacy.append(record.round_index)

        session.run(2)
        assert typed == [0, 1]
        assert legacy == [0, 1]

    def test_legacy_truthy_return_still_stops(self, fast_config):
        session = Session.from_config(fast_config)
        session.on_round_end(lambda sess, record: record.round_index >= 0)
        session.run(3)
        assert session.rounds_completed == 1

    def test_evaluation_stop_request(self, fast_config):
        session = Session.from_config(fast_config)
        session.on("evaluation", lambda s, e: e.record.round_index >= 1)
        session.run(3)
        assert session.rounds_completed == 2

    def test_checkpoint_saved_event(self, fast_config, tmp_path):
        session = Session.from_config(fast_config)
        saved = []
        session.on("checkpoint_saved",
                   lambda s, e: saved.append((e.path, e.rounds_completed)))
        session.step()
        path = tmp_path / "ck.json"
        session.save_checkpoint(path)
        assert saved == [(str(path), 1)]

    def test_failing_legacy_hook_reports_its_name(self, fast_config):
        session = Session.from_config(fast_config)
        fired = []

        @session.on_round_end
        def broken_hook(sess, record):
            raise RuntimeError("argh")

        session.on("round_end", lambda s, e: fired.append(e.record.round_index))
        with pytest.raises(CallbackError, match="broken_hook"):
            session.step()
        assert fired == [0]


class TestCallbackBase:
    def test_subscribes_only_overridden_methods(self):
        class Watch(Callback):
            def on_round_end(self, session, event):
                return None

        bus = EventBus()
        Watch().subscribe(bus)
        assert len(bus.handlers("round_end")) == 1
        for event in EVENT_TYPES:
            if event != "round_end":
                assert bus.handlers(event) == ()

    def test_add_callback_on_session(self, fast_config):
        class Collect(Callback):
            def __init__(self):
                self.starts = []
                self.ends = []

            def on_round_start(self, session, event):
                self.starts.append(event.round_index)

            def on_round_end(self, session, event):
                self.ends.append(event.record.round_index)

        session = Session.from_config(fast_config)
        collect = session.add_callback(Collect())
        session.run(2)
        assert collect.starts == [0, 1]
        assert collect.ends == [0, 1]

    def test_callback_stop_request(self, fast_config):
        class StopNow(Callback):
            def on_round_end(self, session, event):
                return True

        session = Session.from_config(fast_config)
        session.add_callback(StopNow())
        session.run(3)
        assert session.rounds_completed == 1

    def test_event_payload_types(self):
        assert RoundStart(3).round_index == 3
        assert CheckpointSaved("p", 2).rounds_completed == 2
        assert RoundEnd(None).record is None
