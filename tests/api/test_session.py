"""Tests for the steppable Session, the Algorithm interface and checkpointing."""

from dataclasses import asdict

import pytest

from repro.api.checkpoint import decode_state, encode_state
from repro.api.components import build_algorithm, build_components
from repro.api.session import Session
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_experiment
from repro.metrics.history import RoundRecord

import numpy as np


def _records(history):
    return [asdict(record) for record in history.records]


class TestCheckpointCodec:
    def test_array_roundtrip_is_bit_exact(self):
        arrays = [
            np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0,
            np.array([True, False]),
            np.arange(5, dtype=np.int64),
        ]
        for array in arrays:
            decoded = decode_state(encode_state(array))
            assert decoded.dtype == array.dtype
            assert np.array_equal(decoded, array)

    def test_nested_structures(self):
        payload = {"a": [1, 2.5, "x", None], "b": {"c": np.zeros(2)}}
        decoded = decode_state(encode_state(payload))
        assert decoded["a"] == [1, 2.5, "x", None]
        assert np.array_equal(decoded["b"]["c"], np.zeros(2))

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            encode_state({1: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_state(object())

    def test_reserved_marker_key_rejected_at_save_time(self):
        with pytest.raises(TypeError, match="reserved key"):
            encode_state({"outer": {"__ndarray__": "collision"}})

    def test_object_dtype_array_rejected_at_save_time(self):
        with pytest.raises(TypeError, match="object-dtype"):
            encode_state(np.array([object(), object()]))


class TestAlgorithmInterface:
    def test_engine_run_is_monotonic_across_calls(self, fast_config):
        """A second run() call continues instead of restarting at round 0."""
        chunked = build_algorithm(build_components(fast_config))
        chunked.run(2)
        chunked.run(1)
        single = build_algorithm(build_components(fast_config))
        single.run(3)
        assert [r.round_index for r in chunked.history] == [0, 1, 2]
        assert _records(chunked.history) == _records(single.history)

    def test_run_beyond_config_num_rounds(self, fast_config):
        """num_rounds > config.num_rounds no longer exhausts pre-spawned RNGs."""
        algorithm = build_algorithm(build_components(fast_config))
        history = algorithm.run(fast_config.num_rounds + 2)
        assert len(history) == fast_config.num_rounds + 2

    def test_fl_engine_monotonic_and_extendable(self, fast_config):
        config = fast_config.replace(algorithm="fedavg")
        chunked = build_algorithm(build_components(config))
        chunked.run(2)
        chunked.run(config.num_rounds)  # beyond the configured horizon
        assert [r.round_index for r in chunked.history] == list(
            range(2 + config.num_rounds)
        )

    def test_step_round_returns_latest_record(self, fast_config):
        algorithm = build_algorithm(build_components(fast_config))
        record = algorithm.step_round()
        assert isinstance(record, RoundRecord)
        assert record.round_index == 0
        assert algorithm.rounds_completed == 1

    def test_negative_rounds_rejected(self, fast_config):
        algorithm = build_algorithm(build_components(fast_config))
        with pytest.raises(ValueError):
            algorithm.run(-1)

    def test_fl_facade_global_model(self, fast_config):
        config = fast_config.replace(algorithm="fedavg")
        algorithm = build_algorithm(build_components(config))
        algorithm.run(1)
        components = build_components(config)
        out = algorithm.global_model().forward(components.data.test.data[:3])
        assert out.shape == (3, components.data.num_classes)


class TestSession:
    def test_step_matches_run_experiment(self, fast_config):
        reference = run_experiment(fast_config)
        session = Session.from_config(fast_config)
        for _ in range(fast_config.num_rounds):
            session.step()
        assert _records(session.history) == _records(reference)

    def test_run_defaults_to_remaining_rounds(self, fast_config):
        session = Session.from_config(fast_config)
        session.step()
        session.run()
        assert session.rounds_completed == fast_config.num_rounds
        # A further default run() is a no-op: the schedule is complete.
        session.run()
        assert session.rounds_completed == fast_config.num_rounds

    def test_callbacks_stream_records(self, fast_config):
        session = Session.from_config(fast_config)
        seen = []

        @session.on_round_end
        def collect(sess, record):
            seen.append(record.round_index)

        session.run(2)
        assert seen == [0, 1]

    def test_callback_truthy_return_stops_run(self, fast_config):
        session = Session.from_config(fast_config)
        session.on_round_end(lambda sess, record: record.round_index >= 0)
        session.run(3)
        assert session.rounds_completed == 1

    def test_pre_built_algorithm_skips_component_assembly(self, fast_config):
        components = build_components(fast_config)
        algorithm = build_algorithm(components)
        session = Session(fast_config, algorithm=algorithm)
        assert session.components is None
        assert session.algorithm is algorithm
        session.run(1)
        assert session.rounds_completed == 1

    def test_global_model_forward(self, fast_config):
        session = Session.from_config(fast_config)
        session.step()
        out = session.global_model().forward(session.components.data.test.data[:2])
        assert out.shape == (2, session.components.data.num_classes)


class TestCheckpointResume:
    @pytest.mark.parametrize("algorithm", ["mergesfl", "fedavg", "splitfed"])
    def test_chunked_run_with_checkpoint_matches_single_run(
        self, fast_config, tmp_path, algorithm
    ):
        """Acceptance: step() in two chunks with a JSON checkpoint round trip
        in between yields a History identical to one uninterrupted run."""
        config = fast_config.replace(algorithm=algorithm)
        reference = run_experiment(config)

        session = Session.from_config(config)
        session.step()
        session.step()
        path = tmp_path / "checkpoint.json"
        session.save_checkpoint(path)

        restored = Session.load_checkpoint(path)
        assert restored.rounds_completed == 2
        restored.run()

        assert _records(restored.history) == _records(reference)

    def test_in_memory_state_dict_roundtrip(self, fast_config):
        reference = run_experiment(fast_config)
        session = Session.from_config(fast_config)
        session.step()
        state = session.state_dict()
        fresh = Session.from_config(fast_config)
        fresh.load_state_dict(state)
        fresh.run()
        assert _records(fresh.history) == _records(reference)

    def test_load_state_dict_rejects_other_config(self, fast_config):
        session = Session.from_config(fast_config)
        session.step()
        state = session.state_dict()
        other = Session.from_config(fast_config.replace(seed=99))
        with pytest.raises(ConfigurationError, match="different configuration"):
            other.load_state_dict(state)

    def test_unsupported_version_rejected(self, fast_config, tmp_path):
        session = Session.from_config(fast_config)
        state = session.state_dict()
        state["version"] = 999
        with pytest.raises(ConfigurationError, match="version"):
            session.load_state_dict(state)

    def test_tuple_extras_survive_checkpoint_config_comparison(self, fast_config, tmp_path):
        """Tuples in extras decode from JSON as lists; the config equality
        check must not reject the checkpoint over that."""
        config = fast_config.replace(extras={"tags": ("a", "b")})
        session = Session.from_config(config)
        session.step()
        path = tmp_path / "tuple.json"
        session.save_checkpoint(path)
        fresh = Session.from_config(config)
        from repro.api.checkpoint import load_checkpoint_payload
        fresh.load_state_dict(load_checkpoint_payload(path))
        assert fresh.rounds_completed == 1

    def test_custom_wired_checkpoint_refuses_registry_rebuild(self, fast_config, tmp_path):
        """A checkpoint from a hand-wired algorithm must not silently resume
        as the registry-built default."""
        components = build_components(fast_config)
        session = Session(fast_config, algorithm=build_algorithm(components))
        session.step()
        path = tmp_path / "custom.json"
        session.save_checkpoint(path)
        with pytest.raises(ConfigurationError, match="hand-wired"):
            Session.load_checkpoint(path)
        # The documented escape hatch: rebuild the algorithm yourself.
        rebuilt = Session(fast_config, algorithm=build_algorithm(build_components(fast_config)))
        from repro.api.checkpoint import load_checkpoint_payload
        rebuilt.load_state_dict(load_checkpoint_payload(path))
        assert rebuilt.rounds_completed == 1

    def test_custom_components_checkpoint_also_refuses_rebuild(self, fast_config, tmp_path):
        """Hand-wired components (not just a hand-wired algorithm) cannot be
        reproduced from the config, so the guard covers them too."""
        session = Session(fast_config, components=build_components(fast_config))
        session.step()
        path = tmp_path / "custom_components.json"
        session.save_checkpoint(path)
        with pytest.raises(ConfigurationError, match="hand-wired"):
            Session.load_checkpoint(path)

    def test_checkpoint_restores_rng_dependent_streams(self, fast_config, tmp_path):
        """The restored run must consume worker batches exactly where the
        saved one stopped (loader RNG/cursor state, not just weights)."""
        session = Session.from_config(fast_config)
        session.step()
        path = tmp_path / "ck.json"
        session.save_checkpoint(path)
        restored = Session.load_checkpoint(path)
        for saved, fresh in zip(session.components.workers, restored.components.workers):
            batch_a = saved.loader.next_batch(4)[0]
            batch_b = fresh.loader.next_batch(4)[0]
            assert np.array_equal(batch_a, batch_b)


class TestModuleExtraState:
    def test_dropout_rng_roundtrip(self):
        from repro.nn.layers.regularization import Dropout
        from repro.nn.module import Sequential
        from repro.nn.serialization import load_module_extra_state, module_extra_state
        from repro.utils.rng import new_rng

        model = Sequential([Dropout(0.5, rng=new_rng(3))])
        model.forward(np.ones((4, 8)))          # advance the RNG
        state = module_extra_state(model)
        expected = model.forward(np.ones((4, 8)))

        fresh = Sequential([Dropout(0.5, rng=new_rng(0))])
        load_module_extra_state(fresh, state)
        assert np.array_equal(fresh.forward(np.ones((4, 8))), expected)

    def test_stateless_layer_rejects_extra_state(self):
        from repro.nn.layers.activations import ReLU

        with pytest.raises(ValueError, match="does not accept extra state"):
            ReLU().load_extra_state({"rng": {}})

    def test_unknown_layer_path_rejected(self):
        from repro.nn.module import Sequential
        from repro.nn.serialization import load_module_extra_state

        with pytest.raises(KeyError, match="unknown layer"):
            load_module_extra_state(Sequential([]), {"layer7": {}})


class TestConfigRoundTrips:
    def test_from_dict_replace_preserves_extras(self, fast_config):
        config = fast_config.replace(extras={"auto_budget": False, "note": "x"})
        clone = type(config).from_dict(config.to_dict())
        assert clone == config
        changed = config.replace(num_rounds=7)
        assert changed.extras == {"auto_budget": False, "note": "x"}
        assert changed.num_rounds == 7

    def test_replace_merges_new_unknown_keys_into_extras(self, fast_config):
        changed = fast_config.replace(mystery=3)
        assert changed.extras["mystery"] == 3
