"""Golden regression: a fixed-seed MergeSFL run must match a checked-in history.

The golden file pins the full numeric trajectory (losses, accuracies,
simulated clock, traffic) of a small fixed-seed 3-round MergeSFL run, so a
refactor that silently changes the training math -- a reordered reduction,
a changed default, an off-by-one in batch regulation -- fails loudly even
when every unit test still passes.

Float fields are compared at 1e-9 relative tolerance (bit-exactness across
BLAS builds and numpy versions is not guaranteed); integer fields exactly.

To regenerate after an *intentional* change to the training math::

    PYTHONPATH=src python tests/test_golden_regression.py --regenerate

and explain in the commit message why the trajectory moved.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "mergesfl_blobs_seed3.json"

#: Fields of a RoundRecord compared exactly.
INT_FIELDS = ("round_index", "num_selected", "total_batch")
#: Fields compared at tolerance.
FLOAT_FIELDS = (
    "sim_time", "duration", "waiting_time", "traffic_mb",
    "train_loss", "test_loss", "test_accuracy", "merged_kl",
)


def _golden_config():
    from repro.config import ExperimentConfig

    return ExperimentConfig(
        algorithm="mergesfl",
        dataset="blobs",
        model="mlp",
        num_workers=5,
        num_rounds=3,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=300,
        test_samples=80,
        learning_rate=0.1,
        seed=3,
    )


def _run_history() -> list[dict]:
    from repro.api.session import Session

    with Session.from_config(_golden_config()) as session:
        history = session.run()
    return history.to_dict()["records"]


def test_mergesfl_history_matches_golden():
    assert GOLDEN_PATH.exists(), (
        f"golden file missing: {GOLDEN_PATH}; regenerate with "
        f"'PYTHONPATH=src python {pathlib.Path(__file__).name} --regenerate'"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    records = _run_history()
    assert len(records) == len(golden["records"])
    for expected, actual in zip(golden["records"], records):
        for field in INT_FIELDS:
            assert actual[field] == expected[field], field
        for field in FLOAT_FIELDS:
            if expected[field] is None:
                assert actual[field] is None, field
            else:
                assert actual[field] == pytest.approx(
                    expected[field], rel=1e-9, abs=1e-12
                ), field


def _regenerate() -> None:
    payload = {
        "description": (
            "Fixed-seed 3-round MergeSFL history on blobs/mlp; see "
            "tests/test_golden_regression.py"
        ),
        "config": _golden_config().to_dict(),
        "records": _run_history(),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
