"""Tests for Module and Sequential containers."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU
from repro.nn.module import Sequential
from repro.utils.rng import new_rng


def _model(seed=0):
    rng = new_rng(seed)
    return Sequential([Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng)])


class TestSequential:
    def test_forward_shape(self):
        model = _model()
        out = model.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_call_is_forward(self):
        model = _model()
        x = np.ones((2, 4))
        assert np.allclose(model(x), model.forward(x))

    def test_len_iter_getitem(self):
        model = _model()
        assert len(model) == 3
        assert isinstance(model[1], ReLU)
        assert len(list(iter(model))) == 3

    def test_slicing_returns_sequential(self):
        model = _model()
        bottom = model[:2]
        top = model[2:]
        assert isinstance(bottom, Sequential)
        assert len(bottom) == 2 and len(top) == 1

    def test_parameters_collects_all(self):
        model = _model()
        assert len(model.parameters()) == 4  # two Linear layers x (W, b)

    def test_named_parameters_are_unique(self):
        model = _model()
        names = [name for name, __ in model.named_parameters()]
        assert len(names) == len(set(names))

    def test_state_dict_roundtrip(self):
        model = _model(seed=0)
        other = _model(seed=1)
        other.load_state_dict(model.state_dict())
        x = np.linspace(0, 1, 8).reshape(2, 4)
        assert np.allclose(model.forward(x), other.forward(x))

    def test_load_state_dict_rejects_missing_keys(self):
        model = _model()
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        model = _model()
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_clone_is_independent(self):
        model = _model()
        clone = model.clone()
        clone.parameters()[0].data[:] = 0.0
        assert not np.allclose(model.parameters()[0].data, 0.0)

    def test_train_eval_propagates(self):
        model = _model()
        model.eval()
        assert all(not layer.training for layer in model)
        model.train()
        assert all(layer.training for layer in model)

    def test_zero_grad(self):
        model = _model()
        out = model.forward(np.ones((2, 4)))
        model.backward(np.ones_like(out))
        assert any(np.any(p.grad != 0) for p in model.parameters())
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())

    def test_num_parameters(self):
        model = _model()
        expected = 4 * 8 + 8 + 8 * 3 + 3
        assert model.num_parameters() == expected

    def test_backward_chain_rule_matches_numeric(self):
        model = _model()
        x = new_rng(2).normal(size=(3, 4))
        out = model.forward(x)
        grad_out = np.ones_like(out)
        grad_in = model.backward(grad_out)
        # Numerical check of d(sum(out))/dx for one element.
        eps = 1e-6
        x2 = x.copy()
        x2[0, 0] += eps
        numeric = (model.forward(x2).sum() - model.forward(x).sum()) / eps
        assert np.isclose(grad_in[0, 0], numeric, atol=1e-4)
