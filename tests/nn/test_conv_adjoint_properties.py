"""Property-based tests: ``im2col`` and ``col2im`` are exact adjoints.

``col2im`` is used as the backward pass of ``im2col`` in every convolution,
so the pair must satisfy the adjoint identity

    <im2col(x), c> == <x, col2im(c)>

for all shapes, strides and paddings -- otherwise convolution gradients are
silently wrong.  Hypothesis drives the geometry; array contents come from a
seeded generator.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.layers.conv import col2im, im2col

geometry = st.fixed_dictionaries({
    "batch": st.integers(1, 3),
    "channels": st.integers(1, 3),
    "height": st.integers(1, 8),
    "width": st.integers(1, 8),
    "kh": st.integers(1, 3),
    "kw": st.integers(1, 3),
    "sh": st.integers(1, 2),
    "sw": st.integers(1, 2),
    "ph": st.integers(0, 2),
    "pw": st.integers(0, 2),
    "seed": st.integers(0, 2**31 - 1),
    "dtype": st.sampled_from([np.float64, np.float32]),
})


def _valid(geo) -> bool:
    out_h = (geo["height"] + 2 * geo["ph"] - geo["kh"]) // geo["sh"] + 1
    out_w = (geo["width"] + 2 * geo["pw"] - geo["kw"]) // geo["sw"] + 1
    return out_h > 0 and out_w > 0


@settings(max_examples=60, deadline=None)
@given(geo=geometry)
def test_im2col_col2im_adjoint(geo):
    if not _valid(geo):
        return
    rng = np.random.default_rng(geo["seed"])
    kernel = (geo["kh"], geo["kw"])
    stride = (geo["sh"], geo["sw"])
    padding = (geo["ph"], geo["pw"])
    shape = (geo["batch"], geo["channels"], geo["height"], geo["width"])
    x = rng.normal(size=shape).astype(geo["dtype"])

    cols, out_size = im2col(x, kernel, stride, padding)
    c = rng.normal(size=cols.shape).astype(geo["dtype"])
    folded = col2im(c, shape, kernel, stride, padding, out_size)

    lhs = float(np.sum(cols.astype(np.float64) * c.astype(np.float64)))
    rhs = float(np.sum(x.astype(np.float64) * folded.astype(np.float64)))
    tol = 1e-9 if geo["dtype"] is np.float64 else 1e-3
    assert lhs == pytest.approx(rhs, rel=tol, abs=tol)


@settings(max_examples=30, deadline=None)
@given(geo=geometry)
def test_col2im_of_im2col_counts_patch_coverage(geo):
    """Folding the unfolded all-ones image counts, per pixel, how many
    patches cover it -- an integer between 0 and kh*kw."""
    if not _valid(geo):
        return
    kernel = (geo["kh"], geo["kw"])
    stride = (geo["sh"], geo["sw"])
    padding = (geo["ph"], geo["pw"])
    shape = (geo["batch"], geo["channels"], geo["height"], geo["width"])
    ones = np.ones(shape, dtype=np.float64)
    cols, out_size = im2col(ones, kernel, stride, padding)
    counts = col2im(cols, shape, kernel, stride, padding, out_size)
    assert np.array_equal(counts, np.round(counts))
    assert counts.min() >= 0
    assert counts.max() <= geo["kh"] * geo["kw"]


def test_non_overlapping_roundtrip_is_identity():
    """With stride == kernel and no padding, every pixel lies in exactly one
    patch, so col2im(im2col(x)) == x bitwise."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 8, 6))
    cols, out_size = im2col(x, (2, 2), (2, 2), (0, 0))
    back = col2im(cols, x.shape, (2, 2), (2, 2), (0, 0), out_size)
    assert np.array_equal(back, x)
