"""Tests for repro.nn.parameter."""

import numpy as np

from repro.nn.parameter import Parameter


class TestParameter:
    def test_data_is_float64(self):
        param = Parameter(np.array([1, 2, 3], dtype=np.int32))
        assert param.data.dtype == np.float64

    def test_grad_starts_at_zero_with_same_shape(self):
        param = Parameter(np.ones((3, 4)))
        assert param.grad.shape == (3, 4)
        assert np.all(param.grad == 0.0)

    def test_shape_and_size(self):
        param = Parameter(np.zeros((2, 5)))
        assert param.shape == (2, 5)
        assert param.size == 10

    def test_zero_grad_resets_in_place(self):
        param = Parameter(np.ones(3))
        param.grad += 2.0
        buffer = param.grad
        param.zero_grad()
        assert np.all(param.grad == 0.0)
        assert param.grad is buffer

    def test_copy_is_independent(self):
        param = Parameter(np.ones(3), name="w")
        param.grad += 1.0
        clone = param.copy()
        clone.data[0] = 99.0
        clone.grad[0] = 99.0
        assert param.data[0] == 1.0
        assert param.grad[0] == 1.0
        assert clone.name == "w"
