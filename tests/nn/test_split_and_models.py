"""Tests for model splitting and the model zoo."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SplitError
from repro.nn.layers import Conv1d, Conv2d, Linear
from repro.nn.models import (
    MODEL_REGISTRY,
    build_alexnet_s,
    build_cnn_h,
    build_cnn_s,
    build_model,
    build_vgg_s,
    default_split_layer,
    estimate_forward_flops,
)
from repro.nn.module import Sequential
from repro.nn.split import split_model


class TestSplitModel:
    def test_split_preserves_forward(self, tiny_mlp):
        x = np.random.default_rng(0).normal(size=(4, 32))
        expected = tiny_mlp.forward(x)
        split = split_model(tiny_mlp, 2)
        assert np.allclose(split.full_forward(x), expected)

    def test_split_halves_are_copies(self, tiny_mlp):
        split = split_model(tiny_mlp, 2)
        split.bottom.parameters()[0].data[:] = 0.0
        assert not np.allclose(tiny_mlp.parameters()[0].data, 0.0)

    def test_split_index_bounds(self, tiny_mlp):
        with pytest.raises(SplitError):
            split_model(tiny_mlp, 0)
        with pytest.raises(SplitError):
            split_model(tiny_mlp, len(tiny_mlp))

    def test_only_sequential_models(self):
        with pytest.raises(SplitError):
            split_model(Linear(3, 2), 1)

    def test_parameter_counts_add_up(self, tiny_mlp):
        split = split_model(tiny_mlp, 2)
        total = split.bottom.num_parameters() + split.top.num_parameters()
        assert total == tiny_mlp.num_parameters()


class TestModelZoo:
    @pytest.mark.parametrize("name", sorted(set(MODEL_REGISTRY) - {"mlp"}))
    def test_builders_produce_sequential(self, name):
        kwargs = {"width": 0.25, "seed": 0}
        model = build_model(name, **kwargs)
        assert isinstance(model, Sequential)
        assert model.num_parameters() > 0

    def test_cnn_h_forward_shape(self):
        model = build_cnn_h(width=0.5, seed=0)
        out = model.forward(np.zeros((2, 9, 128)))
        assert out.shape == (2, 6)

    def test_cnn_s_forward_shape(self):
        model = build_cnn_s(width=0.5, seed=0)
        out = model.forward(np.zeros((2, 1, 1024)))
        assert out.shape == (2, 10)

    def test_alexnet_forward_shape(self):
        model = build_alexnet_s(width=0.25, seed=0)
        out = model.forward(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 10)

    def test_vgg_forward_shape(self):
        model = build_vgg_s(num_classes=20, width=0.25, seed=0)
        out = model.forward(np.zeros((1, 3, 32, 32)))
        assert out.shape == (1, 20)

    def test_vgg_has_thirteen_conv_layers(self):
        model = build_vgg_s(width=0.25, seed=0)
        convs = [layer for layer in model if isinstance(layer, Conv2d)]
        assert len(convs) == 13

    def test_alexnet_has_five_conv_layers(self):
        model = build_alexnet_s(width=0.25, seed=0)
        convs = [layer for layer in model if isinstance(layer, Conv2d)]
        assert len(convs) == 5

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigurationError):
            build_model("resnet")

    def test_width_scales_parameter_count(self):
        small = build_alexnet_s(width=0.25, seed=0).num_parameters()
        large = build_alexnet_s(width=0.5, seed=0).num_parameters()
        assert large > small

    def test_too_small_input_raises(self):
        with pytest.raises(ConfigurationError):
            build_cnn_h(sequence_length=4)


class TestDefaultSplitLayer:
    @pytest.mark.parametrize(
        "name,conv_type,expected_weighted",
        [
            ("cnn_h", Conv1d, 3),
            ("cnn_s", Conv1d, 4),
            ("alexnet_s", Conv2d, 5),
            ("vgg_s", Conv2d, 13),
        ],
    )
    def test_bottom_contains_exactly_the_conv_stack(self, name, conv_type, expected_weighted):
        model = build_model(name, width=0.25, seed=0)
        index = default_split_layer(name, model)
        bottom = Sequential(model.layers[:index])
        weighted = [layer for layer in bottom if layer.parameters()]
        assert len(weighted) == expected_weighted
        assert all(isinstance(layer, conv_type) for layer in weighted)

    def test_split_produces_nonempty_top(self):
        model = build_model("alexnet_s", width=0.25, seed=0)
        index = default_split_layer("alexnet_s", model)
        assert 0 < index < len(model)

    def test_unknown_model_raises(self, tiny_mlp):
        with pytest.raises(ConfigurationError):
            default_split_layer("unknown", tiny_mlp)


class TestFlopsEstimate:
    def test_positive_and_monotone_in_width(self):
        small = estimate_forward_flops(build_alexnet_s(width=0.25, seed=0), (3, 32, 32))
        large = estimate_forward_flops(build_alexnet_s(width=0.5, seed=0), (3, 32, 32))
        assert 0 < small < large

    def test_mlp_flops_match_closed_form(self, tiny_mlp):
        flops = estimate_forward_flops(tiny_mlp, (32,))
        expected = 2 * (32 * 32 + 32 * 16 + 16 * 4)
        assert flops == expected
