"""Tests for SGD and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import build_mlp
from repro.nn.optim import SGD, ExponentialLR, StepLR
from repro.nn.parameter import Parameter
from repro.utils.rng import new_rng


def _quadratic_params():
    return [Parameter(np.array([4.0, -2.0]))]


class TestSGD:
    def test_step_moves_against_gradient(self):
        params = _quadratic_params()
        params[0].grad[:] = np.array([1.0, -1.0])
        SGD(params, lr=0.5).step()
        assert np.allclose(params[0].data, [3.5, -1.5])

    def test_zero_grad(self):
        params = _quadratic_params()
        params[0].grad[:] = 1.0
        opt = SGD(params, lr=0.1)
        opt.zero_grad()
        assert np.all(params[0].grad == 0.0)

    def test_weight_decay_shrinks_parameters(self):
        params = _quadratic_params()
        SGD(params, lr=0.1, weight_decay=1.0).step()
        assert np.all(np.abs(params[0].data) < np.abs([4.0, -2.0]))

    def test_momentum_accumulates_velocity(self):
        params = _quadratic_params()
        opt = SGD(params, lr=0.1, momentum=0.9)
        params[0].grad[:] = 1.0
        opt.step()
        first_move = 4.0 - params[0].data[0]
        params[0].grad[:] = 1.0
        opt.step()
        second_move = (4.0 - first_move) - params[0].data[0]
        assert second_move > first_move

    def test_gradient_clipping_bounds_update(self):
        params = [Parameter(np.zeros(4))]
        params[0].grad[:] = 100.0
        opt = SGD(params, lr=1.0, max_grad_norm=1.0)
        opt.step()
        assert np.linalg.norm(params[0].data) <= 1.0 + 1e-9

    def test_grad_norm(self):
        params = [Parameter(np.zeros(3))]
        params[0].grad[:] = np.array([3.0, 4.0, 0.0])
        assert np.isclose(SGD(params, lr=0.1).grad_norm(), 5.0)

    def test_invalid_hyperparameters(self):
        params = _quadratic_params()
        with pytest.raises(ValueError):
            SGD(params, lr=0.0)
        with pytest.raises(ValueError):
            SGD(params, lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD(params, lr=0.1, weight_decay=-1.0)
        with pytest.raises(ValueError):
            SGD(params, lr=0.1, max_grad_norm=0.0)

    def test_minimises_small_classification_problem(self):
        rng = new_rng(0)
        model = build_mlp(input_dim=8, num_classes=3, hidden_dims=(16,), seed=0)
        loss_fn = CrossEntropyLoss()
        opt = SGD(model.parameters(), lr=0.2)
        x = rng.normal(size=(60, 8))
        y = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0).astype(int)
        first_loss = None
        for __ in range(60):
            opt.zero_grad()
            logits = model.forward(x)
            loss = loss_fn.forward(logits, y)
            if first_loss is None:
                first_loss = loss
            model.backward(loss_fn.backward())
            opt.step()
        assert loss < first_loss * 0.5


class TestSchedulers:
    def test_exponential_decay(self):
        opt = SGD(_quadratic_params(), lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert np.isclose(opt.lr, 0.25)
        assert np.isclose(sched.current_lr, 0.25)

    def test_step_decay(self):
        opt = SGD(_quadratic_params(), lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert np.isclose(opt.lr, 1.0)
        sched.step()
        assert np.isclose(opt.lr, 0.1)

    def test_invalid_gamma(self):
        opt = SGD(_quadratic_params(), lr=1.0)
        with pytest.raises(ValueError):
            ExponentialLR(opt, gamma=0.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
