"""Behavioural tests for layers (shapes, modes, error handling)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    Conv1d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool1d,
    MaxPool2d,
    ReLU,
)
from repro.nn.layers.conv import col2im, im2col
from repro.utils.rng import new_rng


class TestLinear:
    def test_output_shape(self):
        layer = Linear(7, 3, rng=new_rng(0))
        assert layer.forward(np.zeros((5, 7))).shape == (5, 3)

    def test_rejects_wrong_input_dim(self):
        layer = Linear(7, 3, rng=new_rng(0))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((5, 6)))

    def test_no_bias_option(self):
        layer = Linear(4, 2, bias=False, rng=new_rng(0))
        assert len(layer.parameters()) == 1

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_backward_before_forward_raises(self):
        layer = Linear(4, 2, rng=new_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestConv:
    def test_conv2d_output_shape_with_padding(self):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=new_rng(0))
        assert layer.forward(np.zeros((2, 3, 16, 16))).shape == (2, 8, 16, 16)

    def test_conv2d_output_shape_with_stride(self):
        layer = Conv2d(1, 4, kernel_size=3, stride=2, rng=new_rng(0))
        assert layer.forward(np.zeros((1, 1, 9, 9))).shape == (1, 4, 4, 4)

    def test_conv1d_output_shape(self):
        layer = Conv1d(2, 4, kernel_size=5, padding=2, rng=new_rng(0))
        assert layer.forward(np.zeros((3, 2, 20))).shape == (3, 4, 20)

    def test_conv2d_rejects_wrong_channels(self):
        layer = Conv2d(3, 8, kernel_size=3, rng=new_rng(0))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 2, 8, 8)))

    def test_conv1d_rejects_wrong_rank(self):
        layer = Conv1d(3, 8, kernel_size=3, rng=new_rng(0))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 3, 8, 8)))

    def test_conv_empty_output_raises(self):
        layer = Conv2d(1, 1, kernel_size=5, rng=new_rng(0))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 1, 3, 3)))

    def test_im2col_col2im_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> (the two must be adjoint maps).
        rng = new_rng(3)
        x = rng.normal(size=(2, 3, 6, 6))
        cols, out_size = im2col(x, (3, 3), (1, 1), (1, 1))
        y = rng.normal(size=cols.shape)
        lhs = np.sum(cols * y)
        rhs = np.sum(x * col2im(y, x.shape, (3, 3), (1, 1), (1, 1), out_size))
        assert np.isclose(lhs, rhs)

    def test_conv2d_matches_manual_single_pixel(self):
        # 1x1 input, 1x1 kernel: convolution is a plain multiply-add.
        layer = Conv2d(1, 1, kernel_size=1, rng=new_rng(0))
        layer.weight.data[:] = 2.0
        layer.bias.data[:] = 0.5
        out = layer.forward(np.full((1, 1, 1, 1), 3.0))
        assert np.isclose(out[0, 0, 0, 0], 6.5)


class TestPooling:
    def test_maxpool2d_reduces_spatial_dims(self):
        assert MaxPool2d(2).forward(np.zeros((1, 2, 8, 8))).shape == (1, 2, 4, 4)

    def test_maxpool2d_takes_window_max(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool1d_rectangular_kernel(self):
        out = MaxPool1d(4).forward(np.zeros((2, 3, 12)))
        assert out.shape == (2, 3, 3)

    def test_maxpool_truncates_odd_sizes(self):
        out = MaxPool2d(2).forward(np.zeros((1, 1, 5, 5)))
        assert out.shape == (1, 1, 2, 2)

    def test_avgpool_averages(self):
        x = np.ones((1, 1, 4, 4))
        assert np.allclose(AvgPool2d(2).forward(x), 1.0)

    def test_pool_too_small_input_raises(self):
        with pytest.raises(ShapeError):
            MaxPool2d(4).forward(np.zeros((1, 1, 2, 2)))


class TestActivationsAndShape:
    def test_relu_clamps_negative(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        assert np.allclose(out, [[0.0, 2.0]])

    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=new_rng(0))
        layer.eval()
        x = np.ones((4, 10))
        assert np.allclose(layer.forward(x), x)

    def test_train_mode_zeroes_some_units(self):
        layer = Dropout(0.5, rng=new_rng(0))
        out = layer.forward(np.ones((10, 100)))
        assert np.any(out == 0.0)
        # Inverted dropout preserves the expectation.
        assert np.isclose(out.mean(), 1.0, atol=0.1)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=new_rng(0))
        out = layer.forward(np.ones((5, 20)))
        grad = layer.backward(np.ones((5, 20)))
        assert np.allclose((out == 0), (grad == 0))

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_train_normalises_batch(self):
        layer = BatchNorm1d(4)
        x = new_rng(0).normal(loc=3.0, scale=2.0, size=(64, 4))
        out = layer.forward(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_update(self):
        layer = BatchNorm1d(2)
        x = np.full((8, 2), 5.0)
        layer.forward(x)
        assert np.all(layer.running_mean > 0)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm1d(2)
        for __ in range(50):
            layer.forward(new_rng(1).normal(loc=2.0, size=(32, 2)))
        layer.eval()
        out = layer.forward(np.full((4, 2), 2.0))
        assert np.all(np.abs(out) < 1.0)

    def test_rejects_wrong_feature_count(self):
        with pytest.raises(ShapeError):
            BatchNorm1d(3).forward(np.zeros((4, 5)))
