"""Tests for parameter serialisation and aggregation helpers."""

import numpy as np
import pytest

from repro.nn.models import build_mlp
from repro.nn.serialization import (
    average_state_dicts,
    get_flat_params,
    model_size_bytes,
    num_parameters,
    set_flat_params,
    state_dict_distance,
)


class TestFlatParams:
    def test_roundtrip(self):
        model = build_mlp(input_dim=6, num_classes=3, hidden_dims=(5,), seed=0)
        flat = get_flat_params(model)
        other = build_mlp(input_dim=6, num_classes=3, hidden_dims=(5,), seed=1)
        set_flat_params(other, flat)
        assert np.allclose(get_flat_params(other), flat)

    def test_flat_length_matches_num_parameters(self):
        model = build_mlp(input_dim=6, num_classes=3, hidden_dims=(5,), seed=0)
        assert get_flat_params(model).size == num_parameters(model)

    def test_wrong_length_raises(self):
        model = build_mlp(input_dim=4, num_classes=2, hidden_dims=(3,), seed=0)
        with pytest.raises(ValueError):
            set_flat_params(model, np.zeros(3))


class TestAverageStateDicts:
    def test_uniform_average(self):
        states = [{"w": np.array([0.0, 0.0])}, {"w": np.array([2.0, 4.0])}]
        avg = average_state_dicts(states)
        assert np.allclose(avg["w"], [1.0, 2.0])

    def test_weighted_average_matches_eq17(self):
        # Eq. 17: weights proportional to batch sizes.
        states = [{"w": np.array([1.0])}, {"w": np.array([5.0])}]
        avg = average_state_dicts(states, weights=[1.0, 3.0])
        assert np.allclose(avg["w"], [4.0])

    def test_weights_are_normalised(self):
        states = [{"w": np.ones(2)}, {"w": np.ones(2) * 3}]
        assert np.allclose(
            average_state_dicts(states, [10, 10])["w"],
            average_state_dicts(states, [1, 1])["w"],
        )

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            average_state_dicts([])

    def test_mismatched_keys_raise(self):
        with pytest.raises(KeyError):
            average_state_dicts([{"a": np.ones(1)}, {"b": np.ones(1)}])

    def test_negative_weight_raises(self):
        states = [{"w": np.ones(1)}, {"w": np.ones(1)}]
        with pytest.raises(ValueError):
            average_state_dicts(states, weights=[-1.0, 1.0])

    def test_zero_total_weight_raises(self):
        states = [{"w": np.ones(1)}]
        with pytest.raises(ValueError):
            average_state_dicts(states, weights=[0.0])


class TestDistancesAndSizes:
    def test_distance_zero_for_identical(self):
        model = build_mlp(input_dim=4, num_classes=2, seed=0)
        state = model.state_dict()
        assert state_dict_distance(state, state) == 0.0

    def test_distance_positive_for_different(self):
        a = build_mlp(input_dim=4, num_classes=2, seed=0).state_dict()
        b = build_mlp(input_dim=4, num_classes=2, seed=1).state_dict()
        assert state_dict_distance(a, b) > 0.0

    def test_distance_mismatched_keys_raise(self):
        with pytest.raises(KeyError):
            state_dict_distance({"a": np.ones(1)}, {"b": np.ones(1)})

    def test_model_size_is_four_bytes_per_parameter(self):
        model = build_mlp(input_dim=4, num_classes=2, hidden_dims=(3,), seed=0)
        assert model_size_bytes(model) == 4 * num_parameters(model)
