"""Numerical gradient checks for every layer type.

Each check perturbs inputs (and parameters) with central differences and
compares against the analytic backward pass.  These are the foundation of
the whole reproduction: split federated learning is only as correct as the
gradients flowing through the split layer.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv1d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool1d,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.utils.rng import new_rng


def numeric_input_grad(layer, x, grad_out, eps=1e-6):
    """Central-difference gradient of sum(layer(x) * grad_out) w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = np.sum(layer.forward(x) * grad_out)
        flat[index] = original - eps
        minus = np.sum(layer.forward(x) * grad_out)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_layer(layer, x, atol=1e-5):
    """Assert the analytic input gradient matches the numerical one."""
    rng = new_rng(0)
    out = layer.forward(x)
    grad_out = rng.normal(size=out.shape)
    analytic = layer.backward(grad_out)
    numeric = numeric_input_grad(layer, x.copy(), grad_out)
    assert np.allclose(analytic, numeric, atol=atol), (
        f"{type(layer).__name__}: max err "
        f"{np.abs(analytic - numeric).max():.2e}"
    )


@pytest.fixture
def rng():
    return new_rng(42)


class TestInputGradients:
    def test_linear(self, rng):
        check_layer(Linear(6, 4, rng=rng), rng.normal(size=(3, 6)))

    def test_conv2d(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, padding=1, rng=rng)
        check_layer(layer, rng.normal(size=(2, 2, 5, 5)))

    def test_conv2d_stride(self, rng):
        layer = Conv2d(1, 2, kernel_size=3, stride=2, rng=rng)
        check_layer(layer, rng.normal(size=(2, 1, 7, 7)))

    def test_conv1d(self, rng):
        layer = Conv1d(2, 3, kernel_size=3, padding=1, rng=rng)
        check_layer(layer, rng.normal(size=(2, 2, 8)))

    def test_maxpool2d(self, rng):
        check_layer(MaxPool2d(2), rng.normal(size=(2, 2, 4, 4)))

    def test_maxpool1d(self, rng):
        check_layer(MaxPool1d(2), rng.normal(size=(2, 3, 8)))

    def test_avgpool2d(self, rng):
        check_layer(AvgPool2d(2), rng.normal(size=(2, 2, 4, 4)))

    def test_relu(self, rng):
        check_layer(ReLU(), rng.normal(size=(4, 7)) + 0.05)

    def test_tanh(self, rng):
        check_layer(Tanh(), rng.normal(size=(4, 7)))

    def test_sigmoid(self, rng):
        check_layer(Sigmoid(), rng.normal(size=(4, 7)))

    def test_flatten(self, rng):
        check_layer(Flatten(), rng.normal(size=(3, 2, 4, 4)))

    def test_batchnorm1d_eval_mode(self, rng):
        layer = BatchNorm1d(5)
        layer.eval()
        check_layer(layer, rng.normal(size=(4, 5)))

    def test_batchnorm1d_train_mode(self, rng):
        layer = BatchNorm1d(5)
        check_layer(layer, rng.normal(size=(6, 5)), atol=1e-4)

    def test_batchnorm2d_train_mode(self, rng):
        layer = BatchNorm2d(3)
        check_layer(layer, rng.normal(size=(2, 3, 3, 3)), atol=1e-4)


class TestParameterGradients:
    def test_linear_weight_grad(self, rng):
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(4, 5))
        out = layer.forward(x)
        grad_out = rng.normal(size=out.shape)
        layer.zero_grad()
        layer.backward(grad_out)
        analytic = layer.weight.grad.copy()

        eps = 1e-6
        numeric = np.zeros_like(analytic)
        for i in range(analytic.shape[0]):
            for j in range(analytic.shape[1]):
                layer.weight.data[i, j] += eps
                plus = np.sum(layer.forward(x) * grad_out)
                layer.weight.data[i, j] -= 2 * eps
                minus = np.sum(layer.forward(x) * grad_out)
                layer.weight.data[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_conv2d_weight_grad(self, rng):
        layer = Conv2d(1, 2, kernel_size=3, rng=rng)
        x = rng.normal(size=(2, 1, 5, 5))
        out = layer.forward(x)
        grad_out = rng.normal(size=out.shape)
        layer.zero_grad()
        layer.backward(grad_out)
        analytic = layer.weight.grad.copy()

        eps = 1e-6
        numeric = np.zeros_like(analytic)
        for i in range(analytic.shape[0]):
            for j in range(analytic.shape[1]):
                layer.weight.data[i, j] += eps
                plus = np.sum(layer.forward(x) * grad_out)
                layer.weight.data[i, j] -= 2 * eps
                minus = np.sum(layer.forward(x) * grad_out)
                layer.weight.data[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_bias_grad_is_sum_of_output_grads(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))
        layer.forward(x)
        grad_out = rng.normal(size=(5, 2))
        layer.zero_grad()
        layer.backward(grad_out)
        assert np.allclose(layer.bias.grad, grad_out.sum(axis=0))

    def test_gradients_accumulate_across_calls(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = np.ones((4, 2))
        layer.forward(x)
        layer.backward(grad_out)
        once = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(grad_out)
        assert np.allclose(layer.weight.grad, 2 * once)
