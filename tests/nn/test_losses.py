"""Tests for loss functions."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.losses import CrossEntropyLoss, MSELoss, one_hot, softmax
from repro.utils.rng import new_rng


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(new_rng(0).normal(size=(5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)

    def test_monotone_in_logits(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probs[0, 2] > probs[0, 1] > probs[0, 0]


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(encoded, np.eye(3)[[0, 2, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestCrossEntropyLoss:
    def test_uniform_logits_give_log_num_classes(self):
        loss = CrossEntropyLoss()
        value = loss.forward(np.zeros((4, 10)), np.arange(4) % 10)
        assert np.isclose(value, np.log(10), atol=1e-6)

    def test_perfect_prediction_has_near_zero_loss(self):
        loss = CrossEntropyLoss()
        logits = np.full((3, 4), -100.0)
        labels = np.array([0, 1, 2])
        logits[np.arange(3), labels] = 100.0
        assert loss.forward(logits, labels) < 1e-6

    def test_gradient_matches_numeric(self):
        rng = new_rng(0)
        logits = rng.normal(size=(4, 5))
        labels = rng.integers(0, 5, size=4)
        loss = CrossEntropyLoss()
        loss.forward(logits, labels)
        analytic = loss.backward()

        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric[i, j] = (
                    CrossEntropyLoss().forward(plus, labels)
                    - CrossEntropyLoss().forward(minus, labels)
                ) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_gradient_rows_sum_to_zero(self):
        loss = CrossEntropyLoss()
        logits = new_rng(1).normal(size=(6, 3))
        loss.forward(logits, np.zeros(6, dtype=int))
        assert np.allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_batch_mismatch_raises(self):
        with pytest.raises(ShapeError):
            CrossEntropyLoss().forward(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class TestMSELoss:
    def test_zero_for_equal_inputs(self):
        loss = MSELoss()
        x = np.ones((3, 3))
        assert loss.forward(x, x) == 0.0

    def test_value_and_gradient(self):
        loss = MSELoss()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        assert np.isclose(loss.forward(pred, target), 2.5)
        assert np.allclose(loss.backward(), pred)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))
