"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.data.synthetic import make_blobs
from repro.nn.models import build_mlp
from repro.nn.split import split_model
from repro.utils.rng import new_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return new_rng(1234)


@pytest.fixture
def blobs():
    """A tiny vector dataset (32-dim, 4 classes) for fast training tests."""
    return make_blobs(train_samples=400, test_samples=100, seed=0)


@pytest.fixture
def tiny_mlp():
    """A small MLP matching the blobs dataset."""
    return build_mlp(input_dim=32, num_classes=4, hidden_dims=(32, 16), seed=0)


@pytest.fixture
def tiny_split(tiny_mlp):
    """The tiny MLP split after its first hidden layer."""
    return split_model(tiny_mlp, split_index=2)


@pytest.fixture
def fast_config() -> ExperimentConfig:
    """A configuration that trains in well under a second."""
    return ExperimentConfig(
        algorithm="mergesfl",
        dataset="blobs",
        model="mlp",
        num_workers=5,
        num_rounds=3,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=300,
        test_samples=80,
        learning_rate=0.1,
        seed=3,
    )
