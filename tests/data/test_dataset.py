"""Tests for the in-memory dataset containers."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, TrainTestSplit
from repro.exceptions import DataError


def _dataset(samples=10, classes=3):
    rng = np.random.default_rng(0)
    return Dataset(
        data=rng.normal(size=(samples, 4)),
        targets=rng.integers(0, classes, size=samples),
        num_classes=classes,
        name="toy",
    )


class TestDataset:
    def test_len_and_feature_shape(self):
        ds = _dataset()
        assert len(ds) == 10
        assert ds.feature_shape == (4,)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int), num_classes=2)

    def test_targets_out_of_range_raise(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((2, 2)), np.array([0, 5]), num_classes=2)

    def test_subset_copies_data(self):
        ds = _dataset()
        sub = ds.subset(np.array([0, 1]))
        sub.data[0, 0] = 99.0
        assert ds.data[0, 0] != 99.0
        assert len(sub) == 2

    def test_subset_out_of_range_raises(self):
        with pytest.raises(DataError):
            _dataset().subset(np.array([100]))

    def test_class_counts_sum_to_samples(self):
        ds = _dataset(samples=20, classes=4)
        counts = ds.class_counts()
        assert counts.sum() == 20
        assert counts.shape == (4,)


class TestTrainTestSplit:
    def test_properties_delegate_to_train(self):
        split = TrainTestSplit(train=_dataset(), test=_dataset(samples=5))
        assert split.num_classes == 3
        assert split.feature_shape == (4,)
