"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DATASET_REGISTRY,
    DATASET_SPECS,
    make_blobs,
    make_cifar10,
    make_dataset,
)
from repro.exceptions import ConfigurationError


class TestSpecs:
    def test_every_spec_has_a_generator(self):
        assert set(DATASET_SPECS) == set(DATASET_REGISTRY)

    def test_paper_shapes(self):
        assert DATASET_SPECS["har"].feature_shape == (9, 128)
        assert DATASET_SPECS["har"].num_classes == 6
        assert DATASET_SPECS["cifar10"].feature_shape == (3, 32, 32)
        assert DATASET_SPECS["cifar10"].num_classes == 10
        assert DATASET_SPECS["speech"].num_classes == 10

    def test_default_models_match_paper_pairing(self):
        assert DATASET_SPECS["har"].default_model == "cnn_h"
        assert DATASET_SPECS["speech"].default_model == "cnn_s"
        assert DATASET_SPECS["cifar10"].default_model == "alexnet_s"
        assert DATASET_SPECS["image100"].default_model == "vgg_s"


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(DATASET_REGISTRY))
    def test_shapes_and_sizes(self, name):
        split = make_dataset(name, train_samples=64, test_samples=16, seed=0)
        spec = DATASET_SPECS[name]
        assert split.train.data.shape == (64, *spec.feature_shape)
        assert split.test.data.shape == (16, *spec.feature_shape)
        assert split.num_classes == spec.num_classes

    def test_reproducible_with_same_seed(self):
        a = make_cifar10(train_samples=16, test_samples=4, seed=5)
        b = make_cifar10(train_samples=16, test_samples=4, seed=5)
        assert np.allclose(a.train.data, b.train.data)
        assert np.array_equal(a.train.targets, b.train.targets)

    def test_different_seed_gives_different_data(self):
        a = make_cifar10(train_samples=16, test_samples=4, seed=1)
        b = make_cifar10(train_samples=16, test_samples=4, seed=2)
        assert not np.allclose(a.train.data, b.train.data)

    def test_all_classes_present_in_reasonable_sample(self):
        split = make_blobs(train_samples=400, test_samples=50, seed=0)
        assert set(np.unique(split.train.targets)) == set(range(4))

    def test_classes_are_separable_by_template_matching(self):
        # Nearest-class-mean classification on the training templates should
        # beat chance by a wide margin -- the datasets must be learnable.
        split = make_cifar10(train_samples=400, test_samples=100, seed=0)
        train = split.train.data.reshape(len(split.train), -1)
        test = split.test.data.reshape(len(split.test), -1)
        means = np.stack([
            train[split.train.targets == cls].mean(axis=0)
            for cls in range(split.num_classes)
        ])
        distances = ((test[:, None, :] - means[None, :, :]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == split.test.targets).mean()
        assert accuracy > 0.8

    def test_unknown_dataset_raises(self):
        with pytest.raises(ConfigurationError):
            make_dataset("mnist")
