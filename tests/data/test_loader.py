"""Tests for the batch loader."""

import numpy as np
import pytest

from repro.data.loader import BatchLoader
from repro.data.synthetic import make_blobs


@pytest.fixture
def loader():
    data = make_blobs(train_samples=50, test_samples=10, seed=0)
    return BatchLoader(data.train, seed=0)


class TestBatchLoader:
    def test_batch_shapes(self, loader):
        data, labels = loader.next_batch(8)
        assert data.shape == (8, 32)
        assert labels.shape == (8,)

    def test_batch_larger_than_shard_is_clamped(self, loader):
        data, __ = loader.next_batch(500)
        assert data.shape[0] == 50

    def test_batch_size_can_change_between_calls(self, loader):
        assert loader.next_batch(4)[0].shape[0] == 4
        assert loader.next_batch(16)[0].shape[0] == 16

    def test_cycles_through_whole_dataset(self, loader):
        seen = set()
        for __ in range(10):
            data, __labels = loader.next_batch(5)
            for row in data:
                seen.add(tuple(np.round(row[:3], 6)))
        assert len(seen) == 50

    def test_invalid_batch_size(self, loader):
        with pytest.raises(ValueError):
            loader.next_batch(0)

    def test_eval_batches_cover_dataset_in_order(self, loader):
        total = sum(batch.shape[0] for batch, __ in loader.iter_eval_batches(16))
        assert total == 50

    def test_deterministic_given_seed(self):
        data = make_blobs(train_samples=30, test_samples=5, seed=0)
        first = BatchLoader(data.train, seed=7).next_batch(10)
        second = BatchLoader(data.train, seed=7).next_batch(10)
        assert np.allclose(first[0], second[0])
