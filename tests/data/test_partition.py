"""Tests for IID/Dirichlet partitioning and label distributions."""

import numpy as np
import pytest

from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    label_distribution,
    non_iid_level_to_alpha,
    partition_dataset,
)
from repro.data.synthetic import make_blobs
from repro.utils.rng import new_rng


def _coverage(shards, total):
    merged = np.concatenate(shards)
    return len(merged) == total and len(np.unique(merged)) == total


class TestNonIidLevel:
    def test_zero_means_iid(self):
        assert non_iid_level_to_alpha(0) is None

    def test_reciprocal_mapping(self):
        assert non_iid_level_to_alpha(10) == pytest.approx(0.1)
        assert non_iid_level_to_alpha(0.5) == pytest.approx(2.0)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            non_iid_level_to_alpha(-1)


class TestIidPartition:
    def test_covers_all_samples_without_overlap(self):
        targets = np.arange(103) % 5
        shards = iid_partition(targets, 7, new_rng(0))
        assert len(shards) == 7
        assert _coverage(shards, 103)

    def test_shard_sizes_balanced(self):
        shards = iid_partition(np.zeros(100, dtype=int), 4, new_rng(0))
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1


class TestDirichletPartition:
    def test_covers_all_samples_without_overlap(self):
        targets = np.repeat(np.arange(5), 40)
        shards = dirichlet_partition(targets, 6, alpha=0.3, rng=new_rng(0))
        assert _coverage(shards, 200)

    def test_minimum_shard_size_respected(self):
        targets = np.repeat(np.arange(4), 50)
        shards = dirichlet_partition(
            targets, 8, alpha=0.05, rng=new_rng(1), min_samples=2
        )
        assert min(len(s) for s in shards) >= 2

    def test_small_alpha_gives_more_skew_than_large_alpha(self):
        targets = np.repeat(np.arange(5), 100)
        skewed = dirichlet_partition(targets, 10, alpha=0.05, rng=new_rng(0))
        uniform = dirichlet_partition(targets, 10, alpha=100.0, rng=new_rng(0))

        def mean_entropy(shards):
            entropies = []
            for shard in shards:
                dist = label_distribution(targets, shard, 5)
                entropies.append(-np.sum(dist * np.log(dist + 1e-12)))
            return np.mean(entropies)

        assert mean_entropy(skewed) < mean_entropy(uniform)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(10, dtype=int), 0, alpha=1.0)
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(10, dtype=int), 2, alpha=0.0)


class TestPartitionDataset:
    def test_iid_level_zero_uses_even_split(self):
        data = make_blobs(train_samples=120, test_samples=10, seed=0)
        shards = partition_dataset(data.train, 6, non_iid_level=0.0, seed=0)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_given_seed(self):
        data = make_blobs(train_samples=120, test_samples=10, seed=0)
        a = partition_dataset(data.train, 5, non_iid_level=5.0, seed=3)
        b = partition_dataset(data.train, 5, non_iid_level=5.0, seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestLabelDistribution:
    def test_sums_to_one(self):
        targets = np.array([0, 0, 1, 2, 2, 2])
        dist = label_distribution(targets, np.arange(6), 3)
        assert np.isclose(dist.sum(), 1.0)
        assert np.allclose(dist, [2 / 6, 1 / 6, 3 / 6])

    def test_empty_indices_give_uniform(self):
        dist = label_distribution(np.array([0, 1]), np.array([], dtype=int), 4)
        assert np.allclose(dist, 0.25)
