"""Tests for cluster construction, state estimation, traffic and timing."""

import numpy as np
import pytest

from repro.simulation.cluster import build_cluster
from repro.simulation.estimator import BandwidthEstimator, WorkerStateEstimator
from repro.simulation.timing import (
    average_waiting_time,
    iteration_duration,
    round_duration,
    worker_round_duration,
)
from repro.simulation.traffic import TrafficMeter, feature_bytes


class TestCluster:
    def test_build_cluster_size_and_types(self):
        cluster = build_cluster(num_workers=12, bandwidth_budget_mbps=100, seed=0)
        assert len(cluster) == 12
        assert {d.profile.name for d in cluster.devices} <= {
            "jetson_tx2", "jetson_nx", "jetson_agx",
        }

    def test_compute_and_comm_time_vectors(self):
        cluster = build_cluster(num_workers=6, bandwidth_budget_mbps=100, seed=0)
        mus = cluster.compute_times(1e6)
        betas = cluster.comm_times(2048)
        assert mus.shape == (6,) and betas.shape == (6,)
        assert np.all(mus > 0) and np.all(betas > 0)

    def test_heterogeneity_present(self):
        cluster = build_cluster(num_workers=30, bandwidth_budget_mbps=100, seed=0)
        mus = cluster.compute_times(1e6)
        assert mus.max() / mus.min() > 3.0

    def test_advance_round_refreshes_budget(self):
        cluster = build_cluster(num_workers=4, bandwidth_budget_mbps=100, seed=0)
        budgets = set()
        for round_index in range(5):
            cluster.advance_round(round_index)
            budgets.add(round(cluster.current_budget_mbps, 4))
        assert len(budgets) > 1
        assert all(b > 0 for b in budgets)

    def test_deterministic_given_seed(self):
        a = build_cluster(num_workers=5, bandwidth_budget_mbps=50, seed=9)
        b = build_cluster(num_workers=5, bandwidth_budget_mbps=50, seed=9)
        assert [d.profile.name for d in a.devices] == [d.profile.name for d in b.devices]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_cluster(num_workers=0, bandwidth_budget_mbps=10)


class TestWorkerStateEstimator:
    def test_first_observation_taken_verbatim(self):
        est = WorkerStateEstimator(num_workers=2, alpha=0.8)
        est.update(0, mu=1.0, beta=2.0)
        mus, betas = est.estimates()
        assert mus[0] == 1.0 and betas[0] == 2.0

    def test_moving_average_eq5_eq6(self):
        est = WorkerStateEstimator(num_workers=1, alpha=0.8)
        est.update(0, mu=1.0, beta=1.0)
        est.update(0, mu=2.0, beta=3.0)
        mus, betas = est.estimates()
        assert mus[0] == pytest.approx(0.8 * 1.0 + 0.2 * 2.0)
        assert betas[0] == pytest.approx(0.8 * 1.0 + 0.2 * 3.0)

    def test_per_sample_duration_is_sum(self):
        est = WorkerStateEstimator(num_workers=1, alpha=0.5)
        est.update(0, mu=0.4, beta=0.6)
        assert est.per_sample_duration()[0] == pytest.approx(1.0)

    def test_update_all_and_initialised(self):
        est = WorkerStateEstimator(num_workers=3, alpha=0.5)
        assert not est.is_initialised()
        est.update_all(np.ones(3), np.ones(3))
        assert est.is_initialised()

    def test_negative_observation_raises(self):
        est = WorkerStateEstimator(num_workers=1)
        with pytest.raises(ValueError):
            est.update(0, mu=-1.0, beta=0.0)


class TestBandwidthEstimator:
    def test_estimate_tracks_observations(self):
        est = BandwidthEstimator(initial_mbps=100)
        for __ in range(10):
            est.observe(50.0)
        assert 45 <= est.estimate() <= 60

    def test_estimate_is_conservative(self):
        est = BandwidthEstimator(initial_mbps=100, quantile=0.25)
        for value in (80, 90, 100, 110, 120):
            est.observe(value)
        assert est.estimate() <= 100

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            BandwidthEstimator(initial_mbps=0)
        est = BandwidthEstimator(initial_mbps=10)
        with pytest.raises(ValueError):
            est.observe(0)


class TestTraffic:
    def test_feature_bytes(self):
        assert feature_bytes((8, 4, 4), batch_size=2) == 8 * 4 * 4 * 4 * 2

    def test_meter_accumulates_by_category(self):
        meter = TrafficMeter()
        meter.add("model", 1000)
        meter.add_feature_exchange(2000)
        assert meter.total_bytes == pytest.approx(3000)
        breakdown = meter.breakdown()
        assert breakdown["feature"] == pytest.approx(1000)
        assert breakdown["gradient"] == pytest.approx(1000)

    def test_model_exchange_counts_both_directions(self):
        meter = TrafficMeter()
        meter.add_model_exchange(500, num_workers=3)
        assert meter.total_bytes == pytest.approx(3000)

    def test_megabytes(self):
        meter = TrafficMeter()
        meter.add("model", 2e6)
        assert meter.total_megabytes == pytest.approx(2.0)

    def test_invalid_category_and_negative(self):
        meter = TrafficMeter()
        with pytest.raises(ValueError):
            meter.add("unknown", 10)
        with pytest.raises(ValueError):
            meter.add("model", -1)


class TestTiming:
    def test_iteration_and_round_duration(self):
        assert iteration_duration(10, 0.1, 0.2) == pytest.approx(3.0)
        assert worker_round_duration(5, 10, 0.1, 0.2) == pytest.approx(15.0)

    def test_round_duration_is_max(self):
        assert round_duration(np.array([1.0, 5.0, 3.0])) == 5.0

    def test_average_waiting_time_eq8(self):
        durations = np.array([1.0, 3.0, 5.0])
        assert average_waiting_time(durations) == pytest.approx((4 + 2 + 0) / 3)

    def test_equal_durations_have_zero_waiting(self):
        assert average_waiting_time(np.array([2.0, 2.0, 2.0])) == 0.0

    def test_empty_inputs(self):
        assert round_duration(np.array([])) == 0.0
        assert average_waiting_time(np.array([])) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            iteration_duration(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            round_duration(np.array([-1.0]))
