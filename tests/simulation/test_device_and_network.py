"""Tests for device profiles, the WiFi model and worker devices."""

import numpy as np
import pytest

from repro.simulation.device import (
    DEVICE_MIX,
    DEVICE_PROFILES,
    JETSON_AGX,
    JETSON_NX,
    JETSON_TX2,
    heterogeneity_span,
    sample_device_profile,
)
from repro.simulation.network import (
    DISTANCE_GROUPS,
    MAX_BANDWIDTH_MBPS,
    MIN_BANDWIDTH_MBPS,
    WifiNetworkModel,
    assign_distance,
)
from repro.simulation.worker_device import WorkerDevice
from repro.utils.rng import new_rng


class TestDeviceProfiles:
    def test_table2_families_present(self):
        assert set(DEVICE_PROFILES) == {"jetson_tx2", "jetson_nx", "jetson_agx"}

    def test_table2_memory_sizes(self):
        assert JETSON_TX2.memory_gb == 8
        assert JETSON_NX.memory_gb == 8
        assert JETSON_AGX.memory_gb == 32

    def test_mode_counts_match_paper(self):
        # "TX2 can work in one of four modes while NX and AGX work in eight".
        assert JETSON_TX2.num_modes == 4
        assert JETSON_NX.num_modes == 8
        assert JETSON_AGX.num_modes == 8

    def test_throughput_decreases_with_mode_index(self):
        speeds = [JETSON_NX.throughput(mode) for mode in range(JETSON_NX.num_modes)]
        assert all(a > b for a, b in zip(speeds, speeds[1:]))

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            JETSON_TX2.throughput(10)

    def test_heterogeneity_span_is_roughly_hundredfold(self):
        # The paper reports AGX mode 0 being ~100x faster than TX2's slowest mode.
        assert 50 <= heterogeneity_span() <= 200

    def test_device_mix_matches_testbed(self):
        assert DEVICE_MIX["jetson_tx2"] == pytest.approx(30 / 80)
        assert DEVICE_MIX["jetson_nx"] == pytest.approx(40 / 80)
        assert DEVICE_MIX["jetson_agx"] == pytest.approx(10 / 80)

    def test_sampling_follows_mix(self):
        rng = new_rng(0)
        names = [sample_device_profile(rng).name for __ in range(2000)]
        fraction_nx = names.count("jetson_nx") / len(names)
        assert 0.4 < fraction_nx < 0.6


class TestWifiModel:
    def test_four_distance_groups(self):
        assert sorted(DISTANCE_GROUPS) == [2.0, 8.0, 14.0, 20.0]

    def test_bandwidth_within_measured_range(self):
        rng = new_rng(0)
        model = WifiNetworkModel(distance_m=20.0)
        samples = [model.sample_bandwidth_mbps(rng) for __ in range(200)]
        assert all(MIN_BANDWIDTH_MBPS <= s <= MAX_BANDWIDTH_MBPS for s in samples)

    def test_closer_devices_get_more_bandwidth_on_average(self):
        rng = new_rng(0)
        near = WifiNetworkModel(distance_m=2.0)
        far = WifiNetworkModel(distance_m=20.0)
        near_mean = np.mean([near.sample_bandwidth_mbps(rng) for __ in range(300)])
        far_mean = np.mean([far.sample_bandwidth_mbps(rng) for __ in range(300)])
        assert near_mean > far_mean

    def test_unlisted_distance_interpolates(self):
        model = WifiNetworkModel(distance_m=11.0)
        assert DISTANCE_GROUPS[14.0] < model.mean_bandwidth_mbps < DISTANCE_GROUPS[8.0]

    def test_assign_distance_round_robin(self):
        assert assign_distance(0) == assign_distance(4)
        assert len({assign_distance(i) for i in range(4)}) == 4


class TestWorkerDevice:
    def _device(self, seed=0):
        return WorkerDevice(
            worker_id=0,
            profile=JETSON_NX,
            network=WifiNetworkModel(distance_m=8.0),
            rng=new_rng(seed),
            mode_change_interval=5,
        )

    def test_compute_time_scales_with_flops(self):
        device = self._device()
        assert device.compute_time_per_sample(2e6) == pytest.approx(
            2 * device.compute_time_per_sample(1e6)
        )

    def test_comm_time_scales_with_bytes(self):
        device = self._device()
        assert device.comm_time_per_sample(2000) == pytest.approx(
            2 * device.comm_time_per_sample(1000)
        )

    def test_bandwidth_redrawn_every_round(self):
        device = self._device()
        values = set()
        for round_index in range(5):
            device.advance_round(round_index)
            values.add(round(device.bandwidth_mbps, 6))
        assert len(values) > 1

    def test_mode_changes_only_at_interval(self):
        device = self._device(seed=3)
        initial_mode = device.mode
        device.advance_round(1)
        assert device.mode == initial_mode  # before the interval elapses
        changed = False
        for round_index in range(2, 40):
            device.advance_round(round_index)
            if device.mode != initial_mode:
                changed = True
                break
        assert changed

    def test_invalid_inputs(self):
        device = self._device()
        with pytest.raises(ValueError):
            device.compute_time_per_sample(0)
        with pytest.raises(ValueError):
            device.comm_time_per_sample(-1)
        with pytest.raises(ValueError):
            device.model_transfer_time(-5)
