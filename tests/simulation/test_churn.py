"""ChurnModel: determinism, rate extremes, deadlines, rejoin delays."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.churn import CHURN_SEED_OFFSET, ChurnModel, RoundChurn

IDS = [3, 7, 11, 20, 42]
DURATIONS = np.array([1.0, 2.0, 3.0, 4.0, 10.0])


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_dropout_rate_range(self, rate):
        with pytest.raises(ValueError, match="dropout_rate"):
            ChurnModel(dropout_rate=rate)

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="straggler_deadline"):
            ChurnModel(straggler_deadline=-1.0)

    def test_negative_rejoin_bound_rejected(self):
        with pytest.raises(ValueError, match="rejoin_staleness_bound"):
            ChurnModel(rejoin_staleness_bound=-1)


class TestDeterminism:
    def test_same_round_same_draw(self):
        model = ChurnModel(dropout_rate=0.5, rejoin_staleness_bound=3, seed=9)
        first = model.round_churn(4, IDS, DURATIONS)
        second = ChurnModel(
            dropout_rate=0.5, rejoin_staleness_bound=3, seed=9
        ).round_churn(4, IDS, DURATIONS)
        assert first.dropped == second.dropped
        assert first.rejoin_delays == second.rejoin_delays

    def test_rounds_draw_independent_streams(self):
        model = ChurnModel(dropout_rate=0.5, seed=9)
        draws = [model.round_churn(r, IDS, DURATIONS).dropped for r in range(20)]
        assert len({tuple(d) for d in draws}) > 1

    def test_seed_offset_separates_streams(self):
        # The churn stream must not collide with the engine round streams.
        assert CHURN_SEED_OFFSET not in (9173, 40617, 77003, 614657)


class TestDropouts:
    def test_rate_zero_drops_nobody(self):
        churn = ChurnModel(dropout_rate=0.0, seed=1).round_churn(0, IDS, DURATIONS)
        assert churn.dropped == []
        assert churn.deadline is None
        assert churn.rejoin_delays == {}

    def test_rate_one_drops_everyone(self):
        churn = ChurnModel(dropout_rate=1.0, seed=1).round_churn(0, IDS, DURATIONS)
        assert churn.dropped == IDS

    def test_intermediate_rate_drops_roughly_that_fraction(self):
        model = ChurnModel(dropout_rate=0.3, seed=5)
        ids = list(range(100))
        durations = np.ones(100)
        total = sum(
            len(model.round_churn(r, ids, durations).dropped) for r in range(20)
        )
        assert 0.2 < total / 2000 < 0.4


class TestStragglers:
    def test_deadline_is_a_median_multiple(self):
        churn = ChurnModel(straggler_deadline=1.5, seed=1).round_churn(
            0, IDS, DURATIONS
        )
        assert churn.deadline == pytest.approx(1.5 * 3.0)
        # Only the 10.0s worker exceeds 4.5s.
        assert churn.stragglers == [42]

    def test_disabled_deadline_means_wait_for_all(self):
        churn = ChurnModel(straggler_deadline=0.0, seed=1).round_churn(
            0, IDS, DURATIONS
        )
        assert churn.deadline is None
        assert churn.stragglers == []

    def test_dropped_workers_are_not_double_counted(self):
        churn = ChurnModel(
            dropout_rate=1.0, straggler_deadline=1.0, seed=1
        ).round_churn(0, IDS, DURATIONS)
        assert churn.dropped == IDS
        assert churn.stragglers == []
        assert churn.missing == IDS


class TestRejoinDelays:
    def test_dropped_delays_stay_within_the_bound(self):
        model = ChurnModel(dropout_rate=0.6, rejoin_staleness_bound=3, seed=2)
        for round_index in range(10):
            churn = model.round_churn(round_index, IDS, DURATIONS)
            assert set(churn.rejoin_delays) == set(churn.missing)
            for delay in churn.rejoin_delays.values():
                assert 1 <= delay <= 3

    def test_stragglers_rejoin_next_round(self):
        churn = ChurnModel(
            straggler_deadline=1.5, rejoin_staleness_bound=3, seed=2
        ).round_churn(0, IDS, DURATIONS)
        assert churn.rejoin_delays == {42: 1}

    def test_bound_zero_means_nobody_rejoins(self):
        churn = ChurnModel(dropout_rate=1.0, seed=2).round_churn(
            0, IDS, DURATIONS
        )
        assert churn.rejoin_delays == {}

    def test_missing_concatenates_dropped_then_stragglers(self):
        churn = RoundChurn(dropped=[1, 2], stragglers=[9])
        assert churn.missing == [1, 2, 9]


class TestPerWorkerRates:
    def test_mapping_with_uniform_values_matches_scalar(self):
        """Resolving the rate per worker must not disturb the draw: a
        mapping that assigns every worker the scalar's value reproduces the
        scalar run exactly, round for round."""
        scalar = ChurnModel(dropout_rate=0.4, seed=9)
        mapped = ChurnModel(dropout_rate={w: 0.4 for w in IDS}, seed=9)
        for round_index in range(10):
            assert (
                scalar.round_churn(round_index, IDS, DURATIONS).dropped
                == mapped.round_churn(round_index, IDS, DURATIONS).dropped
            )

    def test_callable_with_constant_value_matches_scalar(self):
        scalar = ChurnModel(dropout_rate=0.4, seed=9)
        called = ChurnModel(dropout_rate=lambda worker_id: 0.4, seed=9)
        for round_index in range(10):
            assert (
                scalar.round_churn(round_index, IDS, DURATIONS).dropped
                == called.round_churn(round_index, IDS, DURATIONS).dropped
            )

    def test_heterogeneous_rates_differentiate_workers(self):
        rates = {3: 0.0, 7: 0.0, 11: 0.0, 20: 1.0, 42: 1.0}
        model = ChurnModel(dropout_rate=rates, seed=4)
        for round_index in range(5):
            assert model.round_churn(round_index, IDS, DURATIONS).dropped == [20, 42]

    def test_mapping_falls_back_to_zero_for_unlisted_workers(self):
        model = ChurnModel(dropout_rate={42: 1.0}, seed=4)
        churn = model.round_churn(0, IDS, DURATIONS)
        assert churn.dropped == [42]

    def test_rate_of_resolves_each_form(self):
        assert ChurnModel(dropout_rate=0.25).rate_of(99) == 0.25
        assert ChurnModel(dropout_rate={1: 0.5}).rate_of(1) == 0.5
        assert ChurnModel(dropout_rate=lambda w: w / 100).rate_of(30) == 0.3

    def test_per_worker_rates_validated_at_resolution(self):
        model = ChurnModel(dropout_rate={1: 1.5})
        with pytest.raises(ValueError, match="dropout rate"):
            model.round_churn(0, [1], np.ones(1))
