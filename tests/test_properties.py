"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.batching import regulate_batch_sizes
from repro.core.divergence import iid_distribution, kl_divergence, mixed_label_distribution
from repro.core.merging import FeatureMerger
from repro.core.selection import selection_priorities
from repro.data.partition import dirichlet_partition, iid_partition, label_distribution
from repro.nn.losses import one_hot, softmax
from repro.nn.models import build_mlp
from repro.nn.serialization import average_state_dicts, get_flat_params, set_flat_params
from repro.simulation.timing import average_waiting_time, round_duration
from repro.utils.numeric import normalize_distribution
from repro.utils.rng import new_rng

# Strategies -----------------------------------------------------------------

positive_floats = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
distributions = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=8),
    elements=st.floats(min_value=0.0, max_value=10.0),
).filter(lambda arr: arr.sum() > 1e-6)


class TestDistributionProperties:
    @given(distributions)
    @settings(max_examples=50, deadline=None)
    def test_normalize_sums_to_one(self, vector):
        assert np.isclose(normalize_distribution(vector).sum(), 1.0)

    @given(distributions)
    @settings(max_examples=50, deadline=None)
    def test_kl_self_divergence_is_zero(self, vector):
        phi = normalize_distribution(vector)
        assert kl_divergence(phi, phi) < 1e-9

    @given(distributions, distributions)
    @settings(max_examples=50, deadline=None)
    def test_kl_is_non_negative(self, first, second):
        if first.shape != second.shape:
            return
        assert kl_divergence(first, second) >= -1e-12

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_mixed_distribution_is_a_distribution(self, workers, classes):
        rng = new_rng(workers * 10 + classes)
        dists = rng.dirichlet([0.5] * classes, size=workers)
        batches = rng.integers(1, 32, size=workers)
        phi = mixed_label_distribution(dists, batches, list(range(workers)))
        assert np.isclose(phi.sum(), 1.0)
        assert np.all(phi >= 0)

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_iid_distribution_of_identical_rows_is_that_row(self, workers):
        row = np.array([0.1, 0.2, 0.3, 0.4])
        dists = np.tile(row, (workers, 1))
        assert np.allclose(iid_distribution(dists), row)


class TestBatchRegulationProperties:
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 16),
                      elements=st.floats(min_value=1e-3, max_value=10.0)),
           st.integers(min_value=1, max_value=128))
    @settings(max_examples=50, deadline=None)
    def test_batches_bounded_and_fastest_gets_max(self, durations, max_batch):
        sizes = regulate_batch_sizes(durations, max_batch)
        assert np.all(sizes >= 1)
        assert np.all(sizes <= max_batch)
        assert sizes[int(np.argmin(durations))] == max_batch

    @given(hnp.arrays(dtype=np.float64, shape=st.integers(2, 16),
                      elements=st.floats(min_value=1e-3, max_value=10.0)))
    @settings(max_examples=50, deadline=None)
    def test_slower_workers_never_get_larger_batches(self, durations):
        sizes = regulate_batch_sizes(durations, 64)
        order = np.argsort(durations)
        sorted_sizes = sizes[order]
        assert np.all(np.diff(sorted_sizes) <= 0)


class TestSelectionProperties:
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 20),
                      elements=st.floats(min_value=0, max_value=100)))
    @settings(max_examples=50, deadline=None)
    def test_priorities_positive_and_anti_monotone(self, counts):
        priorities = selection_priorities(counts)
        assert np.all(priorities > 0)
        order = np.argsort(counts)
        assert np.all(np.diff(priorities[order]) <= 1e-9)


class TestPartitionProperties:
    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=20, max_value=200),
           st.floats(min_value=0.05, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_dirichlet_partition_is_a_partition(self, workers, samples, alpha):
        rng = new_rng(workers + samples)
        targets = rng.integers(0, 4, size=samples)
        shards = dirichlet_partition(targets, workers, alpha, rng, min_samples=1)
        merged = np.sort(np.concatenate(shards))
        assert np.array_equal(merged, np.arange(samples))

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=10, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_iid_partition_is_a_partition(self, workers, samples):
        targets = np.zeros(samples, dtype=int)
        shards = iid_partition(targets, workers, new_rng(0))
        merged = np.sort(np.concatenate(shards))
        assert np.array_equal(merged, np.arange(samples))

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=10, max_value=80))
    @settings(max_examples=25, deadline=None)
    def test_label_distribution_is_normalised(self, classes, samples):
        rng = new_rng(classes * samples)
        targets = rng.integers(0, classes, size=samples)
        dist = label_distribution(targets, np.arange(samples), classes)
        assert np.isclose(dist.sum(), 1.0)


class TestNNProperties:
    @given(hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 8), st.integers(2, 10)),
                      elements=st.floats(min_value=-50, max_value=50)))
    @settings(max_examples=50, deadline=None)
    def test_softmax_rows_are_distributions(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=1), 1.0)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=2, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_one_hot_rows_sum_to_one(self, batch, classes):
        labels = new_rng(batch * classes).integers(0, classes, size=batch)
        encoded = one_hot(labels, classes)
        assert np.allclose(encoded.sum(axis=1), 1.0)
        assert np.array_equal(encoded.argmax(axis=1), labels)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_flat_params_roundtrip(self, seed):
        model = build_mlp(input_dim=6, num_classes=3, hidden_dims=(4,), seed=seed)
        flat = get_flat_params(model)
        clone = build_mlp(input_dim=6, num_classes=3, hidden_dims=(4,), seed=seed + 1)
        set_flat_params(clone, flat)
        assert np.allclose(get_flat_params(clone), flat)

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_average_state_dicts_stays_within_envelope(self, weights):
        states = [
            {"w": np.full(3, float(index))} for index in range(len(weights))
        ]
        averaged = average_state_dicts(states, weights)
        assert np.all(averaged["w"] >= 0.0)
        assert np.all(averaged["w"] <= len(weights) - 1 + 1e-12)


class TestMergingProperties:
    @given(st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=6),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_merge_dispatch_roundtrip(self, batch_sizes, feature_dim):
        rng = new_rng(sum(batch_sizes) + feature_dim)
        merger = FeatureMerger()
        features = [rng.normal(size=(size, feature_dim)) for size in batch_sizes]
        labels = [rng.integers(0, 3, size=size) for size in batch_sizes]
        ids = list(range(len(batch_sizes)))
        merged = merger.merge(ids, features, labels)
        assert merged.total_samples == sum(batch_sizes)
        gradient = rng.normal(size=merged.features.shape)
        segments = merger.dispatch(merged, gradient)
        reassembled = np.concatenate([segments[worker] for worker in ids], axis=0)
        assert np.allclose(reassembled, gradient)


class TestTimingProperties:
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 20),
                      elements=st.floats(min_value=0.0, max_value=1e4)))
    @settings(max_examples=50, deadline=None)
    def test_waiting_time_bounded_by_round_duration(self, durations):
        duration = round_duration(durations)
        waiting = average_waiting_time(durations)
        assert 0.0 <= waiting <= duration
