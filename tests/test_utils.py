"""Tests for shared utilities."""

import logging

import numpy as np
import pytest

from repro.utils.logging import configure_logging, get_logger
from repro.utils.numeric import moving_average, normalize_distribution, safe_divide
from repro.utils.rng import (
    get_rng_state,
    new_rng,
    set_rng_state,
    spawn_rngs,
    spawned_rng,
)


class TestRng:
    def test_same_seed_same_stream(self):
        assert new_rng(5).random() == new_rng(5).random()

    def test_spawn_produces_independent_streams(self):
        rngs = spawn_rngs(0, 3)
        values = [rng.random() for rng in rngs]
        assert len(set(values)) == 3

    def test_spawn_count_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
        assert spawn_rngs(0, 0) == []

    def test_spawned_rng_matches_eager_spawn(self):
        """Lazy per-index spawning is bit-identical to spawn_rngs."""
        eager = spawn_rngs(17, 5)
        for index in range(5):
            assert spawned_rng(17, index).random() == eager[index].random()

    def test_spawned_rng_rejects_negative_index(self):
        with pytest.raises(ValueError):
            spawned_rng(0, -1)

    def test_rng_state_roundtrip(self):
        rng = new_rng(3)
        rng.random(10)
        state = get_rng_state(rng)
        expected = rng.random(4)
        other = new_rng(0)
        set_rng_state(other, state)
        assert np.array_equal(other.random(4), expected)


class TestNumeric:
    def test_normalize_distribution(self):
        assert np.allclose(normalize_distribution(np.array([2.0, 2.0])), 0.5)

    def test_normalize_zero_vector_gives_uniform(self):
        assert np.allclose(normalize_distribution(np.zeros(4)), 0.25)

    def test_normalize_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_distribution(np.array([-1.0, 2.0]))

    def test_safe_divide(self):
        assert safe_divide(4.0, 2.0) == 2.0
        assert safe_divide(4.0, 0.0, default=-1.0) == -1.0

    def test_moving_average(self):
        assert moving_average(1.0, 3.0, alpha=0.75) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            moving_average(1.0, 1.0, alpha=2.0)


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("core").name == "repro.core"

    def test_configure_logging_idempotent(self):
        configure_logging(logging.DEBUG)
        configure_logging(logging.DEBUG)
        assert len(logging.getLogger("repro").handlers) == 1
