"""Per-depth model carving: prefixes, bridges and key shifting.

``carve_prefix(bottom, d)`` + ``carve_bridge(bottom, d)`` must compose back
into the full bottom model -- same forward, and a bridge state shifted by
``d`` layer indices merges with the prefix state into exactly the full
bottom state dict.  ``candidate_split_depths`` enumerates the cuts after
each weighted layer (swallowing trailing parameter-free layers) plus the
tail, which is what the split-point policies select from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SplitError
from repro.nn.split import (
    candidate_split_depths,
    carve_bridge,
    carve_prefix,
    shift_state_keys,
)


def _bottom(model="cnn_h", **kwargs):
    from repro.api.components import build_components
    from repro.config import ExperimentConfig

    dataset = {"cnn_h": "har", "mlp": "blobs", "alexnet_s": "cifar10"}[model]
    config = ExperimentConfig(
        dataset=dataset, model=model, num_workers=2,
        train_samples=64, test_samples=32,
    )
    components = build_components(config)
    return components.split.bottom, components.data


class TestCandidateDepths:
    def test_cnn_h_candidates(self):
        bottom, _ = _bottom("cnn_h")
        depths = candidate_split_depths(bottom)
        assert depths[-1] == len(bottom)
        assert depths == sorted(set(depths))
        assert all(0 < d <= len(bottom) for d in depths)
        assert len(depths) >= 3  # conv stack: several weighted cuts

    def test_mlp_is_tail_only(self):
        bottom, _ = _bottom("mlp")
        assert candidate_split_depths(bottom) == [len(bottom)]

    def test_cuts_fall_after_weighted_layers(self):
        bottom, _ = _bottom("cnn_h")
        for depth in candidate_split_depths(bottom)[:-1]:
            # A candidate cut never strands a parameter-free layer at the
            # top of the prefix's boundary: the next layer carries weights.
            assert bottom.layers[depth].parameters()


class TestCarving:
    @pytest.mark.parametrize("model", ["cnn_h", "alexnet_s"])
    def test_prefix_plus_bridge_matches_full_forward(self, model):
        bottom, data = _bottom(model)
        batch = data.train.data[:4].astype(np.float64)
        full = bottom.clone().forward(batch)
        for depth in candidate_split_depths(bottom):
            prefix = carve_prefix(bottom, depth)
            features = prefix.forward(batch)
            if depth < len(bottom):
                bridge = carve_bridge(bottom, depth)
                features = bridge.forward(features)
            assert np.allclose(features, full)

    def test_prefix_state_keys_are_a_subset(self):
        bottom, _ = _bottom("cnn_h")
        depth = candidate_split_depths(bottom)[0]
        prefix_keys = set(carve_prefix(bottom, depth).state_dict())
        assert prefix_keys <= set(bottom.state_dict())

    def test_shifted_bridge_state_completes_prefix_state(self):
        bottom, _ = _bottom("cnn_h")
        full_state = bottom.state_dict()
        for depth in candidate_split_depths(bottom)[:-1]:
            state = dict(carve_prefix(bottom, depth).state_dict())
            bridge_state = carve_bridge(bottom, depth).state_dict()
            state.update(shift_state_keys(bridge_state, depth))
            assert set(state) == set(full_state)
            for key in full_state:
                assert np.array_equal(state[key], full_state[key]), key

    def test_carve_prefix_rejects_out_of_range(self):
        bottom, _ = _bottom("cnn_h")
        with pytest.raises(SplitError):
            carve_prefix(bottom, 0)
        with pytest.raises(SplitError):
            carve_prefix(bottom, len(bottom) + 1)

    def test_carved_models_are_independent_clones(self):
        bottom, _ = _bottom("cnn_h")
        depth = candidate_split_depths(bottom)[0]
        prefix = carve_prefix(bottom, depth)
        before = {k: v.copy() for k, v in bottom.state_dict().items()}
        for param in prefix.parameters():
            param.data += 1.0
        after = bottom.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key


class TestShiftStateKeys:
    def test_shift_renumbers_layers(self):
        state = {"layer0.weight": np.zeros(2), "layer1.bias": np.ones(2)}
        shifted = shift_state_keys(state, 3)
        assert set(shifted) == {"layer3.weight", "layer4.bias"}

    def test_shift_rejects_foreign_keys(self):
        with pytest.raises(SplitError):
            shift_state_keys({"weird.weight": np.zeros(1)}, 1)
