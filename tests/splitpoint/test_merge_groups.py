"""Per-depth merge groups: grouping, ordering and dispatch adjointness.

``FeatureMerger.merge_by_depth`` partitions a cohort's features into one
merged batch per assigned cut depth.  Within a group the merge/dispatch
round-trip contract of the global merger must continue to hold bitwise,
groups must come out in ascending depth order with plan order preserved
inside each, and the union of the groups must be exactly the cohort --
no sample duplicated, none dropped.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.merging import FeatureMerger
from repro.exceptions import ShapeError

scenario = st.fixed_dictionaries({
    "num_workers": st.integers(1, 8),
    "num_depths": st.integers(1, 3),
    "trailing": st.lists(st.integers(1, 4), min_size=0, max_size=2),
    "seed": st.integers(0, 2**31 - 1),
})


def _cohort(scn):
    rng = np.random.default_rng(scn["seed"])
    trailing = tuple(scn["trailing"])
    worker_ids = list(
        rng.choice(100, size=scn["num_workers"], replace=False).astype(int)
    )
    batch_sizes = rng.integers(1, 5, size=scn["num_workers"])
    features = [
        rng.normal(size=(int(batch), *trailing)) for batch in batch_sizes
    ]
    labels = [rng.integers(0, 10, size=int(batch)) for batch in batch_sizes]
    depth_choices = rng.integers(1, 20, size=scn["num_depths"])
    depths = {
        wid: int(depth_choices[rng.integers(0, scn["num_depths"])])
        for wid in worker_ids
    }
    return worker_ids, features, labels, depths


@settings(max_examples=60, deadline=None)
@given(scn=scenario)
def test_merge_by_depth_partitions_the_cohort(scn):
    worker_ids, features, labels, depths = _cohort(scn)
    merger = FeatureMerger()
    groups = merger.merge_by_depth(worker_ids, features, labels, depths)

    # Ascending depth order, one group per distinct assigned depth.
    group_depths = [depth for depth, _ in groups]
    assert group_depths == sorted(set(depths.values()))

    # The groups tile the cohort: each worker appears in exactly its
    # depth's group, in plan order.
    by_worker = dict(zip(worker_ids, features))
    seen = []
    for depth, merged in groups:
        members = [w for w in worker_ids if depths[w] == depth]
        assert list(merged.worker_ids) == members
        seen.extend(members)
        expected = np.concatenate([by_worker[w] for w in members], axis=0)
        assert np.array_equal(merged.features, expected)
    assert sorted(seen) == sorted(worker_ids)

    # Total sample count is conserved across the partition.
    total = sum(merged.total_samples for _, merged in groups)
    assert total == sum(f.shape[0] for f in features)


@settings(max_examples=60, deadline=None)
@given(scn=scenario)
def test_group_dispatch_is_adjoint_to_group_merge(scn):
    """Dispatching a per-group gradient recovers per-worker segments that
    reassemble into the group's merged gradient -- the within-group
    round-trip that the multi-depth server update relies on."""
    worker_ids, features, labels, depths = _cohort(scn)
    rng = np.random.default_rng(scn["seed"] + 1)
    merger = FeatureMerger()
    for depth, merged in merger.merge_by_depth(
        worker_ids, features, labels, depths
    ):
        gradient = rng.normal(size=merged.features.shape)
        segments = merger.dispatch(merged, gradient)
        assert set(segments) == set(merged.worker_ids)
        reassembled = np.concatenate(
            [segments[w] for w in merged.worker_ids], axis=0
        )
        assert np.array_equal(reassembled, gradient)
        by_worker = dict(zip(worker_ids, features))
        for w in merged.worker_ids:
            assert segments[w].shape == by_worker[w].shape


def test_merge_by_depth_single_depth_matches_merge():
    rng = np.random.default_rng(0)
    worker_ids = [3, 1, 7]
    features = [rng.normal(size=(b, 4)) for b in (2, 3, 1)]
    labels = [rng.integers(0, 5, size=b) for b in (2, 3, 1)]
    merger = FeatureMerger()
    groups = merger.merge_by_depth(
        worker_ids, features, labels, {3: 5, 1: 5, 7: 5}
    )
    assert len(groups) == 1
    depth, merged = groups[0]
    assert depth == 5
    reference = merger.merge(worker_ids, features, labels)
    assert np.array_equal(merged.features, reference.features)
    assert np.array_equal(merged.labels, reference.labels)
    assert list(merged.worker_ids) == list(reference.worker_ids)


def test_merge_by_depth_requires_depth_for_every_worker():
    rng = np.random.default_rng(0)
    merger = FeatureMerger()
    with pytest.raises(ShapeError):
        merger.merge_by_depth(
            [1, 2],
            [rng.normal(size=(2, 3)), rng.normal(size=(1, 3))],
            [np.zeros(2, dtype=np.int64), np.zeros(1, dtype=np.int64)],
            {1: 4},
        )
