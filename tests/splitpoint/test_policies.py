"""Split-point policy selection, learning signals and serialization."""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.api.registry import SPLIT_POLICIES, register_split_policy
from repro.config import ExperimentConfig
from repro.exceptions import ConfigurationError
from repro.splitpoint import (
    AdaptiveSplitPolicy,
    ProfileSplitPolicy,
    SplitContext,
    UniformSplitPolicy,
    build_split_policy,
)


@dataclass
class _Profile:
    train_gflops: float
    mode_factors: tuple = (1.0,)


@dataclass
class _Network:
    mean_bandwidth_mbps: float


class _Device:
    """Stub device exposing exactly what the policies consult."""

    def __init__(self, gflops: float, mbps: float):
        self.profile = _Profile(gflops)
        self.network = _Network(mbps)

    def compute_time_per_sample(self, flops: float) -> float:
        return flops * 3.0 / (self.profile.train_gflops * 1e9)

    def comm_time_per_sample(self, nbytes: int) -> float:
        return nbytes * 8.0 / (self.network.mean_bandwidth_mbps * 1e6)

    def model_transfer_time(self, nbytes: int) -> float:
        return nbytes * 8.0 / (self.network.mean_bandwidth_mbps * 1e6)


def _ctx(cluster, **overrides) -> SplitContext:
    """A two-candidate context where the cost trade-off is real: the deep
    cut computes 100x more but exchanges 1000x fewer feature bytes."""
    params = dict(
        depths=[1, 4],
        flops={1: 1e6, 4: 100e6},
        exchange_bytes={1: 100_000, 4: 100},
        model_bytes={1: 1_000, 4: 10_000},
        cluster=cluster,
        base_batch_size=8,
        local_iterations=2,
        aggregations=1,
    )
    params.update(overrides)
    return SplitContext(**params)


class TestRegistry:
    def test_builtin_policies_registered(self):
        assert {"uniform", "profile", "adaptive"} <= set(SPLIT_POLICIES.names())

    def test_build_returns_none_for_trivial_uniform(self):
        config = ExperimentConfig(split_policy="uniform")
        assert build_split_policy(config) is None

    def test_build_resolves_nontrivial_policies(self):
        assert isinstance(
            build_split_policy(ExperimentConfig(split_policy="profile")),
            ProfileSplitPolicy,
        )
        assert isinstance(
            build_split_policy(ExperimentConfig(split_policy="adaptive")),
            AdaptiveSplitPolicy,
        )

    def test_unknown_policy_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="split policy"):
            ExperimentConfig(split_policy="psychic")

    def test_custom_policy_registers_and_resolves(self):
        @register_split_policy("always_shallow_test")
        class AlwaysShallow(UniformSplitPolicy):
            name = "always_shallow_test"
            trivial = False

            def assign_depths(self, round_index, worker_ids, ctx):
                return {w: ctx.depths[0] for w in worker_ids}

        try:
            config = ExperimentConfig(split_policy="always_shallow_test")
            policy = build_split_policy(config)
            assert isinstance(policy, AlwaysShallow)
            ctx = _ctx({0: _Device(1.0, 1000.0)})
            assert policy.assign_depths(0, [0], ctx) == {0: 1}
        finally:
            SPLIT_POLICIES.unregister("always_shallow_test")


class TestUniform:
    def test_always_picks_the_tail(self):
        policy = UniformSplitPolicy()
        ctx = _ctx({w: _Device(1.0, 1.0) for w in range(3)})
        assert policy.assign_depths(5, [0, 1, 2], ctx) == {0: 4, 1: 4, 2: 4}

    def test_trivial_flag(self):
        assert UniformSplitPolicy.trivial
        assert not ProfileSplitPolicy.trivial
        assert not AdaptiveSplitPolicy.trivial


class TestProfile:
    def test_slow_compute_gets_shallow_fast_gets_deep(self):
        cluster = {0: _Device(1.0, 1000.0), 1: _Device(1000.0, 1000.0)}
        policy = ProfileSplitPolicy()
        depths = policy.assign_depths(0, [0, 1], _ctx(cluster))
        assert depths == {0: 1, 1: 4}

    def test_static_across_rounds_and_stateless(self):
        cluster = {0: _Device(2.0, 24.0)}
        policy = ProfileSplitPolicy()
        first = policy.assign_depths(0, [0], _ctx(cluster))
        for round_index in range(1, 4):
            assert policy.assign_depths(round_index, [0], _ctx(cluster)) == first
        assert policy.state_dict() == {}

    def test_tie_goes_to_the_deeper_cut(self):
        # Identical per-depth costs everywhere: the policy must keep the
        # global constant rather than drift shallow for no benefit.
        ctx = _ctx(
            {0: _Device(1.0, 1.0)},
            flops={1: 0.0, 4: 0.0},
            exchange_bytes={1: 0, 4: 0},
            model_bytes={1: 0, 4: 0},
        )
        assert ProfileSplitPolicy().assign_depths(0, [0], ctx) == {0: 4}


class TestAdaptive:
    def test_duration_ema_tracks_relative_slowdown(self):
        policy = AdaptiveSplitPolicy()
        policy.observe_durations(0, {0: 2.0, 1: 1.0})
        # mean 1.5; relatives 4/3 and 2/3; EMA from 1.0 at decay 0.5.
        assert policy._slowdown[0] == pytest.approx(0.5 + 0.5 * 4 / 3)
        assert policy._slowdown[1] == pytest.approx(0.5 + 0.5 * 2 / 3)
        policy.observe_durations(1, {0: 3.0, 1: 3.0})
        assert policy._slowdown[0] == pytest.approx(
            0.5 * (0.5 + 0.5 * 4 / 3) + 0.5
        )

    def test_wire_ema_tracks_compression(self):
        policy = AdaptiveSplitPolicy()
        policy.observe_traffic(50, 100)
        assert policy._wire_scale == pytest.approx(0.75)
        policy.observe_traffic(0, 0)  # no logical payload: no update
        assert policy._wire_scale == pytest.approx(0.75)

    def test_slowdown_shifts_a_straggler_shallow(self):
        # A device just past the compute/comm break-even point: nominally
        # it keeps the deep cut, but once the EMA has learned it runs 2x
        # slower than the cohort, the (scaled) compute term tips it shallow.
        cluster = {0: _Device(400.0, 1000.0)}
        policy = AdaptiveSplitPolicy()
        assert policy.assign_depths(0, [0], _ctx(cluster)) == {0: 4}
        for round_index in range(6):
            policy.observe_durations(round_index, {0: 4.0, 1: 1.0, 2: 1.0})
        assert policy.assign_depths(6, [0], _ctx(cluster)) == {0: 1}

    def test_wire_scale_cheapens_shallow_cuts(self):
        # A compute-heavy device that nominally avoids the feature-heavy
        # shallow cut; a strongly compressing codec (wire 10% of logical)
        # shrinks the exchange term until shallow wins.
        cluster = {0: _Device(50.0, 100.0)}
        policy = AdaptiveSplitPolicy()
        assert policy.assign_depths(0, [0], _ctx(cluster)) == {0: 4}
        for _ in range(8):
            policy.observe_traffic(10, 100)
        assert policy.assign_depths(1, [0], _ctx(cluster)) == {0: 1}

    def test_regulated_batch_sizes_enter_the_cost(self):
        # The round plan's regulated batch size scales the per-sample terms
        # but not the model move: a tiny batch cannot amortise the deep
        # prefix's heavy model transfer, while a large batch makes the
        # shallow cut's heavier per-sample exchange dominate instead.
        cluster = {0: _Device(100.0, 10.0)}
        overrides = dict(
            exchange_bytes={1: 20_000, 4: 100},
            model_bytes={1: 1_000, 4: 100_000},
        )
        policy = AdaptiveSplitPolicy()
        small = policy.assign_depths(
            0, [0], _ctx(cluster, batch_sizes={0: 1}, **overrides))
        large = policy.assign_depths(
            0, [0], _ctx(cluster, batch_sizes={0: 64}, **overrides))
        assert small == {0: 1}
        assert large == {0: 4}

    def test_state_round_trips_through_json(self):
        policy = AdaptiveSplitPolicy()
        policy.observe_durations(0, {3: 2.0, 7: 0.5})
        policy.observe_traffic(60, 100)
        state = json.loads(json.dumps(policy.state_dict()))
        restored = AdaptiveSplitPolicy()
        restored.load_state_dict(state)
        assert restored._slowdown == policy._slowdown
        assert restored._wire_scale == policy._wire_scale


class TestEngineValidation:
    def test_out_of_candidates_depth_rejected(self):
        @register_split_policy("off_the_rails_test")
        class OffTheRails(ProfileSplitPolicy):
            name = "off_the_rails_test"

            def assign_depths(self, round_index, worker_ids, ctx):
                return {w: 999 for w in worker_ids}

        try:
            from repro.api.session import Session

            config = ExperimentConfig(
                dataset="har", model="cnn_h", num_workers=3, num_rounds=1,
                train_samples=96, test_samples=32, model_width=0.3,
                split_policy="off_the_rails_test",
            )
            with pytest.raises(ConfigurationError, match="candidates"):
                with Session.from_config(config) as session:
                    session.run()
        finally:
            SPLIT_POLICIES.unregister("off_the_rails_test")
