"""Split-point configuration errors surface before any round runs.

A bad ``split_index`` used to blow up mid-run as a ``SplitError`` from the
model carving; now impossible values are rejected when the config is
constructed, and model-dependent bounds when components are built --
always as :class:`ConfigurationError`, never during training.
"""

from __future__ import annotations

import pytest

from repro.api.components import build_components
from repro.config import ExperimentConfig
from repro.exceptions import ConfigurationError


def _config(**extras_and_fields):
    extras = extras_and_fields.pop("extras", {})
    params = dict(
        dataset="har", model="cnn_h", num_workers=2,
        train_samples=64, test_samples=32, extras=extras,
    )
    params.update(extras_and_fields)
    return ExperimentConfig(**params)


class TestConfigTime:
    @pytest.mark.parametrize("bad", ["3", 3.5, True, None.__class__])
    def test_split_index_must_be_an_integer(self, bad):
        with pytest.raises(ConfigurationError, match="split_index"):
            _config(extras={"split_index": bad})

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_split_index_must_be_positive(self, bad):
        with pytest.raises(ConfigurationError, match="split_index"):
            _config(extras={"split_index": bad})

    @pytest.mark.parametrize("key", ["split_depth_min", "split_depth_max"])
    @pytest.mark.parametrize("bad", [0, -2, 1.5, "4", False])
    def test_depth_bounds_must_be_positive_integers(self, key, bad):
        with pytest.raises(ConfigurationError, match=key):
            _config(extras={key: bad})

    def test_depth_bounds_must_be_ordered(self):
        with pytest.raises(ConfigurationError, match="split_depth_min"):
            _config(extras={"split_depth_min": 5, "split_depth_max": 2})

    def test_valid_extras_accepted(self):
        config = _config(extras={
            "split_index": 4, "split_depth_min": 2, "split_depth_max": 6,
        })
        assert config.extras["split_index"] == 4


class TestBuildTime:
    def test_split_index_beyond_model_depth_rejected(self):
        config = _config(extras={"split_index": 10_000})
        with pytest.raises(ConfigurationError, match="split_index"):
            build_components(config)

    def test_split_index_equal_to_model_depth_rejected(self):
        # The cut must leave at least one layer in the top model, so the
        # exact model depth is out of range too (not just depth + 1).
        split = build_components(_config()).split
        depth = len(split.bottom) + len(split.top)
        config = _config(extras={"split_index": depth})
        with pytest.raises(ConfigurationError, match="split_index"):
            build_components(config)

    @pytest.mark.parametrize("key", ["split_depth_min", "split_depth_max"])
    def test_depth_bounds_beyond_model_depth_rejected(self, key):
        config = _config(split_policy="profile", extras={key: 10_000})
        with pytest.raises(ConfigurationError, match=key):
            build_components(config)

    def test_valid_override_moves_the_cut(self):
        components = build_components(_config(extras={"split_index": 2}))
        assert len(components.split.bottom) == 2


class TestDeviceDropoutRates:
    def test_requires_elastic(self):
        with pytest.raises(ConfigurationError, match="elastic"):
            _config(extras={"device_dropout_rates": {"jetson_tx2": 0.3}})

    def test_must_be_a_dict(self):
        with pytest.raises(ConfigurationError, match="device_dropout_rates"):
            _config(elastic=True, extras={"device_dropout_rates": 0.3})

    @pytest.mark.parametrize("bad", [-0.1, 1.5, "high"])
    def test_rates_must_be_probabilities(self, bad):
        with pytest.raises(ConfigurationError, match="device_dropout_rates"):
            _config(elastic=True,
                    extras={"device_dropout_rates": {"jetson_tx2": bad}})

    def test_valid_rates_accepted(self):
        config = _config(elastic=True, extras={
            "device_dropout_rates": {"jetson_tx2": 0.4, "jetson_agx": 0.0},
        })
        assert config.elastic
