"""The uniform policy is the pre-existing global cut, bit for bit.

``split_policy="uniform"`` must be indistinguishable from a config that
never mentions split points: identical history records and final weights
across both split engines, every executor and both population modes, and
checkpoints that keep their historical format (no ``splitpoint`` state, no
``depths`` registry column).  A degenerate multi-depth run -- ``profile``
on a model whose only candidate cut is the tail -- pins that the per-depth
machinery itself is neutral when every worker lands on the global cut.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.metrics.history import WIRE_FIELDS

EXECUTORS = ("serial", "batched", "process")
ALGORITHMS = ("mergesfl", "splitfed")
POPULATIONS = ("eager", "lazy")


def _config(executor: str, algorithm: str, population: str = "eager",
            **overrides) -> ExperimentConfig:
    params = dict(
        algorithm=algorithm,
        dataset="blobs",
        model="mlp",
        num_workers=5,
        num_rounds=3,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=300,
        test_samples=80,
        learning_rate=0.1,
        momentum=0.9,
        weight_decay=1e-4,
        seed=3,
        executor=executor,
        population=population,
        extras={"executor_processes": 2},
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _run(config: ExperimentConfig):
    with Session.from_config(config) as session:
        history = session.run()
        return history.records, session.global_model().state_dict()


_REFERENCES: dict[tuple[str, str], tuple] = {}


def _reference(algorithm: str, population: str = "eager"):
    """A serial run whose config never mentions split points at all.

    Keyed per population mode: lazy runs differ from eager in the
    ``cache_hits``/``cache_misses`` bookkeeping columns, so each mode pins
    against its own no-splitpoint baseline.
    """
    key = (algorithm, population)
    if key not in _REFERENCES:
        _REFERENCES[key] = _run(_config("serial", algorithm, population))
    return _REFERENCES[key]


def _assert_bit_equal(reference, candidate, label: str) -> None:
    ref_records, ref_state = reference
    records, state = candidate
    assert len(records) == len(ref_records)
    for ref_record, record in zip(ref_records, records):
        ref_dict = {k: v for k, v in dataclasses.asdict(ref_record).items()
                    if k not in WIRE_FIELDS}
        dict_ = {k: v for k, v in dataclasses.asdict(record).items()
                 if k not in WIRE_FIELDS}
        assert dict_ == ref_dict, label
    assert set(state) == set(ref_state)
    for key in ref_state:
        assert np.array_equal(state[key], ref_state[key]), f"{label}: {key}"


@pytest.mark.parametrize("population", POPULATIONS)
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_uniform_matches_default_everywhere(algorithm, executor, population):
    """An explicit ``split_policy="uniform"`` run is the default run."""
    candidate = _run(_config(
        executor, algorithm, population, split_policy="uniform",
    ))
    _assert_bit_equal(
        _reference(algorithm, population), candidate,
        f"{algorithm}/{executor}/{population}/uniform",
    )


@pytest.mark.parametrize("executor,population", [
    ("serial", "eager"),
    ("batched", "lazy"),
    ("process", "eager"),
])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_degenerate_profile_is_neutral(algorithm, executor, population):
    """On ``mlp`` the only candidate cut is the tail, so ``profile`` sends
    every worker through the multi-depth machinery *at the global cut* --
    assignment, grouped merge, bridge-free install -- and must still be
    bit-exact with the uniform anchor."""
    candidate = _run(_config(
        executor, algorithm, population, split_policy="profile",
    ))
    _assert_bit_equal(
        _reference(algorithm, population), candidate,
        f"{algorithm}/{executor}/{population}/profile-degenerate",
    )


def test_uniform_checkpoint_keeps_historical_format():
    """Uniform checkpoints carry no splitpoint state and no depth column."""
    with Session.from_config(_config("serial", "mergesfl",
                                     split_policy="uniform")) as session:
        session.run(1)
        state = session.state_dict()
    assert "splitpoint" not in state["algorithm"]


def test_uniform_lazy_registry_serialises_no_depths():
    with Session.from_config(_config("serial", "mergesfl", "lazy")) as session:
        session.run(1)
        state = session.state_dict()
    registry = state["algorithm"]["workers"]["registry"]
    assert "depths" not in registry


def test_uniform_checkpoint_resume_matches_straight_run(tmp_path):
    path = tmp_path / "uniform.ckpt.json"
    config = _config("serial", "mergesfl", split_policy="uniform")
    with Session.from_config(config) as session:
        session.run(1)
        session.save_checkpoint(path)
    with Session.load_checkpoint(path) as resumed:
        resumed.run()
        candidate = (resumed.history.records,
                     resumed.global_model().state_dict())
    _assert_bit_equal(_reference("mergesfl"), candidate, "uniform-resume")
