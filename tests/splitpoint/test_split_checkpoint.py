"""Checkpoint/resume under non-trivial split policies.

The adaptive policy carries learned state (the per-worker slowdown EMA and
the wire-scale EMA) that feeds depth selection, so a mid-run checkpoint
must serialise it and a resumed run must continue *bit-exactly* -- same
depth assignments, same records, same final weights as the uninterrupted
run.  The profile policy is stateless, so its resume exactness pins only
the multi-depth engine state (bridges, depth registry column, accounting).
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.metrics.history import WIRE_FIELDS


def _config(policy: str, **overrides) -> ExperimentConfig:
    """A config where cnn_h really offers several candidate depths, so the
    non-uniform policies assign heterogeneous cuts."""
    params = dict(
        algorithm="mergesfl",
        dataset="har",
        model="cnn_h",
        model_width=0.3,
        num_workers=5,
        num_rounds=4,
        local_iterations=2,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=200,
        test_samples=60,
        learning_rate=0.1,
        seed=11,
        split_policy=policy,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _run(config: ExperimentConfig):
    with Session.from_config(config) as session:
        history = session.run()
        return history.records, session.global_model().state_dict()


def _assert_bit_equal(reference, candidate, label: str) -> None:
    ref_records, ref_state = reference
    records, state = candidate
    assert len(records) == len(ref_records)
    for ref_record, record in zip(ref_records, records):
        ref_dict = {k: v for k, v in dataclasses.asdict(ref_record).items()
                    if k not in WIRE_FIELDS}
        dict_ = {k: v for k, v in dataclasses.asdict(record).items()
                 if k not in WIRE_FIELDS}
        assert dict_ == ref_dict, label
    assert set(state) == set(ref_state)
    for key in ref_state:
        assert np.array_equal(state[key], ref_state[key]), f"{label}: {key}"


@pytest.mark.parametrize("policy", ["adaptive", "profile"])
def test_midrun_resume_matches_straight_run(policy, tmp_path):
    path = tmp_path / f"{policy}.ckpt.json"
    with Session.from_config(_config(policy)) as session:
        session.run(2)
        session.save_checkpoint(path)
    with Session.load_checkpoint(path) as resumed:
        assert resumed.config.split_policy == policy
        resumed.run()
        candidate = (resumed.history.records,
                     resumed.global_model().state_dict())
    _assert_bit_equal(_run(_config(policy)), candidate, f"{policy}-resume")


def test_adaptive_checkpoint_carries_learned_state(tmp_path):
    path = tmp_path / "adaptive.ckpt.json"
    with Session.from_config(_config("adaptive")) as session:
        session.run(2)
        session.save_checkpoint(path)
        state = session.state_dict()
    splitpoint = state["algorithm"]["splitpoint"]
    # Two observed rounds: every selected worker has a slowdown estimate,
    # and the payload survives the JSON encoding the checkpoint file uses.
    assert splitpoint["slowdown"]
    assert all(isinstance(v, float) for v in splitpoint["slowdown"].values())
    on_disk = json.loads(path.read_text())
    assert on_disk["algorithm"]["splitpoint"] == splitpoint


def test_adaptive_load_restores_the_policy_internals(tmp_path):
    """The checkpointed EMA payload lands in the resumed policy verbatim
    (not rebuilt fresh), so resumed depth selection starts from the same
    learned signals as the uninterrupted run."""
    path = tmp_path / "adaptive.ckpt.json"
    with Session.from_config(_config("adaptive")) as session:
        session.run(2)
        session.save_checkpoint(path)
        saved = session.state_dict()["algorithm"]["splitpoint"]
    with Session.load_checkpoint(path) as resumed:
        policy = resumed.algorithm.engine._split_policy
        assert policy.state_dict() == saved
        assert policy._slowdown  # learned, not the fresh-policy default
