"""The staged round pipeline: stage order, overlap, fallback and draining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.core.worker import SplitWorker
from repro.data.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.nn.layers import Linear, ReLU
from repro.nn.module import Sequential
from repro.parallel.pipeline import (
    PipelinedScheduler,
    PipelineScheduler,
    RoundStage,
    SplitRoundOps,
    build_pipeline,
)
from repro.parallel.process import ProcessExecutor
from repro.parallel.serial import SerialExecutor
from repro.parallel.transport import SharedMemoryTransport
from repro.utils.rng import new_rng


def _make_workers(count: int = 2) -> list[SplitWorker]:
    data = make_blobs(train_samples=40 * count, test_samples=20, seed=6)
    shard = len(data.train) // count
    return [
        SplitWorker(
            worker_id=index,
            dataset=data.train.subset(np.arange(index * shard, (index + 1) * shard)),
            num_classes=data.num_classes,
            seed=300 + index,
        )
        for index in range(count)
    ]


def _split_ops(executor, workers, bottom, trace=None) -> SplitRoundOps:
    """Minimal split-round ops: identity-ish top update, no-op aggregate."""

    def update_top(features, labels):
        return 0.5, [0.1 * feats for feats in features]

    return SplitRoundOps(
        executor=executor,
        workers=workers,
        batch_sizes=[8] * len(workers),
        install=lambda: executor.install(workers, bottom, [0.1] * len(workers)),
        update_top=update_top,
        aggregate=lambda: executor.bottom_states(workers),
        on_stage=(None if trace is None
                  else lambda stage, iteration: trace.append((stage, iteration))),
    )


class TestStageOrder:
    def test_sync_stage_sequence(self):
        workers = _make_workers()
        bottom = Sequential([Linear(32, 16, rng=new_rng(0)), ReLU()])
        trace: list = []
        scheduler = PipelineScheduler()
        losses = scheduler.run_split_round(
            _split_ops(SerialExecutor(), workers, bottom, trace), 2, False
        )
        assert losses == [0.5, 0.5]
        assert trace == [
            (RoundStage.INSTALL, None),
            (RoundStage.BOTTOM_FORWARD, 0),
            (RoundStage.TOP_UPDATE, 0),
            (RoundStage.BACKWARD_DISPATCH, 0),
            (RoundStage.BOTTOM_FORWARD, 1),
            (RoundStage.TOP_UPDATE, 1),
            (RoundStage.BACKWARD_DISPATCH, 1),
            (RoundStage.AGGREGATE, None),
        ]

    def test_sync_aggregate_every_iteration(self):
        workers = _make_workers()
        bottom = Sequential([Linear(32, 16, rng=new_rng(0)), ReLU()])
        trace: list = []
        PipelineScheduler().run_split_round(
            _split_ops(SerialExecutor(), workers, bottom, trace), 2, True
        )
        stages = [stage for stage, __ in trace]
        # aggregate + re-install after *every* iteration, no trailing one.
        assert stages.count(RoundStage.AGGREGATE) == 2
        assert stages.count(RoundStage.INSTALL) == 3
        assert stages[-2:] == [RoundStage.AGGREGATE, RoundStage.INSTALL]

    def test_pipelined_double_buffers_the_forward(self):
        """With a capable executor, iteration k+1's forward is staged before
        iteration k's top update runs."""
        workers = _make_workers()
        bottom = Sequential([Linear(32, 16, rng=new_rng(0)), ReLU()])
        trace: list = []
        executor = ProcessExecutor(processes=1, transport=SharedMemoryTransport())
        try:
            PipelinedScheduler().run_split_round(
                _split_ops(executor, workers, bottom, trace), 3, False
            )
        finally:
            executor.close()
        assert trace.index((RoundStage.BOTTOM_FORWARD, 1)) < trace.index(
            (RoundStage.TOP_UPDATE, 0)
        )
        assert trace.index((RoundStage.BOTTOM_FORWARD, 2)) < trace.index(
            (RoundStage.TOP_UPDATE, 1)
        )

    @pytest.mark.parametrize("make_executor", [
        SerialExecutor,
        lambda: ProcessExecutor(processes=1),  # pipe transport: no async bulk
    ], ids=["serial", "process-pipe"])
    def test_pipelined_falls_back_without_capability(self, make_executor):
        workers = _make_workers()
        bottom = Sequential([Linear(32, 16, rng=new_rng(0)), ReLU()])
        trace: list = []
        executor = make_executor()
        try:
            assert not executor.supports_pipelining
            PipelinedScheduler().run_split_round(
                _split_ops(executor, workers, bottom, trace), 2, False
            )
        finally:
            executor.close()
        # Synchronous order: forward k+1 strictly after top update k.
        assert trace.index((RoundStage.BOTTOM_FORWARD, 1)) > trace.index(
            (RoundStage.TOP_UPDATE, 0)
        )

    def test_pipelined_falls_back_for_per_iteration_aggregation(self):
        workers = _make_workers()
        bottom = Sequential([Linear(32, 16, rng=new_rng(0)), ReLU()])
        trace: list = []
        executor = ProcessExecutor(processes=1, transport=SharedMemoryTransport())
        try:
            PipelinedScheduler().run_split_round(
                _split_ops(executor, workers, bottom, trace), 2, True
            )
        finally:
            executor.close()
        stages = [stage for stage, __ in trace]
        assert stages.count(RoundStage.AGGREGATE) == 2


class TestPipelineConfig:
    def test_registry_lists_pipelines(self):
        from repro.api.registry import PIPELINES

        assert {"sync", "pipelined"} <= set(PIPELINES.names())

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown pipeline"):
            ExperimentConfig(pipeline="hyperdrive")

    def test_build_pipeline_resolves_names(self):
        assert isinstance(
            build_pipeline(ExperimentConfig(pipeline="sync")), PipelineScheduler
        )
        assert isinstance(
            build_pipeline(ExperimentConfig(pipeline="pipelined")), PipelinedScheduler
        )


def _run(config: ExperimentConfig):
    import dataclasses

    from repro.metrics.history import WIRE_FIELDS

    # Wire-traffic fields measure the execution topology, not the training
    # trajectory; cross-executor/schedule comparisons strip them.
    with Session.from_config(config) as session:
        history = session.run()
        return (
            [{k: v for k, v in dataclasses.asdict(record).items()
              if k not in WIRE_FIELDS} for record in history.records],
            session.global_model().state_dict(),
        )


def _config(**overrides) -> ExperimentConfig:
    params = dict(
        algorithm="mergesfl",
        dataset="blobs",
        model="mlp",
        num_workers=4,
        num_rounds=2,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=200,
        test_samples=60,
        momentum=0.9,
        seed=9,
        extras={"executor_processes": 2},
    )
    params.update(overrides)
    return ExperimentConfig(**params)


class TestPipelinedSessions:
    def test_checkpoint_mid_run_drains_and_resumes_bit_exact(self, tmp_path):
        """Saving between rounds of a pipelined process run drains in-flight
        dispatch; the resumed run matches a straight serial run bit for bit."""
        path = tmp_path / "pipelined.ckpt.json"
        config = _config(executor="process", transport="shm", pipeline="pipelined")
        with Session.from_config(config) as session:
            session.run(1)
            session.save_checkpoint(path)
        with Session.load_checkpoint(path) as resumed:
            assert resumed.config.pipeline == "pipelined"
            assert resumed.config.transport == "shm"
            resumed.run()
            from repro.metrics.history import WIRE_FIELDS

            candidate = (
                [{k: v for k, v in __import__("dataclasses").asdict(r).items()
                  if k not in WIRE_FIELDS} for r in resumed.history.records],
                resumed.global_model().state_dict(),
            )
        reference = _run(_config(executor="serial"))
        assert candidate[0] == reference[0]
        for key in reference[1]:
            assert np.array_equal(candidate[1][key], reference[1][key])

    def test_drain_is_noop_for_serial_sessions(self):
        with Session.from_config(_config(executor="serial")) as session:
            session.run(1)
            session.algorithm.drain()  # must not raise


class TestProcessExecutorPipelineProtocol:
    def test_collect_without_launch_raises(self):
        executor = ProcessExecutor(processes=1)
        try:
            with pytest.raises(RuntimeError, match="no forward in flight"):
                executor.collect_forward(_make_workers())
        finally:
            executor.close()

    def test_drain_discards_abandoned_forward(self):
        """Draining right after a round failed between launch and collect
        consumes the orphaned features reply, so checkpointing still works
        and the executor stays usable."""
        workers = _make_workers()
        bottom = Sequential([Linear(32, 16, rng=new_rng(0)), ReLU()])
        executor = ProcessExecutor(
            processes=1, transport=SharedMemoryTransport(capacity=1 << 20)
        )
        try:
            executor.install(workers, bottom, [0.1, 0.1])
            executor.stage_forward(workers, [8, 8])
            executor.launch_forward(workers)
            executor.drain()
            assert not executor._completions
            executor.install(workers, bottom, [0.1, 0.1])
            features, __ = executor.forward(workers, [8, 8])
            assert features[0].shape == (8, 16)
        finally:
            executor.close()

    def test_reply_does_not_acknowledge_later_noreply_commands(self):
        """A reply proves the child processed everything sent before the
        request -- not a fire-and-forget command sent while the reply was
        pending.  The channel must stay dirty until a later sync."""
        workers = _make_workers()
        bottom = Sequential([Linear(32, 16, rng=new_rng(0)), ReLU()])
        executor = ProcessExecutor(processes=1)
        try:
            executor.install(workers, bottom, [0.1, 0.1])
            executor.stage_forward(workers, [8, 8])
            executor.launch_forward(workers)          # replying request pending
            executor.stage_forward(workers, [8, 8])   # no-reply sent after it
            executor.collect_forward(workers)
            assert executor._children[0].dirty        # later stage unacked
            executor.drain()
            assert not executor._children[0].dirty
        finally:
            executor.close()

    def test_drain_syncs_nowait_backward(self):
        workers = _make_workers()
        bottom = Sequential([Linear(32, 16, rng=new_rng(0)), ReLU()])
        executor = ProcessExecutor(processes=2)
        try:
            executor.install(workers, bottom, [0.1, 0.1])
            features, __ = executor.forward(workers, [8, 8])
            executor.backward_step_nowait(workers, [0.1 * f for f in features])
            executor.drain()  # pings the dirty children
            states = executor.bottom_states(workers)
            assert len(states) == 2
        finally:
            executor.close()
