"""Bounded-staleness scheduling: graph, semantics, determinism, resume.

The contract under test, in increasing strength:

* the declarative dependency graph (:func:`round_stage_specs`) and the
  schedule derived from it (:func:`relaxed_dispatch_order`) are correct --
  staleness 0 yields the strict order, staleness ``s`` lets a forward
  overtake at most ``s`` pending local updates;
* ``staleness=0`` is bit-identical to the exact schedulers (pinned in
  test_executor_equivalence's variant matrix as well);
* ``staleness>=1`` is a *different* trajectory (the relaxation really
  happens) that is deterministic and identical across capable executors
  ({serial, process x shm}), converges within a pinned epsilon of the
  exact run, records its realized staleness, and needs strictly fewer
  scheduler/executor synchronisations;
* checkpoint/resume mid-run stays exact at staleness 1, including the
  cross-round prefetched plan.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.exceptions import ConfigurationError
from repro.metrics.history import WIRE_FIELDS
from repro.metrics.summary import schedule_divergence
from repro.parallel.pipeline import (
    ArtifactKind,
    BoundedStalenessScheduler,
    RoundStage,
    relaxed_dispatch_order,
    round_stage_specs,
)

#: Pinned tolerance of the convergence regression: the staleness-1 run's
#: final accuracy may differ from the exact run's by at most this much on
#: the seed config below.  Measured headroom on this container: 0.0.
CONVERGENCE_EPSILON = 0.05


def _config(**overrides) -> ExperimentConfig:
    params = dict(
        algorithm="mergesfl",
        dataset="blobs",
        model="mlp",
        num_workers=5,
        num_rounds=3,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=300,
        test_samples=80,
        learning_rate=0.1,
        momentum=0.9,
        weight_decay=1e-4,
        seed=3,
        extras={"executor_processes": 2},
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _run(config: ExperimentConfig):
    # Wire-traffic fields measure the execution topology (the staleness
    # schedule shifts traffic across round boundaries), so cross-schedule
    # comparisons strip them from the records.
    with Session.from_config(config) as session:
        history = session.run()
        return (
            [{k: v for k, v in dataclasses.asdict(record).items()
              if k not in WIRE_FIELDS} for record in history.records],
            session.global_model().state_dict(),
        )


def _assert_bit_equal(reference, candidate, label: str) -> None:
    ref_records, ref_state = reference
    records, state = candidate
    assert records == ref_records, label
    assert set(state) == set(ref_state)
    for key in ref_state:
        assert np.array_equal(state[key], ref_state[key]), f"{label}: {key}"


# -- the dependency graph ------------------------------------------------------

class TestDependencyGraph:
    def test_specs_declare_the_relaxable_edge(self):
        specs = round_stage_specs(2)
        forwards = [s for s in specs if s.stage is RoundStage.BOTTOM_FORWARD]
        assert [s.iteration for s in forwards] == [0, 1]
        for spec in forwards:
            (read,) = spec.reads
            assert read.kind is ArtifactKind.BOTTOM_WEIGHTS
            assert read.version == spec.iteration
            assert read.relaxed
        backwards = [s for s in specs if s.stage is RoundStage.BACKWARD_DISPATCH]
        for spec in backwards:
            assert all(not read.relaxed for read in spec.reads)
            assert spec.writes[0].version == spec.iteration + 1
        aggregate = specs[-1]
        assert aggregate.stage is RoundStage.AGGREGATE
        assert aggregate.reads[0].version == 2  # every local update applied

    def test_staleness_zero_derives_the_strict_order(self):
        order = relaxed_dispatch_order(round_stage_specs(3), staleness=0)
        stages = [(slot.spec.stage, slot.spec.iteration) for slot in order]
        assert stages == [
            (RoundStage.INSTALL, None),
            (RoundStage.BOTTOM_FORWARD, 0),
            (RoundStage.TOP_UPDATE, 0),
            (RoundStage.BACKWARD_DISPATCH, 0),
            (RoundStage.BOTTOM_FORWARD, 1),
            (RoundStage.TOP_UPDATE, 1),
            (RoundStage.BACKWARD_DISPATCH, 1),
            (RoundStage.BOTTOM_FORWARD, 2),
            (RoundStage.TOP_UPDATE, 2),
            (RoundStage.BACKWARD_DISPATCH, 2),
            (RoundStage.AGGREGATE, None),
        ]
        assert all(slot.lag == 0 for slot in order)

    def test_staleness_one_overtakes_one_backward(self):
        order = relaxed_dispatch_order(round_stage_specs(3), staleness=1)
        stages = [(slot.spec.stage, slot.spec.iteration) for slot in order]
        # Forward 1 dispatches before backward 0; forward 2 right after it.
        assert stages.index((RoundStage.BOTTOM_FORWARD, 1)) < stages.index(
            (RoundStage.BACKWARD_DISPATCH, 0)
        )
        assert stages.index((RoundStage.BOTTOM_FORWARD, 2)) < stages.index(
            (RoundStage.BACKWARD_DISPATCH, 1)
        )
        lags = [s.lag for s in order if s.spec.stage is RoundStage.BOTTOM_FORWARD]
        assert lags == [0, 1, 1]

    def test_lag_never_exceeds_the_bound(self):
        for staleness in (1, 2, 3):
            order = relaxed_dispatch_order(round_stage_specs(6), staleness)
            lags = [
                slot.lag for slot in order
                if slot.spec.stage is RoundStage.BOTTOM_FORWARD
            ]
            assert max(lags) <= staleness
            assert lags == [min(j, staleness) for j in range(6)]

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            relaxed_dispatch_order(round_stage_specs(2), -1)
        with pytest.raises(ValueError, match="non-negative"):
            BoundedStalenessScheduler(staleness=-1)
        with pytest.raises(ConfigurationError, match="staleness"):
            _config(staleness=-1)


# -- exactness at staleness 0, relaxation at staleness 1 -----------------------

class TestStalenessSemantics:
    def test_staleness_zero_bit_exact_with_sync(self):
        reference = _run(_config(executor="serial"))
        candidate = _run(_config(executor="serial", pipeline="staleness"))
        _assert_bit_equal(reference, candidate, "serial/staleness-0")

    def test_staleness_one_actually_relaxes(self):
        """The relaxed trajectory must differ from the exact one -- a
        staleness-1 run that matches sync bit for bit means the relaxation
        silently fell back and the convergence test below is vacuous."""
        exact, exact_weights = _run(_config(executor="serial"))
        relaxed, relaxed_weights = _run(
            _config(executor="serial", pipeline="staleness", staleness=1)
        )
        assert any(
            not np.array_equal(relaxed_weights[key], exact_weights[key])
            for key in exact_weights
        )
        assert all(r["effective_staleness"] > 0.0 for r in relaxed)
        assert all(r["effective_staleness"] == 0.0 for r in exact)

    @pytest.mark.parametrize("transport", ["shm"])
    def test_relaxed_trajectory_identical_across_executors(self, transport):
        """{serial, process} x staleness-1: the relaxation is deterministic
        and executor-independent, the relaxed analogue of the exact
        equivalence suite."""
        reference = _run(
            _config(executor="serial", pipeline="staleness", staleness=1)
        )
        candidate = _run(_config(
            executor="process", transport=transport,
            pipeline="staleness", staleness=1,
        ))
        _assert_bit_equal(reference, candidate, f"process/{transport}/staleness-1")

    def test_effective_staleness_recorded(self):
        records, __ = _run(
            _config(executor="serial", pipeline="staleness", staleness=1)
        )
        # tau=3: forwards lag [0, 1, 1] -> mean 2/3 every round.
        for record in records:
            assert record["effective_staleness"] == pytest.approx(2.0 / 3.0)

    def test_incapable_executor_falls_back_to_exact(self):
        """The batched executor has no relaxed dispatch: staleness-1 on it
        must degrade to the exact schedule (same trajectory as sync), not
        to some third behaviour."""
        reference = _run(_config(executor="serial"))
        candidate = _run(
            _config(executor="batched", pipeline="staleness", staleness=1)
        )
        _assert_bit_equal(reference, candidate, "batched/staleness-1-fallback")

    def test_per_iteration_aggregation_falls_back_to_exact(self):
        reference = _run(_config(algorithm="splitfed", executor="serial"))
        candidate = _run(_config(
            algorithm="splitfed", executor="serial",
            pipeline="staleness", staleness=1,
        ))
        _assert_bit_equal(reference, candidate, "splitfed/staleness-fallback")


class TestConvergenceTolerance:
    """The relaxation must be measured, not hopeful (acceptance criterion)."""

    @staticmethod
    def _seed_config(**overrides):
        params = dict(
            algorithm="mergesfl", dataset="blobs", model="mlp",
            num_workers=5, num_rounds=4, local_iterations=3,
            non_iid_level=10.0, max_batch_size=16, base_batch_size=8,
            train_samples=200, test_samples=100, learning_rate=0.02,
            lr_decay=0.97, seed=11,
        )
        params.update(overrides)
        return ExperimentConfig(**params)

    def test_staleness_one_final_accuracy_within_epsilon(self):
        with Session.from_config(self._seed_config()) as session:
            exact = session.run()
        with Session.from_config(
            self._seed_config(pipeline="staleness", staleness=1)
        ) as session:
            relaxed = session.run()
        divergence = schedule_divergence(relaxed, exact)
        assert divergence["mean_staleness"] > 0.0       # relaxation active
        assert divergence["final"] <= CONVERGENCE_EPSILON
        assert divergence["max"] <= 2 * CONVERGENCE_EPSILON


# -- synchronisation accounting ------------------------------------------------

class TestSyncCounter:
    @staticmethod
    def _pipeline_after_run(config):
        with Session.from_config(config) as session:
            session.run()
            return session.algorithm.engine.pipeline

    def test_staleness_reduces_synchronisations(self):
        """tau=3 rounds: sync needs 2*tau+2 barriers, staleness-1 tau+1 --
        the acceptance criterion's scheduler sync counter."""
        sync = self._pipeline_after_run(_config(executor="serial"))
        relaxed = self._pipeline_after_run(
            _config(executor="serial", pipeline="staleness", staleness=1)
        )
        assert sync.last_report.sync_points == 8
        assert relaxed.last_report.sync_points == 4
        assert relaxed.sync_points < sync.sync_points

    def test_staleness_one_beats_pipelined_on_process(self):
        pipelined = self._pipeline_after_run(_config(
            executor="process", transport="shm", pipeline="pipelined",
        ))
        relaxed = self._pipeline_after_run(_config(
            executor="process", transport="shm",
            pipeline="staleness", staleness=1,
        ))
        assert relaxed.last_report.sync_points < pipelined.last_report.sync_points
        assert relaxed.last_report.effective_staleness > 0.0
        assert pipelined.last_report.effective_staleness == 0.0


# -- checkpoint / resume -------------------------------------------------------

class TestStalenessCheckpointing:
    @pytest.mark.parametrize("executor_kw", [
        dict(executor="serial"),
        dict(executor="process", transport="shm"),
    ], ids=["serial", "process-shm"])
    def test_resume_mid_run_is_exact_at_staleness_one(self, tmp_path, executor_kw):
        """Interrupt after round 1 (with a prefetched round-2 plan in
        flight) and resume: bit-identical to the uninterrupted run."""
        config = _config(pipeline="staleness", staleness=1, **executor_kw)
        path = tmp_path / "staleness.ckpt.json"
        with Session.from_config(config) as session:
            session.run(1)
            state = session.state_dict()
            # The cross-round in-flight artifact is serialised, not dropped.
            assert state["algorithm"]["pending_plan"] is not None
            session.save_checkpoint(path)
        with Session.load_checkpoint(path) as resumed:
            assert resumed.config.pipeline == "staleness"
            assert resumed.config.staleness == 1
            resumed.run()
            candidate = (
                [{k: v for k, v in dataclasses.asdict(r).items()
                  if k not in WIRE_FIELDS} for r in resumed.history.records],
                resumed.global_model().state_dict(),
            )
        reference = _run(config)
        _assert_bit_equal(reference, candidate, "staleness-1 resume")

    def test_prefetched_plan_round_trips_through_json(self):
        from repro.core.controller import RoundPlan

        plan = RoundPlan(
            selected=[2, 0], batch_sizes={2: 8, 0: 16},
            merged_kl=0.125, info={"feasible": True},
        )
        restored = RoundPlan.from_dict(plan.to_dict())
        assert restored.selected == plan.selected
        assert restored.batch_sizes == plan.batch_sizes
        assert restored.merged_kl == plan.merged_kl
        assert restored.info == plan.info


# -- registry / config ---------------------------------------------------------

class TestStalenessConfig:
    def test_registry_lists_staleness_pipeline(self):
        from repro.api.registry import PIPELINES

        assert "staleness" in PIPELINES.names()

    def test_build_pipeline_threads_the_bound(self):
        from repro.parallel.pipeline import build_pipeline

        scheduler = build_pipeline(
            _config(pipeline="staleness", staleness=2)
        )
        assert isinstance(scheduler, BoundedStalenessScheduler)
        assert scheduler.staleness == 2
