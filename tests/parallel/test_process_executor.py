"""The process executor's child loop and failure handling.

``_child_main`` is normally unreachable for coverage (it runs in forked
children), so these tests drive it in-process through a scripted connector;
the death tests kill real pool processes mid-round and assert the parent
fails loudly instead of hanging.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.worker import SplitWorker
from repro.data.synthetic import make_blobs
from repro.nn.layers import Linear, ReLU
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Sequential
from repro.parallel.process import ProcessExecutor, _child_main
from repro.parallel.transport import SharedMemoryTransport
from repro.utils.rng import new_rng


class _ScriptedEndpoint:
    """Feeds a fixed command sequence to ``_child_main`` and records replies."""

    def __init__(self, script: list) -> None:
        self.script = list(script)
        self.replies: list = []
        self.closed = False

    def recv(self):
        if not self.script:
            raise EOFError
        return self.script.pop(0)

    def send(self, message, klass=None, count=True) -> None:
        self.replies.append(message)

    def close(self, unlink: bool = False) -> None:
        self.closed = True


class _ScriptedConnector:
    def __init__(self, endpoint: _ScriptedEndpoint) -> None:
        self.endpoint = endpoint

    def connect(self) -> _ScriptedEndpoint:
        return self.endpoint


def _bottom() -> Sequential:
    return Sequential([Linear(32, 16, rng=new_rng(1)), ReLU()])


def _install_spec(worker_ids, lr=0.1):
    return {wid: (lr, 0.0, 0.0, None) for wid in worker_ids}


def _drive(script: list) -> _ScriptedEndpoint:
    endpoint = _ScriptedEndpoint(script)
    _child_main(_ScriptedConnector(endpoint))
    assert endpoint.closed
    return endpoint


def _shard(num_samples=16, features=32, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(num_samples, features)),
        rng.integers(0, classes, size=num_samples),
    )


class TestChildLoop:
    def test_install_forward_backward_states_cycle(self):
        endpoint = _drive([
            ("load_shard", {0: _shard()}),
            ("install", (_bottom(), _install_spec([0]))),
            ("forward", {0: np.arange(8, dtype=np.int64)}),
            ("backward", {0: 0.1 * np.ones((8, 16))}),
            ("states", [0]),
            ("close", None),
        ])
        statuses = [status for status, __ in endpoint.replies]
        assert statuses == ["ok", "ok", "ok", "ok", "ok"]
        features = endpoint.replies[2][1][0]
        assert features.shape == (8, 16)
        states = endpoint.replies[4][1][0]
        assert set(states) == {"layer0.weight", "layer0.bias"}

    def test_forward_slices_the_held_shard(self):
        """The child's forward on shipped indices equals forwarding the
        parent-side slice of the same shard."""
        shard = _shard(seed=7)
        indices = np.asarray([3, 1, 4, 1], dtype=np.int64)
        bottom = _bottom()
        endpoint = _drive([
            ("load_shard", {0: shard}),
            ("install", (bottom, _install_spec([0]))),
            ("forward", {0: indices}),
            ("close", None),
        ])
        expected = bottom.clone().train().forward(shard[0][indices])
        assert np.array_equal(endpoint.replies[2][1][0], expected)

    def test_staged_fused_pipeline_cycle(self):
        idx = lambda *values: np.asarray(values, dtype=np.int64)  # noqa: E731
        endpoint = _drive([
            ("load_shard", {0: _shard(), 1: _shard(seed=1)}),
            ("install", (_bottom(), _install_spec([0, 1]))),
            ("stage", {0: idx(0, 1, 2, 3), 1: idx(4, 5, 6, 7)}),
            ("forward_staged", [0, 1]),
            ("stage", {0: idx(8, 9, 10, 11), 1: idx(12, 13, 14, 15)}),
            ("fused_step", {0: np.zeros((4, 16)), 1: np.zeros((4, 16))}),
            ("backward_nowait", {0: np.zeros((4, 16)), 1: np.zeros((4, 16))}),
            ("ping", None),
            ("close", None),
        ])
        statuses = [status for status, __ in endpoint.replies]
        # stage and backward_nowait produce no reply; ping syncs.
        assert statuses == ["ok", "ok", "ok", "ok", "ok"]
        assert set(endpoint.replies[2][1]) == {0, 1}   # forward_staged features
        assert set(endpoint.replies[3][1]) == {0, 1}   # fused_step features

    def test_gradient_batch_mismatch_reported(self):
        endpoint = _drive([
            ("load_shard", {0: _shard()}),
            ("install", (_bottom(), _install_spec([0]))),
            ("forward", {0: np.arange(8, dtype=np.int64)}),
            ("backward", {0: np.zeros((3, 16))}),
            ("close", None),
        ])
        status, payload = endpoint.replies[-1]
        assert status == "error"
        assert "does not match the pending forward batch" in payload

    def test_unknown_command_reported(self):
        endpoint = _drive([("warp", None), ("close", None)])
        status, payload = endpoint.replies[-1]
        assert status == "error"
        assert "unknown executor command" in payload

    def test_train_full_runs_local_iterations(self):
        model = Sequential([Linear(8, 3, rng=new_rng(4))])
        index_batches = [
            np.asarray([0, 1, 2, 3], dtype=np.int64),
            np.asarray([4, 5, 6, 7], dtype=np.int64),
        ]
        endpoint = _drive([
            ("load_shard", {5: _shard(num_samples=8, features=8)}),
            ("train_full", (model, CrossEntropyLoss(), 2,
                            {5: (index_batches, 0.05, 0.0, 0.0, None)})),
            ("close", None),
        ])
        status, states = endpoint.replies[-1]
        assert status == "ok"
        assert not np.array_equal(
            states[5]["layer0.weight"], model.state_dict()["layer0.weight"]
        )

    def test_no_reply_command_error_is_deferred_to_next_reply_slot(self):
        """A failing fire-and-forget command must not emit an unpaired reply;
        its error surfaces in the next replying command's slot."""
        endpoint = _drive([
            ("load_shard", {0: _shard()}),
            ("install", (_bottom(), _install_spec([0]))),
            ("forward", {0: np.arange(8, dtype=np.int64)}),
            ("backward_nowait", {0: np.zeros((3, 16))}),  # wrong batch: fails
            ("ping", None),
            ("states", [0]),
            ("close", None),
        ])
        statuses = [status for status, __ in endpoint.replies]
        # Exactly one reply per replying command: the ping slot carries the
        # deferred error, and states still answers afterwards.
        assert statuses == ["ok", "ok", "ok", "error", "ok"]
        assert "does not match the pending forward batch" in endpoint.replies[3][1]

    def test_install_resets_staged_data(self):
        endpoint = _drive([
            ("load_shard", {0: _shard()}),
            ("install", (_bottom(), _install_spec([0]))),
            ("stage", {0: np.arange(4, dtype=np.int64)}),
            ("install", (_bottom(), _install_spec([0]))),
            ("forward_staged", [0]),   # staged indices were dropped -> error
            ("close", None),
        ])
        status, payload = endpoint.replies[-1]
        assert status == "error"
        assert "KeyError" in payload


def test_sticky_assignment_is_stable_and_round_balanced():
    """Worker-to-child homes spread each round's *new* workers over the
    children the selection leaves least loaded, and stay sticky afterwards
    so shipped shards never move."""
    from types import SimpleNamespace

    executor = ProcessExecutor(processes=4)
    executor._children = [SimpleNamespace() for __ in range(4)]  # no spawn
    try:
        def assign(ids):
            shards = executor._assign([SimpleNamespace(worker_id=i) for i in ids])
            return {wid: executor._assignment[wid] for wid in ids}

        first = assign([0, 8, 16, 24])               # all congruent mod 4
        assert sorted(first.values()) == [0, 1, 2, 3]  # perfectly spread
        # Stability: a later round with the same workers keeps the homes.
        assert assign([0, 8, 16, 24]) == first
        # A round mixing known and new workers balances the new ones onto
        # the children this round leaves idle.
        second = assign([0, 8, 100, 101])
        assert second[0] == first[0] and second[8] == first[8]
        assert sorted(second.values()) == [0, 1, 2, 3]
    finally:
        executor._children = None


def _make_workers(count: int = 2) -> list[SplitWorker]:
    data = make_blobs(train_samples=40 * count, test_samples=20, seed=8)
    shard = len(data.train) // count
    return [
        SplitWorker(
            worker_id=index,
            dataset=data.train.subset(np.arange(index * shard, (index + 1) * shard)),
            num_classes=data.num_classes,
            seed=400 + index,
        )
        for index in range(count)
    ]


def test_child_error_in_pipelined_round_is_recoverable():
    """A child-side error surfacing through collect_forward must not leave a
    phantom pending forward: the next install recovers without blocking."""
    workers = _make_workers()
    bottom = _bottom()
    executor = ProcessExecutor(processes=1)
    try:
        executor.install(workers, bottom, [0.1, 0.1])
        executor.stage_forward(workers, [8, 8])
        executor.launch_forward(workers)
        executor.collect_forward(workers)
        executor.stage_forward(workers, [8, 8])
        bad = [np.zeros((3, 16)), np.zeros((3, 16))]   # wrong batch size
        executor.fused_backward_forward(workers, bad)
        with pytest.raises(RuntimeError, match="does not match the pending"):
            executor.collect_forward(workers)
        assert not executor._completions
        executor.install(workers, bottom, [0.1, 0.1])  # must not hang
        features, __ = executor.forward(workers, [8, 8])
        assert features[0].shape == (8, 16)
        executor.drain()
    finally:
        executor.close()


def test_install_recovery_survives_an_errored_abandoned_forward():
    """If the abandoned forward's queued reply is an error, the recovering
    install raises it -- and the *next* install proceeds instead of hanging
    on an already-consumed reply slot."""
    workers = _make_workers()
    bottom = _bottom()
    executor = ProcessExecutor(processes=1)
    try:
        executor.install(workers, bottom, [0.1, 0.1])
        executor.launch_forward(workers)   # nothing staged: child KeyErrors
        with pytest.raises(RuntimeError, match="KeyError"):
            executor.install(workers, bottom, [0.1, 0.1])
        assert not executor._completions
        executor.install(workers, bottom, [0.1, 0.1])  # must not hang
        features, __ = executor.forward(workers, [8, 8])
        assert features[0].shape == (8, 16)
    finally:
        executor.close()


def test_install_reconciles_abandoned_forward():
    """If a round dies between launch and collect (e.g. the top update
    raised), the next install consumes the orphaned features replies and
    the executor keeps working with correctly paired replies."""
    workers = _make_workers()
    bottom = _bottom()
    executor = ProcessExecutor(processes=1)
    try:
        executor.install(workers, bottom, [0.1, 0.1])
        executor.stage_forward(workers, [8, 8])
        executor.launch_forward(workers)
        # Parent-side failure here; collect_forward never happens.
        executor.install(workers, bottom, [0.1, 0.1])
        features, labels = executor.forward(workers, [8, 8])
        assert len(features) == 2 and features[0].shape == (8, 16)
        executor.backward_step(workers, [0.1 * f for f in features])
        assert len(executor.bottom_states(workers)) == 2
        executor.drain()
    finally:
        executor.close()


@pytest.mark.parametrize("transport", [None, SharedMemoryTransport(capacity=1 << 20)],
                         ids=["pipe", "shm"])
class TestWorkerDeath:
    def test_child_death_mid_round_raises(self, transport):
        """Killing a pool process between commands surfaces as a RuntimeError
        on the next exchange (never a hang), for both transports."""
        workers = _make_workers()
        executor = ProcessExecutor(processes=1, transport=transport)
        try:
            executor.install(workers, _bottom(), [0.1, 0.1])
            executor.forward(workers, [8, 8])
            child = executor._children[0]
            child.process.terminate()
            child.process.join(timeout=5.0)
            with pytest.raises(RuntimeError, match="died"):
                executor.forward(workers, [8, 8])
        finally:
            executor.close()

    def test_death_while_forward_in_flight(self, transport):
        workers = _make_workers()
        executor = ProcessExecutor(processes=1, transport=transport)
        try:
            executor.install(workers, _bottom(), [0.1, 0.1])
            executor.stage_forward(workers, [8, 8])
            executor.launch_forward(workers)
            executor.collect_forward(workers)
            executor.stage_forward(workers, [8, 8])
            child = executor._children[0]
            child.process.terminate()
            child.process.join(timeout=5.0)
            with pytest.raises(RuntimeError, match="died"):
                executor.launch_forward(workers)
                executor.collect_forward(workers)
        finally:
            executor.close()

    def test_death_error_names_the_lost_workers(self, transport):
        from repro.exceptions import ExecutorDeathError

        workers = _make_workers()
        executor = ProcessExecutor(processes=1, transport=transport)
        try:
            executor.install(workers, _bottom(), [0.1, 0.1])
            child = executor._children[0]
            child.process.kill()
            child.process.join(timeout=5.0)
            with pytest.raises(ExecutorDeathError) as excinfo:
                executor.forward(workers, [8, 8])
            assert excinfo.value.worker_ids == [0, 1]
        finally:
            executor.close()

    def test_drain_and_checkpoint_after_death_do_not_hang(self, transport):
        """The satellite regression: a dead child with work in flight used
        to make ``drain()`` block on a reply that would never come (and
        ``close()`` wait on a wedged queue).  Both must now return promptly
        so the engine can checkpoint after recovering the round."""
        workers = _make_workers()
        executor = ProcessExecutor(processes=1, transport=transport)
        try:
            executor.install(workers, _bottom(), [0.1, 0.1])
            executor.stage_forward(workers, [8, 8])
            executor.launch_forward(workers)   # replies now in flight
            child = executor._children[0]
            child.process.kill()
            child.process.join(timeout=5.0)
            executor.drain()                   # must not raise or hang
            executor.drain()                   # idempotent on a dead pool
        finally:
            executor.close()                   # must not hang either
        assert executor._children is None

    def test_close_terminates_a_dirty_dead_pool_promptly(self, transport):
        workers = _make_workers()
        executor = ProcessExecutor(processes=2, transport=transport)
        executor.install(workers, _bottom(), [0.1, 0.1])
        executor.stage_forward(workers, [8, 8])
        executor.launch_forward(workers)
        executor._children[0].process.kill()
        executor._children[0].process.join(timeout=5.0)
        executor.close()
        assert executor._children is None
        assert executor._assignment == {}

    def test_pool_respawns_after_a_death_recovery_close(self, transport):
        """After ``close()`` buries a dead pool, the next call lazily
        respawns children and reships shards -- the engine-level recovery
        path depends on this."""
        workers = _make_workers()
        executor = ProcessExecutor(processes=1, transport=transport)
        try:
            executor.install(workers, _bottom(), [0.1, 0.1])
            child = executor._children[0]
            child.process.kill()
            child.process.join(timeout=5.0)
            with pytest.raises(RuntimeError, match="died"):
                executor.forward(workers, [8, 8])
            executor.close()
            executor.install(workers, _bottom(), [0.1, 0.1])
            features, __ = executor.forward(workers, [8, 8])
            assert features[0].shape == (8, 16)
        finally:
            executor.close()
