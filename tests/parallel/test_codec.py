"""Codec round-trips, error-feedback state and policy negotiation.

Every codec must honour its documented tolerance on arbitrary float
tensors (hypothesis drives the shapes and values), ``none`` must be
bit-exact, and the ``topk`` error-feedback residual must conserve mass
exactly and survive a ``state_dict`` round-trip -- that invariant is what
makes lossy checkpoint/resume reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.api.registry import CODECS
from repro.config import ExperimentConfig
from repro.exceptions import ConfigurationError
from repro.parallel.codec import (
    FEATURES,
    GRADIENTS,
    WEIGHTS,
    CodecPolicy,
    TopKCodec,
    build_codec_policy,
    decode_array,
    decode_key,
    encode_key,
)

# Strategies -----------------------------------------------------------------

float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)

#: Residual-key segments: payload classes, worker ids, parameter names.
key_segments = st.lists(
    st.integers(min_value=-1000, max_value=10**6)
    | st.text(
        alphabet=st.characters(
            codec="ascii", categories=("L", "N"), include_characters="._-"
        ),
        min_size=1,
        max_size=12,
    ).filter(lambda s: not s.lstrip("-").isdigit()),
    min_size=1,
    max_size=4,
)


def _roundtrip(name: str, array: np.ndarray, codec=None) -> np.ndarray:
    codec = codec if codec is not None else CODECS.get(name)()
    payload, meta = codec.encode(array)
    assert payload.dtype == np.uint8 and payload.ndim == 1
    return decode_array(name, payload, array.shape, str(array.dtype), meta)


class TestRoundTripTolerances:
    @given(float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_none_is_bit_exact(self, array):
        decoded = _roundtrip("none", array)
        assert decoded.dtype == array.dtype
        assert np.array_equal(decoded, array)

    @given(float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_fp16_within_half_precision(self, array):
        decoded = _roundtrip("fp16", array)
        # Relative error of round-to-nearest fp16 is 2^-11; the absolute
        # floor covers values that land in the subnormal range.
        assert np.all(np.abs(decoded - array)
                      <= 2.0 ** -11 * np.abs(array) + 2.0 ** -24)

    @given(float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_bf16_within_eight_bit_significand(self, array):
        decoded = _roundtrip("bf16", array)
        # 2^-126 floor: values below float32's normal range flush toward 0.
        assert np.all(np.abs(decoded - array)
                      <= 2.0 ** -8 * np.abs(array) + 2.0 ** -126)

    @given(float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_int8_within_half_quantization_step(self, array):
        decoded = _roundtrip("int8", array)
        span = float(array.max() - array.min())
        assert np.all(np.abs(decoded - array) <= span / 510.0 + 1e-12)

    @given(hnp.arrays(
        dtype=np.float16,
        shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=16),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False,
                           width=16),
    ))
    @settings(max_examples=60, deadline=None)
    def test_fp16_exact_on_representable_values(self, half):
        array = half.astype(np.float64)
        assert np.array_equal(_roundtrip("fp16", array), array)

    def test_int8_constant_tensor_is_exact(self):
        array = np.full((5, 3), 2.25)
        assert np.array_equal(_roundtrip("int8", array), array)

    def test_int8_payload_is_one_byte_per_value(self):
        array = np.random.default_rng(0).normal(size=(32, 16))
        payload, __ = CODECS.get("int8")().encode(array)
        assert payload.nbytes == array.size

    def test_float32_inputs_keep_their_dtype(self):
        array = np.random.default_rng(1).normal(size=(6, 4)).astype(np.float32)
        for name in ("none", "fp16", "bf16", "int8", "topk"):
            assert _roundtrip(name, array).dtype == np.float32


class TestTopK:
    @given(float_arrays, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_keeps_largest_magnitudes_exactly(self, array, ratio):
        codec = TopKCodec(ratio=ratio, error_feedback=False)
        decoded = _roundtrip("topk", array, codec=codec)
        k = max(1, int(np.ceil(ratio * array.size)))
        kept = np.flatnonzero(decoded.reshape(-1))
        assert len(kept) <= k
        flat = array.reshape(-1)
        assert np.array_equal(decoded.reshape(-1)[kept], flat[kept])
        # Nothing dropped may exceed the smallest kept magnitude.
        if k < array.size:
            dropped = np.delete(np.abs(flat), kept)
            if kept.size and dropped.size:
                assert dropped.max() <= np.abs(flat[kept]).min()

    @given(float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_error_feedback_conserves_mass_exactly(self, array):
        """decoded + residual' == input + residual, bit for bit: dropped
        mass is delayed, never lost -- the EF-SGD invariant."""
        codec = TopKCodec(ratio=0.3)
        key = (FEATURES, 0)
        for step in range(3):
            before = codec._residuals.get(key, np.zeros(array.size))
            payload, meta = codec.encode(array, key=key)
            decoded = TopKCodec.decode(payload, array.shape, "float64", meta)
            after = codec._residuals[key]
            assert np.array_equal(
                decoded.reshape(-1) + after, array.reshape(-1) + before
            )

    def test_residual_reenters_next_message(self):
        codec = TopKCodec(ratio=0.5)
        key = (GRADIENTS, 1)
        array = np.asarray([4.0, 3.0, 1.0, 0.5])
        codec.encode(array, key=key)  # keeps {4, 3}; residual holds {1, .5}
        payload, meta = codec.encode(np.zeros(4), key=key)
        decoded = TopKCodec.decode(payload, (4,), "float64", meta)
        assert np.array_equal(decoded, [0.0, 0.0, 1.0, 0.5])

    def test_no_error_feedback_keeps_no_state(self):
        codec = TopKCodec(ratio=0.5, error_feedback=False)
        codec.encode(np.arange(8.0), key=(FEATURES, 0))
        assert codec.state_dict() == {}

    def test_state_dict_roundtrip(self):
        codec = TopKCodec(ratio=0.25)
        codec.encode(np.arange(16.0), key=(FEATURES, 0))
        codec.encode(-np.arange(16.0), key=(FEATURES, 1))
        clone = TopKCodec(**codec.params())
        clone.load_state_dict(codec.state_dict())
        for key, residual in codec._residuals.items():
            assert np.array_equal(clone._residuals[key], residual)
        # merge=False replaces; merge=True keeps unrelated accumulators.
        clone.load_state_dict({(FEATURES, 7): np.ones(4)}, merge=True)
        assert (FEATURES, 0) in clone._residuals
        clone.load_state_dict({(FEATURES, 8): np.ones(4)})
        assert set(clone._residuals) == {(FEATURES, 8)}

    def test_invalid_ratio_rejected(self):
        for ratio in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError, match="topk codec ratio"):
                TopKCodec(ratio=ratio)


class TestKeyCodec:
    @given(key_segments)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip(self, segments):
        key = tuple(segments)
        assert decode_key(encode_key(key)) == key

    def test_numeric_strings_become_ints(self):
        assert decode_key("features|3|layer0.weight") == (
            FEATURES, 3, "layer0.weight"
        )


class TestCodecPolicy:
    def test_spec_roundtrip(self):
        policy = CodecPolicy({
            FEATURES: TopKCodec(ratio=0.2),
            GRADIENTS: CODECS.get("int8")(),
        })
        rebuilt = CodecPolicy.from_spec(policy.spec())
        assert rebuilt.describe() == {FEATURES: "topk", GRADIENTS: "int8"}
        assert rebuilt.codec_for(FEATURES).ratio == 0.2
        assert rebuilt.codec_for(WEIGHTS) is None
        assert rebuilt.codec_for(None) is None
        assert policy.stateful and not CodecPolicy(
            {FEATURES: CODECS.get("fp16")()}
        ).stateful

    def test_unknown_payload_class_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown payload class"):
            CodecPolicy({"telemetry": CODECS.get("fp16")()})

    def test_state_dict_uses_flat_string_keys(self):
        policy = CodecPolicy({FEATURES: TopKCodec(ratio=0.5)})
        policy.codec_for(FEATURES).encode(
            np.arange(8.0), key=(FEATURES, 2, "layer0.weight")
        )
        state = policy.state_dict()
        assert set(state) == {"features|2|layer0.weight"}
        restored = CodecPolicy.from_spec(policy.spec())
        restored.load_state_dict(state)
        assert np.array_equal(
            restored.codec_for(FEATURES)._residuals[(FEATURES, 2, "layer0.weight")],
            policy.codec_for(FEATURES)._residuals[(FEATURES, 2, "layer0.weight")],
        )

    def test_load_drops_residuals_of_absent_classes(self):
        policy = CodecPolicy({FEATURES: TopKCodec()})
        policy.load_state_dict({"gradients|0": np.ones(3)})
        assert policy.state_dict() == {}


class TestBuildCodecPolicy:
    def test_none_builds_no_policy(self):
        assert build_codec_policy(ExperimentConfig()) is None
        assert build_codec_policy(ExperimentConfig(codec="none")) is None

    def test_default_classes_are_features_and_gradients(self):
        policy = build_codec_policy(ExperimentConfig(codec="int8"))
        assert policy.describe() == {FEATURES: "int8", GRADIENTS: "int8"}

    def test_policy_extras_override_classes(self):
        config = ExperimentConfig(
            codec="fp16",
            extras={"codec_policy": {GRADIENTS: "none", WEIGHTS: "int8"}},
        )
        policy = build_codec_policy(config)
        assert policy.describe() == {FEATURES: "fp16", WEIGHTS: "int8"}

    def test_topk_ratio_extra(self):
        config = ExperimentConfig(
            codec="topk", extras={"codec_topk_ratio": 0.4}
        )
        policy = build_codec_policy(config)
        assert policy.codec_for(FEATURES).ratio == 0.4

    def test_unknown_codec_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown codec"):
            ExperimentConfig(codec="middle-out")

    def test_invalid_policy_extras_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(extras={"codec_policy": "int8"})
        with pytest.raises(ConfigurationError):
            ExperimentConfig(extras={"codec_policy": {"telemetry": "int8"}})
        with pytest.raises(ConfigurationError):
            ExperimentConfig(extras={"codec_policy": {FEATURES: "bogus"}})

    def test_registry_lists_codecs(self):
        assert {"none", "fp16", "bf16", "int8", "topk"} <= set(CODECS.names())
