"""Feature-transport framing: ring buffers, corruption, death, fallback."""

from __future__ import annotations

import multiprocessing
import struct

import numpy as np
import pytest

from repro.exceptions import TransportError
from repro.parallel.transport import (
    _FRAME,
    _MAGIC,
    ChildConnector,
    Endpoint,
    PipeTransport,
    RingBuffer,
    SharedMemoryTransport,
)


@pytest.fixture
def ring():
    buffer = RingBuffer.create(capacity=256)
    yield buffer
    buffer.close(unlink=True)


def _loopback(capacity: int = 1 << 16) -> tuple[Endpoint, Endpoint]:
    """Parent and child endpoints of one shm channel, both in-process."""
    transport = SharedMemoryTransport(capacity=capacity)
    parent, connector = transport.pair(multiprocessing.get_context())
    child = connector.connect()
    return parent, child


class TestRingBuffer:
    def test_roundtrip(self, ring):
        payload = np.frombuffer(b"hello ring", dtype=np.uint8)
        ring.write(payload)
        assert ring.read(payload.nbytes).tobytes() == b"hello ring"

    def test_wraparound(self, ring):
        """Writes crossing the end of the data region split into two copies
        and read back intact -- for every offset within one lap."""
        rng = np.random.default_rng(3)
        chunk = 96  # capacity (256) is not a multiple: offsets drift each lap
        for __ in range(20):
            data = rng.integers(0, 256, size=chunk).astype(np.uint8)
            ring.write(data)
            assert np.array_equal(ring.read(chunk), data)

    def test_interleaved_sizes_wrap(self, ring):
        rng = np.random.default_rng(4)
        pending = []
        written = consumed = 0
        for step in range(200):
            size = int(rng.integers(1, 64))
            if written - consumed + size <= ring.capacity:
                data = rng.integers(0, 256, size=size).astype(np.uint8)
                ring.write(data)
                pending.append(data)
                written += size
            while pending and (step % 3 == 0 or written - consumed > 128):
                expected = pending.pop(0)
                assert np.array_equal(ring.read(expected.nbytes), expected)
                consumed += expected.nbytes
        for expected in pending:
            assert np.array_equal(ring.read(expected.nbytes), expected)

    def test_oversized_payload_rejected(self, ring):
        with pytest.raises(TransportError, match="exceeds ring capacity"):
            ring.write(np.zeros(ring.capacity + 1, dtype=np.uint8))
        with pytest.raises(TransportError, match="exceeds ring capacity"):
            ring.read(ring.capacity + 1)

    def test_blocked_write_polls_liveness(self, ring):
        ring.write(np.zeros(ring.capacity, dtype=np.uint8))  # full

        def dead_peer():
            raise TransportError("peer died")

        with pytest.raises(TransportError, match="peer died"):
            ring.write(np.zeros(1, dtype=np.uint8), poll=dead_peer)

    def test_attach_sees_creator_writes(self, ring):
        attached = RingBuffer.attach(ring.name, ring.capacity)
        try:
            ring.write(np.frombuffer(b"shared", dtype=np.uint8))
            assert attached.read(6).tobytes() == b"shared"
        finally:
            attached.close()


class TestSharedMemoryEndpoint:
    def test_nested_payload_roundtrip(self):
        parent, child = _loopback()
        try:
            rng = np.random.default_rng(0)
            message = (
                "forward",
                {
                    3: rng.normal(size=(8, 4)),
                    7: {"weight": rng.normal(size=(2, 3, 3)),
                        "ints": np.arange(5, dtype=np.int64)},
                    "meta": [1.5, "tag", (rng.normal(size=2), None)],
                },
            )
            parent.send(message)
            command, payload = child.recv()
            assert command == "forward"
            assert np.array_equal(payload[3], message[1][3])
            assert np.array_equal(payload[7]["weight"], message[1][7]["weight"])
            assert payload[7]["ints"].dtype == np.int64
            assert np.array_equal(payload["meta"][2][0], message[1]["meta"][2][0])
            assert payload["meta"][:2] == [1.5, "tag"]
        finally:
            parent.close(unlink=True)
            child.close()

    def test_many_messages_wrap_the_ring(self):
        """A long send/recv exchange cycles the small ring many times; the
        head/tail counters and wrapped copies never lose a byte."""
        parent, child = _loopback(capacity=1 << 12)
        try:
            rng = np.random.default_rng(1)
            for __ in range(50):
                arrays = [rng.normal(size=(int(rng.integers(260, 400)),)) for _ in range(4)]
                parent.send(("cmd", arrays))
                command, received = child.recv()
                for sent, got in zip(arrays, received):
                    assert np.array_equal(sent, got)
        finally:
            parent.close(unlink=True)
            child.close()

    def test_array_larger_than_ring_goes_inline(self):
        parent, child = _loopback(capacity=1 << 10)
        try:
            big = np.random.default_rng(2).normal(size=(1024,))  # 8 KiB > ring budget
            parent.send(("cmd", {"big": big, "small": np.ones(3)}))
            __, payload = child.recv()
            assert np.array_equal(payload["big"], big)
            assert np.array_equal(payload["small"], np.ones(3))
        finally:
            parent.close(unlink=True)
            child.close()

    def test_corrupt_frame_header_detected(self):
        parent, child = _loopback()
        try:
            parent.send(("cmd", np.arange(512.0)))
            # Overwrite the frame header (first bytes of the child's inbound
            # ring) with garbage before the child reads it.
            ring = child._ring_in
            ring._data[: _FRAME.size] = np.frombuffer(
                struct.pack("<4sIQ", b"XXXX", 99, 4), dtype=np.uint8
            )
            with pytest.raises(TransportError, match="corrupt ring frame"):
                child.recv()
        finally:
            parent.close(unlink=True)
            child.close()

    def test_wrong_sequence_number_detected(self):
        parent, child = _loopback()
        try:
            parent.send(("cmd", np.arange(512.0)))
            child.recv()
            parent.send(("cmd", np.arange(512.0)))
            child._seq_in = 0  # receiver desynchronised
            with pytest.raises(TransportError, match="corrupt ring frame"):
                child.recv()
        finally:
            parent.close(unlink=True)
            child.close()

    def test_wrong_byte_count_detected(self):
        parent, child = _loopback()
        try:
            parent.send(("cmd", np.arange(512.0)))
            ring = child._ring_in
            header = _FRAME.pack(_MAGIC, 1, 9999)
            ring._data[: _FRAME.size] = np.frombuffer(header, dtype=np.uint8)
            with pytest.raises(TransportError, match="corrupt ring frame"):
                child.recv()
        finally:
            parent.close(unlink=True)
            child.close()

    def test_pipe_transport_passthrough(self):
        transport = PipeTransport()
        parent, connector = transport.pair(multiprocessing.get_context())
        child = connector.connect()
        try:
            payload = {"x": np.arange(6.0).reshape(2, 3)}
            parent.send(("cmd", payload))
            command, received = child.recv()
            assert command == "cmd" and np.array_equal(received["x"], payload["x"])
        finally:
            parent.close()
            child.close()


class TestTransportConfig:
    def test_registry_lists_transports(self):
        from repro.api.registry import TRANSPORTS

        assert {"pipe", "shm"} <= set(TRANSPORTS.names())

    def test_unknown_transport_rejected(self):
        from repro.config import ExperimentConfig
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown transport"):
            ExperimentConfig(transport="carrier-pigeon")

    def test_capacity_knob(self):
        from repro.config import ExperimentConfig
        from repro.parallel import build_transport

        config = ExperimentConfig(
            transport="shm", extras={"transport_capacity": 4096}
        )
        transport = build_transport(config)
        assert isinstance(transport, SharedMemoryTransport)
        assert transport.capacity == 4096

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity must be positive"):
            SharedMemoryTransport(capacity=0)
