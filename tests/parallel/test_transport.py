"""Feature-transport framing: ring buffers, corruption, death, fallback."""

from __future__ import annotations

import multiprocessing
import struct

import numpy as np
import pytest

from repro.exceptions import TransportError
from repro.parallel.transport import (
    _FRAME,
    _MAGIC,
    ChildConnector,
    Endpoint,
    PipeTransport,
    RingBuffer,
    SharedMemoryTransport,
)


@pytest.fixture
def ring():
    buffer = RingBuffer.create(capacity=256)
    yield buffer
    buffer.close(unlink=True)


def _loopback(capacity: int = 1 << 16) -> tuple[Endpoint, Endpoint]:
    """Parent and child endpoints of one shm channel, both in-process."""
    transport = SharedMemoryTransport(capacity=capacity)
    parent, connector = transport.pair(multiprocessing.get_context())
    child = connector.connect()
    return parent, child


class TestRingBuffer:
    def test_roundtrip(self, ring):
        payload = np.frombuffer(b"hello ring", dtype=np.uint8)
        ring.write(payload)
        assert ring.read(payload.nbytes).tobytes() == b"hello ring"

    def test_wraparound(self, ring):
        """Writes crossing the end of the data region split into two copies
        and read back intact -- for every offset within one lap."""
        rng = np.random.default_rng(3)
        chunk = 96  # capacity (256) is not a multiple: offsets drift each lap
        for __ in range(20):
            data = rng.integers(0, 256, size=chunk).astype(np.uint8)
            ring.write(data)
            assert np.array_equal(ring.read(chunk), data)

    def test_interleaved_sizes_wrap(self, ring):
        rng = np.random.default_rng(4)
        pending = []
        written = consumed = 0
        for step in range(200):
            size = int(rng.integers(1, 64))
            if written - consumed + size <= ring.capacity:
                data = rng.integers(0, 256, size=size).astype(np.uint8)
                ring.write(data)
                pending.append(data)
                written += size
            while pending and (step % 3 == 0 or written - consumed > 128):
                expected = pending.pop(0)
                assert np.array_equal(ring.read(expected.nbytes), expected)
                consumed += expected.nbytes
        for expected in pending:
            assert np.array_equal(ring.read(expected.nbytes), expected)

    def test_oversized_payload_rejected(self, ring):
        with pytest.raises(TransportError, match="exceeds ring capacity"):
            ring.write(np.zeros(ring.capacity + 1, dtype=np.uint8))
        with pytest.raises(TransportError, match="exceeds ring capacity"):
            ring.read(ring.capacity + 1)

    def test_blocked_write_polls_liveness(self, ring):
        ring.write(np.zeros(ring.capacity, dtype=np.uint8))  # full

        def dead_peer():
            raise TransportError("peer died")

        with pytest.raises(TransportError, match="peer died"):
            ring.write(np.zeros(1, dtype=np.uint8), poll=dead_peer)

    def test_attach_sees_creator_writes(self, ring):
        attached = RingBuffer.attach(ring.name, ring.capacity)
        try:
            ring.write(np.frombuffer(b"shared", dtype=np.uint8))
            assert attached.read(6).tobytes() == b"shared"
        finally:
            attached.close()


class TestSharedMemoryEndpoint:
    def test_nested_payload_roundtrip(self):
        parent, child = _loopback()
        try:
            rng = np.random.default_rng(0)
            message = (
                "forward",
                {
                    3: rng.normal(size=(8, 4)),
                    7: {"weight": rng.normal(size=(2, 3, 3)),
                        "ints": np.arange(5, dtype=np.int64)},
                    "meta": [1.5, "tag", (rng.normal(size=2), None)],
                },
            )
            parent.send(message)
            command, payload = child.recv()
            assert command == "forward"
            assert np.array_equal(payload[3], message[1][3])
            assert np.array_equal(payload[7]["weight"], message[1][7]["weight"])
            assert payload[7]["ints"].dtype == np.int64
            assert np.array_equal(payload["meta"][2][0], message[1]["meta"][2][0])
            assert payload["meta"][:2] == [1.5, "tag"]
        finally:
            parent.close(unlink=True)
            child.close()

    def test_many_messages_wrap_the_ring(self):
        """A long send/recv exchange cycles the small ring many times; the
        head/tail counters and wrapped copies never lose a byte."""
        parent, child = _loopback(capacity=1 << 12)
        try:
            rng = np.random.default_rng(1)
            for __ in range(50):
                arrays = [rng.normal(size=(int(rng.integers(260, 400)),)) for _ in range(4)]
                parent.send(("cmd", arrays))
                command, received = child.recv()
                for sent, got in zip(arrays, received):
                    assert np.array_equal(sent, got)
        finally:
            parent.close(unlink=True)
            child.close()

    def test_array_larger_than_ring_goes_inline(self):
        parent, child = _loopback(capacity=1 << 10)
        try:
            big = np.random.default_rng(2).normal(size=(1024,))  # 8 KiB > ring budget
            parent.send(("cmd", {"big": big, "small": np.ones(3)}))
            __, payload = child.recv()
            assert np.array_equal(payload["big"], big)
            assert np.array_equal(payload["small"], np.ones(3))
        finally:
            parent.close(unlink=True)
            child.close()

    def test_corrupt_frame_header_detected(self):
        parent, child = _loopback()
        try:
            parent.send(("cmd", np.arange(512.0)))
            # Overwrite the frame header (first bytes of the child's inbound
            # ring) with garbage before the child reads it.
            ring = child._ring_in
            ring._data[: _FRAME.size] = np.frombuffer(
                struct.pack("<4sIQ", b"XXXX", 99, 4), dtype=np.uint8
            )
            with pytest.raises(TransportError, match="corrupt ring frame"):
                child.recv()
        finally:
            parent.close(unlink=True)
            child.close()

    def test_wrong_sequence_number_detected(self):
        parent, child = _loopback()
        try:
            parent.send(("cmd", np.arange(512.0)))
            child.recv()
            parent.send(("cmd", np.arange(512.0)))
            child._seq_in = 0  # receiver desynchronised
            with pytest.raises(TransportError, match="corrupt ring frame"):
                child.recv()
        finally:
            parent.close(unlink=True)
            child.close()

    def test_wrong_byte_count_detected(self):
        parent, child = _loopback()
        try:
            parent.send(("cmd", np.arange(512.0)))
            ring = child._ring_in
            header = _FRAME.pack(_MAGIC, 1, 9999)
            ring._data[: _FRAME.size] = np.frombuffer(header, dtype=np.uint8)
            with pytest.raises(TransportError, match="corrupt ring frame"):
                child.recv()
        finally:
            parent.close(unlink=True)
            child.close()

    def test_pipe_transport_passthrough(self):
        transport = PipeTransport()
        parent, connector = transport.pair(multiprocessing.get_context())
        child = connector.connect()
        try:
            payload = {"x": np.arange(6.0).reshape(2, 3)}
            parent.send(("cmd", payload))
            command, received = child.recv()
            assert command == "cmd" and np.array_equal(received["x"], payload["x"])
        finally:
            parent.close()
            child.close()


def _policy(name: str = "int8", klass: str = "features") -> "CodecPolicy":
    from repro.api.registry import CODECS
    from repro.parallel.codec import CodecPolicy

    return CodecPolicy({klass: CODECS.get(name)()})


def _codec_loopback(policy, capacity: int = 1 << 16):
    transport = SharedMemoryTransport(capacity=capacity, codec=policy)
    parent, connector = transport.pair(multiprocessing.get_context())
    return parent, connector.connect()


class TestCodecEndpoints:
    def test_shm_int8_frames_compress_the_wire(self):
        parent, child = _codec_loopback(_policy("int8"))
        try:
            array = np.random.default_rng(0).normal(size=(64, 128))
            parent.send(("forward", {3: array}), klass="features")
            __, payload = child.recv()
            span = float(array.max() - array.min())
            assert payload[3].shape == array.shape
            assert np.all(np.abs(payload[3] - array) <= span / 510 + 1e-12)
            # 8 bytes/value on the logical side, 1 byte/value on the wire;
            # both directions of the channel agree on the tally.
            assert parent.logical_bytes == array.nbytes
            assert parent.bytes_on_wire == array.size
            assert (child.bytes_on_wire, child.logical_bytes) == (
                parent.bytes_on_wire, parent.logical_bytes
            )
        finally:
            parent.close(unlink=True)
            child.close()

    def test_unlisted_class_passes_through_bit_exact(self):
        parent, child = _codec_loopback(_policy("int8", klass="features"))
        try:
            array = np.random.default_rng(1).normal(size=(32, 16))
            parent.send(("backward", {0: array}), klass="gradients")
            __, payload = child.recv()
            assert np.array_equal(payload[0], array)
            assert parent.bytes_on_wire == parent.logical_bytes == array.nbytes
        finally:
            parent.close(unlink=True)
            child.close()

    def test_integer_arrays_never_encoded(self):
        parent, child = _codec_loopback(_policy("int8"))
        try:
            indices = np.arange(700, dtype=np.int64)
            parent.send(("forward", {0: indices}), klass="features")
            __, payload = child.recv()
            assert np.array_equal(payload[0], indices)
            assert payload[0].dtype == np.int64
        finally:
            parent.close(unlink=True)
            child.close()

    def test_inline_threshold_applies_post_encoding(self):
        """A tensor whose *encoded* payload fits under the inline floor
        bypasses the ring entirely even though its raw bytes exceed it."""
        parent, child = _codec_loopback(_policy("int8"))
        try:
            array = np.random.default_rng(2).normal(size=(2000,))  # 16 KiB raw
            head_before = int(parent._ring_out._head[0])
            parent.send(("forward", {0: array}), klass="features")
            __, payload = child.recv()
            assert int(parent._ring_out._head[0]) == head_before  # no frame
            assert payload[0].shape == array.shape
            assert parent.bytes_on_wire == 2000  # 1 byte/value, inline
            assert parent.logical_bytes == array.nbytes
        finally:
            parent.close(unlink=True)
            child.close()

    def test_pipe_codec_roundtrip_and_counters(self):
        transport = PipeTransport(codec=_policy("fp16"))
        parent, connector = transport.pair(multiprocessing.get_context())
        child = connector.connect()
        try:
            array = np.random.default_rng(3).normal(size=(16, 8))
            parent.send(("forward", {0: array}), klass="features")
            __, payload = child.recv()
            assert np.allclose(payload[0], array, rtol=2 ** -11, atol=2 ** -24)
            assert parent.bytes_on_wire == 2 * array.size
            assert parent.logical_bytes == array.nbytes
            assert (child.bytes_on_wire, child.logical_bytes) == (
                parent.bytes_on_wire, parent.logical_bytes
            )
        finally:
            parent.close()
            child.close()

    def test_plain_pipe_counts_wire_equal_logical(self):
        """Without a codec the pipe endpoint still tallies array traffic
        (measured, not intercepted -- the pickle stream is unchanged)."""
        transport = PipeTransport()
        parent, connector = transport.pair(multiprocessing.get_context())
        child = connector.connect()
        try:
            array = np.arange(512.0)
            parent.send(("cmd", {"x": array}))
            child.recv()
            for end in (parent, child):
                assert end.bytes_on_wire == end.logical_bytes == array.nbytes
        finally:
            parent.close()
            child.close()

    def test_count_false_skips_the_tally(self):
        parent, child = _loopback()
        try:
            parent.send(("load_shard", np.arange(256.0)), count=False)
            child.recv(count=False)
            assert parent.bytes_on_wire == parent.logical_bytes == 0
            assert child.bytes_on_wire == child.logical_bytes == 0
        finally:
            parent.close(unlink=True)
            child.close()

    def test_topk_residuals_live_on_the_sending_policy(self):
        from repro.parallel.codec import CodecPolicy, TopKCodec

        policy = CodecPolicy({"features": TopKCodec(ratio=0.25)})
        parent, child = _codec_loopback(policy)
        try:
            array = np.random.default_rng(4).normal(size=(40,))
            parent.send(("forward", {5: array}), klass="features")
            child.recv()
            state = parent.codec_state_dict()
            assert list(state) == ["features|5"]
            # The receiving side decodes statelessly: no residuals there.
            assert child.codec_state_dict() == {}
        finally:
            parent.close(unlink=True)
            child.close()


class TestTransportConfig:
    def test_registry_lists_transports(self):
        from repro.api.registry import TRANSPORTS

        assert {"pipe", "shm"} <= set(TRANSPORTS.names())

    def test_unknown_transport_rejected(self):
        from repro.config import ExperimentConfig
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown transport"):
            ExperimentConfig(transport="carrier-pigeon")

    def test_capacity_knob(self):
        from repro.config import ExperimentConfig
        from repro.parallel import build_transport

        config = ExperimentConfig(
            transport="shm", extras={"transport_capacity": 4096}
        )
        transport = build_transport(config)
        assert isinstance(transport, SharedMemoryTransport)
        assert transport.capacity == 4096

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity must be positive"):
            SharedMemoryTransport(capacity=0)
