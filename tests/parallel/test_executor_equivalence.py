"""Cross-executor equivalence: serial, batched and process runs are bit-exact.

The executors are pure execution backends -- for a fixed seed, every
algorithm must produce *bit-identical* history records and final weights no
matter which backend carried out the per-worker compute, which transport
moved the tensors, or which round pipeline scheduled the stages.  These
tests pin that contract for every engine code path:

* ``mergesfl`` -- feature merging + regulated (heterogeneous) batch sizes,
  which exercises the batched executor's shape grouping;
* ``splitfed`` -- aggregation after every local iteration (re-install path,
  where the pipelined scheduler must fall back);
* ``fedavg`` -- the FL engine's ``train_full`` path;
* a convolutional model -- the stacked im2col/einsum kernels;
* a normalised model -- the stacked BatchNorm kernels;
* ``process`` x {``pipe``, ``shm``} x {``sync``, ``pipelined``} -- the
  transport framing and the double-buffered iteration overlap.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.metrics.history import WIRE_FIELDS

EXECUTORS = ("serial", "batched", "process")

#: (executor, transport, pipeline) variants that must match serial/sync.
#: The ``staleness`` rows run the bounded-staleness scheduler at its
#: default bound of 0, pinning that the dependency-tracked schedule is
#: bit-identical to the exact ones (the relaxed ``staleness>=1`` rows have
#: their own reference semantics in test_staleness.py).
VARIANTS = (
    ("batched", "pipe", "sync"),
    ("process", "pipe", "sync"),
    ("process", "shm", "sync"),
    ("process", "pipe", "pipelined"),
    ("process", "shm", "pipelined"),
    ("serial", "pipe", "staleness"),
    ("process", "shm", "staleness"),
)


def _run(config: ExperimentConfig):
    """Run a session to completion; return (history records, final weights)."""
    with Session.from_config(config) as session:
        history = session.run()
        return history.records, session.global_model().state_dict()


_REFERENCES: dict[str, tuple] = {}


def _serial_reference(algorithm: str):
    """The serial/sync run of an algorithm, computed once per test session."""
    if algorithm not in _REFERENCES:
        _REFERENCES[algorithm] = _run(_config("serial", algorithm))
    return _REFERENCES[algorithm]


def _assert_bit_equal(reference, candidate, label: str, ignore=()) -> None:
    # Wire-traffic fields measure the execution topology, not the training
    # trajectory, so cross-executor/transport comparisons strip them.
    ignore = tuple(ignore) + WIRE_FIELDS
    ref_records, ref_state = reference
    records, state = candidate
    assert len(records) == len(ref_records)
    for ref_record, record in zip(ref_records, records):
        ref_dict = {k: v for k, v in dataclasses.asdict(ref_record).items()
                    if k not in ignore}
        dict_ = {k: v for k, v in dataclasses.asdict(record).items()
                 if k not in ignore}
        assert dict_ == ref_dict, label
    assert set(state) == set(ref_state)
    for key in ref_state:
        assert np.array_equal(state[key], ref_state[key]), f"{label}: {key}"


def _config(executor: str, algorithm: str, **overrides) -> ExperimentConfig:
    params = dict(
        algorithm=algorithm,
        dataset="blobs",
        model="mlp",
        num_workers=5,
        num_rounds=3,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=300,
        test_samples=80,
        learning_rate=0.1,
        momentum=0.9,
        weight_decay=1e-4,
        seed=3,
        executor=executor,
        extras={"executor_processes": 2},
    )
    params.update(overrides)
    return ExperimentConfig(**params)


@pytest.mark.parametrize("executor,transport,pipeline", VARIANTS,
                         ids=["/".join(v) for v in VARIANTS])
@pytest.mark.parametrize("algorithm", ["mergesfl", "splitfed", "fedavg"])
def test_executors_bit_exact(algorithm, executor, transport, pipeline):
    reference = _serial_reference(algorithm)
    candidate = _run(
        _config(executor, algorithm, transport=transport, pipeline=pipeline)
    )
    _assert_bit_equal(
        reference, candidate, f"{algorithm}/{executor}/{transport}/{pipeline}"
    )


@pytest.mark.parametrize("executor,transport,pipeline", [
    ("serial", "pipe", "sync"),
    ("process", "shm", "pipelined"),
], ids=["serial/sync", "process/shm/pipelined"])
@pytest.mark.parametrize("algorithm", ["mergesfl", "splitfed", "fedavg"])
def test_neutral_elasticity_bit_exact(algorithm, executor, transport, pipeline):
    """``elastic=True`` with every knob at its default is still the exact
    protocol on every backend: zero dropout, no deadline, no over-selection.
    Only the ``completed_ids`` bookkeeping column distinguishes the records."""
    reference = _serial_reference(algorithm)
    candidate = _run(_config(
        executor, algorithm, transport=transport, pipeline=pipeline,
        elastic=True,
    ))
    _assert_bit_equal(
        reference, candidate,
        f"{algorithm}/{executor}/{pipeline}/neutral-elastic",
        ignore=("completed_ids",),
    )


def test_batched_matches_serial_on_conv_model():
    overrides = dict(
        dataset="har",
        model="cnn_h",
        model_width=0.3,
        num_workers=4,
        num_rounds=2,
        local_iterations=2,
        train_samples=160,
        test_samples=40,
    )
    reference = _run(_config("serial", "mergesfl", **overrides))
    candidate = _run(_config("batched", "mergesfl", **overrides))
    _assert_bit_equal(reference, candidate, "mergesfl/cnn_h/batched")


def test_batched_matches_serial_with_dropout_in_full_model():
    """FedAvg on AlexNet-S: the full model contains Dropout, whose per-worker
    RNG cloning the batched kernels must reproduce exactly."""
    overrides = dict(
        dataset="cifar10",
        model="alexnet_s",
        model_width=0.25,
        num_workers=3,
        num_rounds=2,
        local_iterations=2,
        max_batch_size=8,
        base_batch_size=4,
        train_samples=96,
        test_samples=32,
    )
    reference = _run(_config("serial", "fedavg", **overrides))
    candidate = _run(_config("batched", "fedavg", **overrides))
    _assert_bit_equal(reference, candidate, "fedavg/alexnet_s/batched")


def test_batched_matches_serial_on_normalised_model(norm_mlp_model):
    """A bottom/top with BatchNorm1d runs through the stacked BatchNorm
    kernels (no serial fallback) and still matches serial bit for bit."""
    overrides = dict(model=norm_mlp_model, num_rounds=2)
    reference = _run(_config("serial", "mergesfl", **overrides))
    candidate = _run(_config("batched", "mergesfl", **overrides))
    _assert_bit_equal(reference, candidate, "mergesfl/norm_mlp/batched")


@pytest.fixture
def norm_mlp_model():
    """A registered MLP with BatchNorm on both sides of the split."""
    import numpy as np_

    from repro.api.registry import MODELS, register_model
    from repro.nn.layers import BatchNorm1d, Linear, ReLU
    from repro.nn.module import Sequential
    from repro.utils.rng import spawn_rngs

    name = "mlp_bn_test"

    # BatchNorm's gamma/beta count as a weighted layer, so the cut after the
    # 2nd weighted layer lands past [Linear, BatchNorm1d, ReLU]: the bottom
    # trained on workers contains the normalisation.
    @register_model(name, input_kind="vector", split_after_weighted=2)
    def build(input_dim, num_classes, seed=None):
        rngs = spawn_rngs(seed if seed is not None else 0, 3)
        return Sequential([
            Linear(input_dim, 24, rng=rngs[0]),
            BatchNorm1d(24),
            ReLU(),
            Linear(24, 16, rng=rngs[1]),
            BatchNorm1d(16),
            ReLU(),
            Linear(16, num_classes, rng=rngs[2]),
        ])

    yield name
    MODELS.unregister(name)


def test_batched_checkpoint_resume_matches_serial(tmp_path):
    """Executor choice is checkpoint-safe: a batched run checkpointed after
    one round and resumed finishes bit-identically to a straight serial run."""
    path = tmp_path / "batched.ckpt.json"
    with Session.from_config(_config("batched", "mergesfl")) as session:
        session.run(1)
        session.save_checkpoint(path)
    with Session.load_checkpoint(path) as resumed:
        assert resumed.config.executor == "batched"
        resumed.run()
        candidate = (resumed.history.records, resumed.global_model().state_dict())
    reference = _run(_config("serial", "mergesfl"))
    _assert_bit_equal(reference, candidate, "checkpoint-resume/batched")


def test_executor_name_validated():
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError, match="unknown executor"):
        _config("warp-drive", "mergesfl")


def test_executor_listed_in_registry():
    from repro.api.registry import EXECUTORS as registry

    assert {"serial", "batched", "process"} <= set(registry.names())
