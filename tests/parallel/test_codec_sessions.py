"""End-to-end codec behaviour: exactness, bounded loss, checkpoint/resume.

``codec="none"`` must leave every executor bit-exact (it builds no codec
machinery at all); the lossy codecs must stay within a measured accuracy
epsilon of the exact run while visibly compressing the wire; and the
``topk`` error-feedback residuals must survive a mid-run checkpoint so a
resumed lossy run reproduces the uninterrupted one bit for bit.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.metrics.history import WIRE_FIELDS
from repro.metrics.summary import (
    mean_compression_ratio,
    schedule_divergence,
    total_bytes_on_wire,
    total_logical_bytes,
)

#: Lossy-codec convergence budget on the seed config below: final accuracy
#: may differ from the exact serial run's by at most this much.  Measured
#: headroom on this container: 0.0 for int8 and topk@0.3.
CONVERGENCE_EPSILON = 0.05


def _config(**overrides) -> ExperimentConfig:
    params = dict(
        algorithm="mergesfl",
        dataset="blobs",
        model="mlp",
        num_workers=5,
        num_rounds=4,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=300,
        test_samples=80,
        learning_rate=0.1,
        momentum=0.9,
        weight_decay=1e-4,
        seed=3,
        executor="process",
        transport="shm",
        extras={"executor_processes": 2},
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _run(config: ExperimentConfig):
    with Session.from_config(config) as session:
        history = session.run()
        return history, session.global_model().state_dict()


def _records(history, ignore=()):
    return [
        {k: v for k, v in dataclasses.asdict(r).items() if k not in ignore}
        for r in history.records
    ]


class TestNoneCodecExactness:
    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_bit_exact_against_serial_with_unit_ratio(self, transport):
        reference, ref_state = _run(_config(executor="serial"))
        history, state = _run(_config(codec="none", transport=transport))
        assert _records(history, WIRE_FIELDS) == _records(reference, WIRE_FIELDS)
        for key in ref_state:
            assert np.array_equal(state[key], ref_state[key])
        # Raw transport: every byte on the wire is a logical byte.
        for record in history.records:
            assert record.bytes_on_wire == record.logical_bytes > 0
            assert record.compression_ratio == 1.0
        # In-process executors have no wire at all.
        for record in reference.records:
            assert (record.bytes_on_wire, record.compression_ratio) == (0, 0.0)


class TestLossyConvergence:
    def test_int8_within_epsilon_and_halves_the_wire(self):
        exact, __ = _run(_config(executor="serial"))
        history, __ = _run(_config(codec="int8"))
        divergence = schedule_divergence(history, exact)
        assert divergence["final"] <= CONVERGENCE_EPSILON
        assert divergence["max"] <= 2 * CONVERGENCE_EPSILON
        # >= 2x more logical payload per wire byte, visible every round.
        for record in history.records:
            assert record.compression_ratio > 2.0
        assert mean_compression_ratio(history) > 2.0
        assert total_bytes_on_wire(history) * 2 < total_logical_bytes(history)

    def test_topk_error_feedback_within_epsilon(self):
        exact, __ = _run(_config(executor="serial"))
        history, __ = _run(_config(
            codec="topk",
            extras={"executor_processes": 2, "codec_topk_ratio": 0.3},
        ))
        divergence = schedule_divergence(history, exact)
        assert divergence["final"] <= CONVERGENCE_EPSILON
        assert divergence["max"] <= 2 * CONVERGENCE_EPSILON
        # The sparsified trajectory is genuinely different -- the epsilon
        # bound is doing work, not comparing identical runs.
        assert any(
            r.train_loss != e.train_loss
            for r, e in zip(history.records, exact.records)
        )
        assert mean_compression_ratio(history) > 1.3

    def test_fedavg_weight_codec_within_epsilon(self):
        """``extras["codec_policy"]`` reaches the FL engine's ``train_full``
        path: fp16 weight transport stays within the budget."""
        exact, __ = _run(_config(algorithm="fedavg", executor="serial"))
        history, __ = _run(_config(
            algorithm="fedavg",
            extras={"executor_processes": 2,
                    "codec_policy": {"weights": "fp16"}},
        ))
        divergence = schedule_divergence(history, exact)
        assert divergence["final"] <= CONVERGENCE_EPSILON
        for record in history.records:
            assert record.compression_ratio > 2.0


class TestLossyDeterminism:
    def test_int8_trajectory_is_transport_independent(self):
        """The lossy trajectory is a function of the codec, not the wire:
        pipe and shm runs agree bit for bit, wire tallies included."""
        pipe, pipe_state = _run(_config(codec="int8", transport="pipe"))
        shm, shm_state = _run(_config(codec="int8", transport="shm"))
        assert _records(pipe) == _records(shm)
        for key in pipe_state:
            assert np.array_equal(pipe_state[key], shm_state[key])

    def test_topk_checkpoint_mid_run_resumes_bit_exact(self, tmp_path):
        """Error-feedback residuals ride the checkpoint: stopping a lossy
        run after round 2 and resuming reproduces the uninterrupted run
        exactly, including the wire tallies (the re-shipped shards and
        residuals are deliberately uncounted)."""
        config = _config(
            codec="topk",
            extras={"executor_processes": 2, "codec_topk_ratio": 0.3},
        )
        path = tmp_path / "topk.ckpt.json"
        with Session.from_config(config) as session:
            session.run(2)
            session.save_checkpoint(path)
        with Session.load_checkpoint(path) as resumed:
            assert resumed.config.codec == "topk"
            resumed.run()
            candidate = (
                _records(resumed.history),
                resumed.global_model().state_dict(),
            )
        reference, ref_state = _run(config)
        assert candidate[0] == _records(reference)
        for key in ref_state:
            assert np.array_equal(candidate[1][key], ref_state[key])

    def test_checkpoint_carries_residual_state(self, tmp_path):
        import json

        config = _config(
            codec="topk",
            extras={"executor_processes": 2, "codec_topk_ratio": 0.3},
        )
        path = tmp_path / "topk.ckpt.json"
        with Session.from_config(config) as session:
            session.run(1)
            session.save_checkpoint(path)
        payload = json.loads(path.read_text())
        keys = list(payload["algorithm"]["codec"])
        assert keys, "stateful codec must checkpoint its residuals"
        assert all(k.startswith(("features|", "gradients|")) for k in keys)
