"""Layer-level bit-exactness of the stacked kernels, and the serial fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_blobs
from repro.core.worker import SplitWorker
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv1d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool1d,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module, Sequential
from repro.nn.optim import SGD
from repro.parallel.batched import BatchedExecutor
from repro.parallel.kernels import (
    BATCHED_LAYER_TYPES,
    BatchedModel,
    BatchedSGD,
    batched_cross_entropy_gradient,
    unsupported_layers,
)
from repro.parallel.serial import SerialExecutor
from repro.nn.losses import CrossEntropyLoss
from repro.utils.rng import new_rng

WORKERS = 4


def _layer_cases():
    rng = new_rng(77)
    return [
        ("linear", Linear(12, 7, rng=rng), (5, 12)),
        ("linear_nobias", Linear(12, 7, bias=False, rng=rng), (5, 12)),
        ("conv2d", Conv2d(3, 5, kernel_size=3, stride=2, padding=1, rng=rng), (4, 3, 9, 9)),
        ("conv1d", Conv1d(2, 6, kernel_size=5, padding=2, rng=rng), (4, 2, 16)),
        ("relu", ReLU(), (5, 11)),
        ("tanh", Tanh(), (5, 11)),
        ("sigmoid", Sigmoid(), (5, 11)),
        ("flatten", Flatten(), (5, 3, 4, 4)),
        ("maxpool2d", MaxPool2d(2), (4, 3, 6, 6)),
        ("maxpool1d", MaxPool1d(2), (4, 3, 12)),
        ("avgpool2d", AvgPool2d(3), (4, 2, 9, 9)),
        ("dropout", Dropout(0.3, rng=new_rng(5)), (5, 11)),
        ("batchnorm1d", BatchNorm1d(9), (6, 9)),
        ("batchnorm2d", BatchNorm2d(3), (5, 3, 6, 6)),
    ]


@pytest.mark.parametrize(
    "layer,input_shape",
    [case[1:] for case in _layer_cases()],
    ids=[case[0] for case in _layer_cases()],
)
def test_batched_layer_bit_exact(layer, input_shape):
    """Forward, input gradient and parameter gradients match the serial layer
    run once per worker, bit for bit."""
    rng = new_rng(123)
    inputs = rng.normal(size=(WORKERS, *input_shape))

    # Serial references: one fresh clone per worker (same as a round install).
    serial_layers = [layer.clone() for _ in range(WORKERS)]
    serial_out, serial_gin = [], []
    for w, serial in enumerate(serial_layers):
        serial.zero_grad()
        serial_out.append(serial.forward(inputs[w]))
    out_shape = serial_out[0].shape
    grad_out = rng.normal(size=(WORKERS, *out_shape))
    for w, serial in enumerate(serial_layers):
        serial_gin.append(serial.backward(grad_out[w]))

    batched = BATCHED_LAYER_TYPES[type(layer)](layer, WORKERS)
    out = batched.forward(inputs)
    gin = batched.backward(grad_out)

    for w in range(WORKERS):
        assert np.array_equal(out[w], serial_out[w])
        assert np.array_equal(gin[w], serial_gin[w])
    for batched_param, *serial_params in zip(
        batched.params, *(s.parameters() for s in serial_layers)
    ):
        for w, serial_param in enumerate(serial_params):
            assert np.array_equal(batched_param.grad[w], serial_param.grad)


@pytest.mark.parametrize("momentum,weight_decay,max_grad_norm", [
    (0.0, 0.0, None),
    (0.9, 1e-4, 5.0),
    (0.5, 0.0, 1e-3),   # tiny clip threshold: every worker clips
])
def test_batched_sgd_bit_exact(momentum, weight_decay, max_grad_norm):
    rng = new_rng(9)
    template = Sequential([Linear(8, 6, rng=rng), ReLU(), Linear(6, 3, rng=rng)])
    lrs = np.asarray([0.1, 0.05, 0.2, 0.15])

    serial_models = [template.clone() for _ in range(WORKERS)]
    serial_opts = [
        SGD(model.parameters(), lr=lr, momentum=momentum,
            weight_decay=weight_decay, max_grad_norm=max_grad_norm)
        for model, lr in zip(serial_models, lrs)
    ]
    batched_model = BatchedModel(template, WORKERS)
    batched_opt = BatchedSGD(
        batched_model.parameters(), lrs, momentum=momentum,
        weight_decay=weight_decay, max_grad_norm=max_grad_norm,
    )

    loss = CrossEntropyLoss()
    for step in range(3):
        data = rng.normal(size=(WORKERS, 5, 8))
        labels = rng.integers(0, 3, size=(WORKERS, 5))
        for w, (model, opt) in enumerate(zip(serial_models, serial_opts)):
            opt.zero_grad()
            logits = model.forward(data[w])
            loss.forward(logits, labels[w])
            model.backward(loss.backward())
            opt.step()
        batched_opt.zero_grad()
        logits = batched_model.forward(data)
        batched_model.backward(batched_cross_entropy_gradient(logits, labels))
        batched_opt.step()

    for w, model in enumerate(serial_models):
        for name, value in model.state_dict().items():
            assert np.array_equal(batched_model.state_dict_for(w)[name], value)


def test_batched_cross_entropy_gradient_matches_serial():
    rng = new_rng(4)
    logits = rng.normal(size=(WORKERS, 6, 5))
    labels = rng.integers(0, 5, size=(WORKERS, 6))
    grad = batched_cross_entropy_gradient(logits, labels)
    loss = CrossEntropyLoss()
    for w in range(WORKERS):
        loss.forward(logits[w], labels[w])
        assert np.array_equal(grad[w], loss.backward())


class _PluginLayer(Module):
    """A third-party layer with no stacked kernel (identity)."""

    def forward(self, inputs):
        return inputs

    def backward(self, grad_output):
        return grad_output


def test_unsupported_layers_reported():
    model = Sequential([Linear(8, 8, rng=new_rng(0)), _PluginLayer(), ReLU()])
    assert unsupported_layers(model) == ["_PluginLayer"]
    assert unsupported_layers(Sequential([Linear(8, 8, rng=new_rng(0))])) == []
    # Normalised models are fully supported since the stacked BatchNorm
    # kernels landed.
    assert unsupported_layers(
        Sequential([Linear(8, 8, rng=new_rng(0)), BatchNorm1d(8)])
    ) == []


def _make_workers(seed_offset: int = 0) -> list[SplitWorker]:
    data = make_blobs(train_samples=120, test_samples=30, seed=2)
    shard = len(data.train) // 2
    return [
        SplitWorker(
            worker_id=i,
            dataset=data.train.subset(np.arange(i * shard, (i + 1) * shard)),
            num_classes=data.num_classes,
            seed=100 + i,
        )
        for i in range(2)
    ]


def test_batched_executor_falls_back_on_unsupported_layer():
    """A bottom with a plugin layer has no stacked kernel; the batched
    executor must transparently run it serially -- and still match
    SerialExecutor."""
    bottom = Sequential([Linear(32, 16, rng=new_rng(3)), _PluginLayer(), ReLU()])

    results = {}
    for name, executor in (("serial", SerialExecutor()), ("batched", BatchedExecutor())):
        workers = _make_workers()
        executor.install(workers, bottom, [0.1, 0.1])
        features, labels = executor.forward(workers, [8, 8])
        grads = [0.1 * feats for feats in features]
        executor.backward_step(workers, grads)
        results[name] = (features, executor.bottom_states(workers))

    for (f_serial, s_serial), (f_batched, s_batched) in [
        (results["serial"], results["batched"])
    ]:
        for w in range(2):
            assert np.array_equal(f_serial[w], f_batched[w])
            for key in s_serial[w]:
                assert np.array_equal(s_serial[w][key], s_batched[w][key])


def test_batched_executor_requires_install():
    workers = _make_workers()
    executor = BatchedExecutor()
    with pytest.raises(RuntimeError, match="no bottom model installed"):
        executor.forward(workers, [4, 4])


def test_batched_executor_rejects_mismatched_gradient_batch():
    bottom = Sequential([Linear(32, 16, rng=new_rng(3)), ReLU()])
    workers = _make_workers()
    executor = BatchedExecutor()
    executor.install(workers, bottom, [0.1, 0.1])
    features, __ = executor.forward(workers, [8, 8])
    bad = [np.zeros((3, 16)), np.zeros((8, 16))]
    with pytest.raises(ValueError, match="does not match the pending"):
        executor.backward_step(workers, bad)
