"""Integration tests: end-to-end behaviour across subsystems.

These tests check the qualitative claims the paper's evaluation rests on
(at a tiny scale): batch regulation cuts waiting time, split learning moves
less traffic than FedAvg for the same model, SplitFed's per-iteration
aggregation is the most traffic-hungry SFL variant, and feature merging
yields gradients aligned with centralized SGD.
"""

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.summary import final_accuracy, mean_waiting_time


@pytest.fixture(scope="module")
def shared_histories():
    """Run a small experiment once per algorithm and share across tests."""
    config = ExperimentConfig(
        algorithm="mergesfl",
        dataset="blobs",
        model="mlp",
        num_workers=8,
        num_rounds=4,
        local_iterations=4,
        non_iid_level=5.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=480,
        test_samples=120,
        learning_rate=0.1,
        seed=11,
    )
    algorithms = (
        "mergesfl", "mergesfl_no_fm", "mergesfl_no_br",
        "locfedmix_sl", "adasfl", "splitfed", "fedavg", "pyramidfl",
    )
    return {
        name: run_experiment(config.replace(algorithm=name))
        for name in algorithms
    }


class TestCrossAlgorithmBehaviour:
    def test_all_algorithms_learn_above_chance(self, shared_histories):
        for name, history in shared_histories.items():
            assert final_accuracy(history) > 0.3, name

    def test_batch_regulation_reduces_waiting_time(self, shared_histories):
        assert (
            mean_waiting_time(shared_histories["adasfl"])
            < mean_waiting_time(shared_histories["locfedmix_sl"])
        )

    def test_mergesfl_waiting_time_close_to_adasfl(self, shared_histories):
        # Fig. 9: MergeSFL's waiting time is close to AdaSFL and much lower
        # than the fixed-batch approaches.
        merge_wait = mean_waiting_time(shared_histories["mergesfl"])
        fixed_wait = mean_waiting_time(shared_histories["locfedmix_sl"])
        assert merge_wait < fixed_wait

    def test_split_learning_saves_traffic_vs_fedavg(self, shared_histories):
        # Fig. 8: model splitting moves less data than exchanging full models.
        assert (
            shared_histories["locfedmix_sl"].records[-1].traffic_mb
            < shared_histories["fedavg"].records[-1].traffic_mb
        )

    def test_splitfed_uses_most_traffic_among_sfl(self, shared_histories):
        splitfed = shared_histories["splitfed"].records[-1].traffic_mb
        for name in ("mergesfl", "locfedmix_sl", "adasfl"):
            assert splitfed > shared_histories[name].records[-1].traffic_mb

    def test_mergesfl_selects_subset_of_workers(self, shared_histories):
        records = shared_histories["mergesfl"].records
        assert all(record.num_selected <= 8 for record in records)
        assert all(record.num_selected >= 1 for record in records)

    def test_merged_kl_is_small(self, shared_histories):
        # Feature merging targets a near-IID mixed sequence (KL <= epsilon-ish).
        kls = [record.merged_kl for record in shared_histories["mergesfl"].records]
        assert np.mean(kls) < 0.5

    def test_histories_are_serialisable(self, shared_histories):
        for history in shared_histories.values():
            payload = history.to_dict()
            assert payload["records"]


class TestNonIidDegradation:
    def test_noniid_hurts_fixed_batch_sfl_more_than_mergesfl_relative(self):
        # Fig. 10 trend at tiny scale: as p grows, every approach drops or
        # stays flat; MergeSFL's drop is bounded.
        config = ExperimentConfig(
            algorithm="mergesfl", dataset="blobs", model="mlp",
            num_workers=6, num_rounds=4, local_iterations=4,
            max_batch_size=16, base_batch_size=8,
            train_samples=360, test_samples=100, learning_rate=0.1, seed=5,
        )
        iid = run_experiment(config.replace(non_iid_level=0.0))
        skewed = run_experiment(config.replace(non_iid_level=10.0))
        assert final_accuracy(skewed) >= final_accuracy(iid) - 0.25
