"""Tests for training history and summary metrics."""

import pytest

from repro.metrics.history import History, RoundRecord
from repro.metrics.summary import (
    best_accuracy,
    compare_histories,
    final_accuracy,
    mean_waiting_time,
    speedup,
    time_to_accuracy,
    traffic_to_accuracy,
)


def _history(accuracies, algorithm="test"):
    history = History(algorithm=algorithm)
    for index, accuracy in enumerate(accuracies):
        history.append(RoundRecord(
            round_index=index,
            sim_time=10.0 * (index + 1),
            duration=10.0,
            waiting_time=1.0 + index,
            traffic_mb=5.0 * (index + 1),
            train_loss=1.0 / (index + 1),
            test_loss=1.0,
            test_accuracy=accuracy,
            num_selected=4,
            total_batch=32,
        ))
    return history


class TestHistory:
    def test_append_len_iter_getitem(self):
        history = _history([0.1, 0.2])
        assert len(history) == 2
        assert history[1].test_accuracy == 0.2
        assert [r.round_index for r in history] == [0, 1]

    def test_accessors(self):
        history = _history([0.1, 0.4])
        assert history.accuracies == [0.1, 0.4]
        assert history.times == [10.0, 20.0]
        assert history.traffic == [5.0, 10.0]
        assert history.waiting_times == [1.0, 2.0]

    def test_dict_roundtrip(self):
        history = _history([0.3, 0.6], algorithm="mergesfl")
        clone = History.from_dict(history.to_dict())
        assert clone.algorithm == "mergesfl"
        assert clone.accuracies == history.accuracies


class TestSummary:
    def test_final_and_best_accuracy(self):
        history = _history([0.2, 0.8, 0.6])
        assert final_accuracy(history) == 0.6
        assert best_accuracy(history) == 0.8

    def test_empty_history(self):
        empty = History()
        assert final_accuracy(empty) == 0.0
        assert best_accuracy(empty) == 0.0
        assert mean_waiting_time(empty) == 0.0

    def test_time_to_accuracy(self):
        history = _history([0.2, 0.5, 0.9])
        assert time_to_accuracy(history, 0.5) == 20.0
        assert time_to_accuracy(history, 0.95) is None

    def test_traffic_to_accuracy(self):
        history = _history([0.2, 0.5, 0.9])
        assert traffic_to_accuracy(history, 0.9) == 15.0

    def test_mean_waiting_time(self):
        assert mean_waiting_time(_history([0.1, 0.2])) == pytest.approx(1.5)

    def test_speedup(self):
        slow = _history([0.1, 0.2, 0.9])
        fast = _history([0.9, 0.95, 0.99])
        assert speedup(slow, fast, target=0.9) == pytest.approx(3.0)
        assert speedup(slow, fast, target=2.0) is None

    def test_compare_histories_uses_common_target(self):
        table = compare_histories({
            "a": _history([0.3, 0.6]),
            "b": _history([0.5, 0.9]),
        })
        assert set(table) == {"a", "b"}
        # Common target is min of best accuracies (0.6) so both rows resolve.
        assert table["a"]["time_to_target_s"] is not None
        assert table["b"]["time_to_target_s"] is not None

    def test_compare_histories_explicit_target(self):
        table = compare_histories({"a": _history([0.3, 0.6])}, target=0.5)
        assert table["a"]["time_to_target_s"] == 20.0
