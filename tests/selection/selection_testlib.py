"""Shared instance builder for the selection-solver tests."""

from __future__ import annotations

from repro.core.divergence import iid_distribution
from repro.selection.solvers import SelectionProblem
from repro.utils.rng import new_rng


def make_problem(
    num_workers: int = 10,
    num_classes: int = 5,
    seed: int = 0,
    budget_fraction: float = 0.5,
    vector_bandwidth: bool = False,
    rng_seed: int | None = None,
) -> SelectionProblem:
    """A random-but-deterministic selection instance."""
    rng = new_rng(seed)
    dists = rng.dirichlet([0.3] * num_classes, size=num_workers)
    batch_sizes = rng.integers(2, 17, size=num_workers)
    if vector_bandwidth:
        bandwidth = rng.uniform(0.5, 2.0, size=num_workers)
        budget = budget_fraction * float((batch_sizes * bandwidth).sum())
    else:
        bandwidth = 1.0
        budget = budget_fraction * float(batch_sizes.sum())
    priorities = rng.uniform(1.0, 4.0, size=num_workers)
    return SelectionProblem(
        batch_sizes=batch_sizes,
        label_distributions=dists,
        target_distribution=iid_distribution(dists),
        bandwidth_per_sample=bandwidth,
        bandwidth_budget=budget,
        priorities=priorities,
        rng=new_rng(seed if rng_seed is None else rng_seed),
    )
