"""``config.selector`` does not perturb the default trajectory.

``selector="ga"`` must be indistinguishable from a config that never
mentions selection solvers: identical history records and final weights
across both split engines, every executor and both population modes, and
checkpoints that keep their historical format (no ``selection`` key).  The
stateful ``ga-warm`` solver must survive checkpoint/resume bit-exactly, and
depth-aware selection must be neutral while every worker sits at the
global cut.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.exceptions import ConfigurationError
from repro.metrics.history import WIRE_FIELDS

EXECUTORS = ("serial", "batched", "process")
ALGORITHMS = ("mergesfl", "splitfed")
POPULATIONS = ("eager", "lazy")


def _config(executor: str, algorithm: str, population: str = "eager",
            **overrides) -> ExperimentConfig:
    params = dict(
        algorithm=algorithm,
        dataset="blobs",
        model="mlp",
        num_workers=5,
        num_rounds=3,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=300,
        test_samples=80,
        learning_rate=0.1,
        momentum=0.9,
        weight_decay=1e-4,
        seed=3,
        executor=executor,
        population=population,
        extras={"executor_processes": 2},
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _run(config: ExperimentConfig):
    with Session.from_config(config) as session:
        history = session.run()
        return history.records, session.global_model().state_dict()


_REFERENCES: dict[tuple[str, str], tuple] = {}


def _reference(algorithm: str, population: str = "eager"):
    """A serial run whose config never mentions selection solvers."""
    key = (algorithm, population)
    if key not in _REFERENCES:
        _REFERENCES[key] = _run(_config("serial", algorithm, population))
    return _REFERENCES[key]


def _assert_bit_equal(reference, candidate, label: str) -> None:
    ref_records, ref_state = reference
    records, state = candidate
    assert len(records) == len(ref_records)
    for ref_record, record in zip(ref_records, records):
        ref_dict = {k: v for k, v in dataclasses.asdict(ref_record).items()
                    if k not in WIRE_FIELDS}
        dict_ = {k: v for k, v in dataclasses.asdict(record).items()
                 if k not in WIRE_FIELDS}
        assert dict_ == ref_dict, label
    assert set(state) == set(ref_state)
    for key in ref_state:
        assert np.array_equal(state[key], ref_state[key]), f"{label}: {key}"


@pytest.mark.parametrize("population", POPULATIONS)
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_ga_selector_matches_default_everywhere(algorithm, executor, population):
    """An explicit ``selector="ga"`` run is the default run, bit for bit."""
    candidate = _run(_config(executor, algorithm, population, selector="ga"))
    _assert_bit_equal(
        _reference(algorithm, population), candidate,
        f"{algorithm}/{executor}/{population}/ga",
    )


def test_default_checkpoint_keeps_historical_format():
    """Stateless solvers (the default) add no checkpoint key."""
    with Session.from_config(_config("serial", "mergesfl",
                                     selector="ga")) as session:
        session.run(1)
        state = session.state_dict()
    assert "selection" not in state["algorithm"]
    assert "selection_depths" not in state["algorithm"]


def test_warm_solver_state_is_checkpointed():
    with Session.from_config(_config("serial", "mergesfl",
                                     selector="ga-warm")) as session:
        session.run(2)
        state = session.state_dict()
    selection = state["algorithm"]["selection"]
    assert selection["previous"] is not None
    assert selection["previous"] == sorted(selection["previous"])


@pytest.mark.parametrize("population", POPULATIONS)
def test_warm_solver_checkpoint_resume_is_bit_exact(tmp_path, population):
    """ga-warm: 1 round + save + resume 2 == 3 rounds straight."""
    config = _config("serial", "mergesfl", population, selector="ga-warm")
    straight = _run(config)

    path = tmp_path / f"warm-{population}.ckpt.json"
    with Session.from_config(config) as session:
        session.run(1)
        session.save_checkpoint(path)
    with Session.load_checkpoint(path) as resumed:
        resumed.run()
        candidate = (resumed.history.records,
                     resumed.global_model().state_dict())
    _assert_bit_equal(straight, candidate, f"warm-resume/{population}")


@pytest.mark.parametrize("selector", ["ga-warm", "local-search", "greedy"])
def test_alternative_selectors_run_and_are_deterministic(selector):
    config = _config("serial", "mergesfl", selector=selector)
    first = _run(config)
    second = _run(config)
    _assert_bit_equal(first, second, f"determinism/{selector}")
    records, __ = first
    assert all(np.isfinite(record.merged_kl) for record in records)
    assert all(record.num_selected >= 1 for record in records)


def test_warm_solver_with_lazy_candidate_pool():
    """Warm state is keyed on global ids, so per-round candidate pools
    (different subsets each round) remap it instead of corrupting it."""
    config = _config(
        "serial", "mergesfl", "lazy",
        selector="ga-warm", num_workers=12, num_rounds=4,
        population_candidates=6,
    )
    with Session.from_config(config) as session:
        session.run()
        state = session.state_dict()
        records = session.history.records
    previous = state["algorithm"]["selection"]["previous"]
    assert previous and all(0 <= worker < 12 for worker in previous)
    assert all(record.num_selected >= 1 for record in records)


class TestDepthAwareSelection:
    def test_requires_non_uniform_split_policy(self):
        with pytest.raises(ConfigurationError, match="depth_aware_selection"):
            _config("serial", "mergesfl",
                    extras={"depth_aware_selection": True})

    def test_rejects_non_bool(self):
        with pytest.raises(ConfigurationError, match="must be a bool"):
            _config("serial", "mergesfl", split_policy="profile",
                    extras={"depth_aware_selection": 3})

    def test_neutral_at_the_degenerate_global_cut(self):
        """On ``mlp`` the only candidate cut is the tail, so the per-worker
        cost vector is constant at round zero and every later round; the
        run must match plain ``profile`` bit for bit."""
        reference = _run(_config("serial", "mergesfl",
                                 split_policy="profile"))
        candidate = _run(_config(
            "serial", "mergesfl", split_policy="profile",
            extras={"executor_processes": 2, "depth_aware_selection": True},
        ))
        _assert_bit_equal(reference, candidate, "depth-aware-degenerate")

    def test_depths_are_checkpointed_and_resume_exactly(self, tmp_path):
        config = _config(
            "serial", "mergesfl", split_policy="profile",
            extras={"executor_processes": 2, "depth_aware_selection": True},
        )
        straight = _run(config)
        path = tmp_path / "depth-aware.ckpt.json"
        with Session.from_config(config) as session:
            session.run(1)
            state = session.state_dict()
            assert "selection_depths" in state["algorithm"]
            assert state["algorithm"]["selection_depths"]
            session.save_checkpoint(path)
        with Session.load_checkpoint(path) as resumed:
            resumed.run()
            candidate = (resumed.history.records,
                         resumed.global_model().state_dict())
        _assert_bit_equal(straight, candidate, "depth-aware-resume")
