"""The vectorized greedy constructor against the original scalar loop.

``greedy_select`` was rewritten from an O(N^2) Python loop over the scalar
helpers into one row-wise matrix reduction per step.  This module preserves
the original loop verbatim as the reference and pins the rewrite to it bit
for bit -- selected set, KL and feasibility -- across random instances,
degenerate zero-batch workers, tight budgets and per-worker cost vectors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batching import occupied_bandwidth
from repro.core.divergence import (
    iid_distribution,
    kl_divergence,
    mixed_label_distribution,
)
from repro.core.selection import SelectionResult, greedy_select
from repro.utils.rng import new_rng


def _reference_greedy_select(
    batch_sizes, label_distributions, target_distribution,
    bandwidth_per_sample, bandwidth_budget, priorities=None,
) -> SelectionResult:
    """The pre-rewrite implementation, kept verbatim as the oracle."""
    batch_sizes = np.asarray(batch_sizes, dtype=np.int64)
    label_distributions = np.atleast_2d(np.asarray(label_distributions))
    num_workers = batch_sizes.shape[0]
    if priorities is None:
        priorities = np.ones(num_workers)
    remaining = list(np.argsort(-np.asarray(priorities)))
    selected: list[int] = []
    while remaining:
        best_candidate = None
        best_kl = np.inf
        for candidate in remaining:
            trial = selected + [candidate]
            used = occupied_bandwidth(batch_sizes, trial, bandwidth_per_sample)
            if used > bandwidth_budget:
                continue
            phi = mixed_label_distribution(label_distributions, batch_sizes, trial)
            trial_kl = kl_divergence(phi, target_distribution)
            if trial_kl < best_kl:
                best_kl = trial_kl
                best_candidate = candidate
        if best_candidate is None:
            break
        selected.append(best_candidate)
        remaining.remove(best_candidate)
        current_phi = mixed_label_distribution(
            label_distributions, batch_sizes, selected
        )
        if kl_divergence(current_phi, target_distribution) < 1e-3 and len(selected) >= 2:
            break
    if not selected:
        selected = [int(np.argsort(-np.asarray(priorities))[0])]
    phi = mixed_label_distribution(label_distributions, batch_sizes, selected)
    used = occupied_bandwidth(batch_sizes, selected, bandwidth_per_sample)
    return SelectionResult(
        selected=np.sort(np.asarray(selected)),
        kl=kl_divergence(phi, target_distribution),
        feasible=used <= bandwidth_budget * (1.0 + 1e-9),
    )


def _instance(seed: int, num_workers: int, num_classes: int,
              vector: bool, zero_batches: bool, budget_fraction: float):
    rng = new_rng(seed)
    dists = rng.dirichlet([0.2] * num_classes, size=num_workers)
    low = 0 if zero_batches else 1
    batch_sizes = rng.integers(low, 17, size=num_workers)
    if vector:
        bandwidth = rng.uniform(0.5, 2.0, size=num_workers)
    else:
        bandwidth = float(rng.uniform(0.5, 2.0))
    budget = budget_fraction * float((batch_sizes * bandwidth).sum()) + 1e-9
    priorities = rng.uniform(1.0, 4.0, size=num_workers)
    return (batch_sizes, dists, iid_distribution(dists), bandwidth, budget,
            priorities)


def _assert_identical(candidate: SelectionResult, reference: SelectionResult,
                      label: str) -> None:
    assert np.array_equal(candidate.selected, reference.selected), label
    assert candidate.kl == reference.kl, label
    assert candidate.feasible == reference.feasible, label


@pytest.mark.parametrize("vector", [False, True])
@pytest.mark.parametrize("budget_fraction", [0.1, 0.5, 2.0])
def test_vectorized_greedy_is_bit_exact_with_reference(vector, budget_fraction):
    for seed in range(25):
        args = _instance(seed, num_workers=5 + seed % 20, num_classes=2 + seed % 6,
                         vector=vector, zero_batches=(seed % 7 == 0),
                         budget_fraction=budget_fraction)
        batch, dists, target, bandwidth, budget, priorities = args
        _assert_identical(
            greedy_select(batch, dists, target, bandwidth, budget,
                          priorities=priorities),
            _reference_greedy_select(batch, dists, target, bandwidth, budget,
                                     priorities=priorities),
            f"seed={seed} vector={vector} budget={budget_fraction}",
        )


def test_vectorized_greedy_without_priorities():
    batch, dists, target, bandwidth, budget, __ = _instance(
        99, 12, 5, vector=False, zero_batches=False, budget_fraction=0.4
    )
    _assert_identical(
        greedy_select(batch, dists, target, bandwidth, budget),
        _reference_greedy_select(batch, dists, target, bandwidth, budget),
        "no-priorities",
    )


def test_infeasible_budget_falls_back_to_top_priority_worker():
    batch, dists, target, bandwidth, __, priorities = _instance(
        3, 8, 4, vector=False, zero_batches=False, budget_fraction=0.5
    )
    result = greedy_select(batch, dists, target, bandwidth, 1e-12,
                           priorities=priorities)
    reference = _reference_greedy_select(batch, dists, target, bandwidth,
                                         1e-12, priorities=priorities)
    _assert_identical(result, reference, "infeasible")
    assert list(result.selected) == [int(np.argsort(-priorities)[0])]
    assert not result.feasible


def test_negative_batches_rejected():
    batch, dists, target, bandwidth, budget, __ = _instance(
        5, 6, 4, vector=False, zero_batches=False, budget_fraction=0.5
    )
    batch = batch.copy()
    batch[0] = -1
    with pytest.raises(ValueError, match="non-negative"):
        greedy_select(batch, dists, target, bandwidth, budget)
