"""The SELECTION_SOLVERS registry and the individual solvers.

The load-bearing guarantees: ``ga`` is bit-exact with calling
:func:`~repro.core.selection.genetic_select` directly (same RNG, same
result), every solver's winner is never better than the ``exact``
brute-force oracle's fitness (and the refinement solvers land close to
it), and the warm-started GA's cross-round state survives a
``state_dict`` round trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import SELECTION_SOLVERS, register_selection_solver
from repro.config import ExperimentConfig
from repro.core.selection import genetic_select, greedy_select
from repro.exceptions import ConfigurationError, SelectionError
from repro.selection import (
    ExactSolver,
    GASolver,
    GreedySolver,
    LocalSearchSolver,
    SelectionProblem,
    WarmGASolver,
    build_selection_solver,
)
from repro.selection.solvers import _canonicalize, _signature_groups
from repro.utils.rng import new_rng

from selection_testlib import make_problem as _make_problem


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("ga", "ga-warm", "greedy", "local-search", "exact"):
            assert name in SELECTION_SOLVERS

    def test_build_from_config_selector(self):
        config = ExperimentConfig(dataset="blobs", model="mlp",
                                  selector="local-search")
        solver = build_selection_solver(config)
        assert isinstance(solver, LocalSearchSolver)

    def test_build_name_overrides_config(self):
        config = ExperimentConfig(dataset="blobs", model="mlp")
        assert isinstance(build_selection_solver(config, name="greedy"),
                          GreedySolver)

    def test_ga_solver_reads_config_knobs(self):
        config = ExperimentConfig(dataset="blobs", model="mlp",
                                  ga_population=11, ga_generations=7,
                                  selection_fraction=0.25)
        solver = build_selection_solver(config)
        assert isinstance(solver, GASolver)
        assert solver.population_size == 11
        assert solver.generations == 7
        assert solver.seed_fraction == 0.25

    def test_unknown_selector_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="selection solver"):
            ExperimentConfig(dataset="blobs", model="mlp", selector="annealing")

    def test_third_party_solver_registers_and_validates(self):
        @register_selection_solver("everyone", description="test plugin")
        class EveryoneSolver(GreedySolver):
            name = "everyone"

            def solve(self, problem):
                return problem.decode(np.arange(problem.num_workers))

        try:
            config = ExperimentConfig(dataset="blobs", model="mlp",
                                      selector="everyone")
            solver = build_selection_solver(config)
            result = solver.solve(_make_problem(num_workers=6))
            assert list(result.selected) == list(range(6))
        finally:
            SELECTION_SOLVERS.unregister("everyone")


class TestGASolver:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_exact_with_genetic_select(self, seed):
        problem = _make_problem(num_workers=16, seed=seed)
        direct = genetic_select(
            problem.batch_sizes,
            problem.label_distributions,
            problem.target_distribution,
            problem.bandwidth_per_sample,
            problem.bandwidth_budget,
            priorities=problem.priorities,
            rng=new_rng(seed),
        )
        problem.rng = new_rng(seed)
        via_solver = GASolver().solve(problem)
        assert np.array_equal(via_solver.selected, direct.selected)
        assert via_solver.kl == direct.kl
        assert via_solver.feasible == direct.feasible

    def test_greedy_solver_matches_greedy_select(self):
        problem = _make_problem(num_workers=14, seed=5)
        direct = greedy_select(
            problem.batch_sizes,
            problem.label_distributions,
            problem.target_distribution,
            problem.bandwidth_per_sample,
            problem.bandwidth_budget,
            priorities=problem.priorities,
        )
        via_solver = GreedySolver().solve(problem)
        assert np.array_equal(via_solver.selected, direct.selected)
        assert via_solver.kl == direct.kl


def _fitness_of(problem: SelectionProblem, selected) -> float:
    mask = np.zeros(problem.num_workers, dtype=bool)
    mask[np.asarray(selected, dtype=np.int64)] = True
    return float(problem.fitness().evaluate(mask[None, :])[0])


class TestExactOracle:
    @pytest.mark.parametrize("num_workers", [2, 5, 8, 10])
    @pytest.mark.parametrize("vector", [False, True])
    def test_oracle_lower_bounds_every_solver(self, num_workers, vector):
        """No solver beats brute force on its own objective, and the
        search solvers land within a loose factor of the optimum."""
        for seed in range(3):
            problem = _make_problem(num_workers=num_workers, seed=seed,
                                    vector_bandwidth=vector)
            oracle = _fitness_of(problem, ExactSolver().solve(problem).selected)
            for solver in (GASolver(), WarmGASolver(), LocalSearchSolver(),
                           GreedySolver()):
                problem.rng = new_rng(seed)
                score = _fitness_of(problem, solver.solve(problem).selected)
                label = f"{solver.name} N={num_workers} seed={seed}"
                assert score >= oracle - 1e-12, label
                assert np.isfinite(score), label

    def test_local_search_reaches_oracle_on_small_instances(self):
        hits = 0
        trials = 8
        for seed in range(trials):
            problem = _make_problem(num_workers=8, seed=seed)
            oracle = _fitness_of(problem, ExactSolver().solve(problem).selected)
            score = _fitness_of(
                problem, LocalSearchSolver().solve(problem).selected
            )
            if score <= oracle + 1e-9:
                hits += 1
        # 1-flip/1-swap local optima coincide with the global optimum on
        # most tiny instances; requiring a majority keeps the test honest
        # without making it flaky.
        assert hits >= trials // 2 + 1

    def test_exact_rejects_oversized_and_empty_instances(self):
        with pytest.raises(SelectionError, match="capped"):
            ExactSolver().solve(_make_problem(num_workers=13))
        empty = _make_problem(num_workers=2)
        empty.batch_sizes = np.zeros((0,), dtype=np.int64)
        empty.label_distributions = np.zeros((0, 5))
        with pytest.raises(SelectionError, match="zero workers"):
            ExactSolver().solve(empty)


class TestWarmGASolver:
    def test_cold_round_matches_plain_ga(self):
        problem = _make_problem(num_workers=16, seed=3)
        problem.rng = new_rng(3)
        plain = GASolver().solve(problem)
        problem.rng = new_rng(3)
        warm = WarmGASolver().solve(problem)
        assert np.array_equal(warm.selected, plain.selected)
        assert warm.kl == plain.kl

    def test_records_winner_as_global_ids(self):
        solver = WarmGASolver()
        problem = _make_problem(num_workers=12, seed=1)
        problem.worker_ids = np.arange(100, 112)
        result = solver.solve(problem)
        assert solver._previous == [100 + int(w) for w in result.selected]

    def test_state_dict_round_trip_reproduces_next_round(self):
        first = _make_problem(num_workers=14, seed=4, rng_seed=40)
        second = _make_problem(num_workers=14, seed=5, rng_seed=41)

        reference = WarmGASolver()
        reference.solve(first)
        state = reference.state_dict()
        expected = reference.solve(_make_problem(num_workers=14, seed=5,
                                                 rng_seed=41))

        restored = WarmGASolver()
        restored.load_state_dict(state)
        assert restored._previous == state["previous"]
        result = restored.solve(second)
        assert np.array_equal(result.selected, expected.selected)
        assert result.kl == expected.kl

    def test_fresh_state_dict_is_empty_previous(self):
        assert WarmGASolver().state_dict() == {"previous": None}

    def test_warm_round_ignores_ids_outside_candidate_pool(self):
        solver = WarmGASolver()
        solver.load_state_dict({"previous": [900, 901]})
        problem = _make_problem(num_workers=10, seed=6)
        problem.worker_ids = np.arange(10)
        # None of the previous winners are in the pool: falls back to the
        # cold GA instead of seeding an empty mask.
        cold = _make_problem(num_workers=10, seed=6)
        result = solver.solve(problem)
        reference = GASolver().solve(cold)
        assert np.array_equal(result.selected, reference.selected)

    def test_warm_round_never_worse_than_polished_start(self):
        """Across a round sequence the warm solver stays feasible and sane."""
        solver = WarmGASolver()
        for seed in range(5):
            problem = _make_problem(num_workers=20, seed=seed, rng_seed=seed + 50)
            result = solver.solve(problem)
            assert result.selected.size >= 1
            assert np.isfinite(result.kl)
            assert result.feasible


class TestSymmetryHelpers:
    def test_signature_groups_find_interchangeable_workers(self):
        dists = np.tile(np.array([[0.5, 0.5]]), (4, 1))
        dists[3] = [0.9, 0.1]
        batch = np.array([8, 8, 8, 8])
        groups = _signature_groups(batch, dists, 1.0, np.array([1., 3., 2., 4.]))
        assert len(groups) == 1
        # Ordered by descending priority: worker 1 (3.0) before 2 before 0.
        assert list(groups[0]) == [1, 2, 0]

    def test_canonicalize_keeps_count_and_fitness_shape(self):
        dists = np.tile(np.array([[0.25, 0.75]]), (5, 1))
        batch = np.full(5, 4)
        groups = _signature_groups(batch, dists, 1.0, np.arange(5, dtype=float))
        mask = np.array([False, True, False, True, False])
        canon = _canonicalize(mask.copy(), groups)
        assert canon.sum() == mask.sum()
        # Canonical members are the highest-priority ones (4, then 3).
        assert list(np.flatnonzero(canon)) == [3, 4]

    def test_vector_costs_split_signature_groups(self):
        dists = np.tile(np.array([[0.5, 0.5]]), (3, 1))
        batch = np.array([8, 8, 8])
        groups = _signature_groups(
            batch, dists, np.array([1.0, 1.0, 2.0]), np.ones(3)
        )
        assert len(groups) == 1
        assert set(groups[0]) == {0, 1}
