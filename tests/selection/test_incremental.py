"""PopulationFitness.delta_evaluate / IncrementalFitness numerics.

The contract: the anchor's incremental score is *bitwise* identical to the
full vectorized evaluation (the cached terms are rebuilt with the same
sequential reductions), and every O(classes) neighbour score agrees with a
from-scratch evaluation of the flipped mask up to float-addition
reassociation (~1e-14 relative), including after long committed-move
sequences thanks to the periodic resync.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.divergence import iid_distribution
from repro.core.selection import PopulationFitness, _fitness
from repro.exceptions import SelectionError
from repro.utils.rng import new_rng

from selection_testlib import make_problem


def _random_fitness(seed: int, num_workers: int, num_classes: int,
                    vector: bool = False,
                    allow_zero_batches: bool = False):
    rng = new_rng(seed)
    dists = rng.dirichlet([0.3] * num_classes, size=num_workers)
    low = 0 if allow_zero_batches else 1
    batch_sizes = rng.integers(low, 17, size=num_workers)
    bandwidth = (
        rng.uniform(0.5, 2.0, size=num_workers) if vector else
        float(rng.uniform(0.5, 2.0))
    )
    budget = 0.5 * float((batch_sizes * bandwidth).sum()) + 1e-9
    target = iid_distribution(dists)
    fitness = PopulationFitness(batch_sizes, dists, target, bandwidth, budget)
    mask = rng.random(num_workers) < 0.5
    return fitness, mask, rng


class TestDeltaEvaluateProperties:
    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(2, 24),
        num_classes=st.integers(2, 8),
        vector=st.booleans(),
        zeros=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_anchor_score_is_bitwise_exact(self, seed, num_workers,
                                           num_classes, vector, zeros):
        fitness, mask, __ = _random_fitness(
            seed, num_workers, num_classes, vector, zeros
        )
        inc = fitness.incremental(mask)
        assert inc.score() == fitness.evaluate(mask[None, :])[0]

    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(2, 24),
        num_classes=st.integers(2, 8),
        vector=st.booleans(),
        zeros=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_flip_matches_full_evaluation(self, seed, num_workers,
                                                num_classes, vector, zeros):
        fitness, mask, __ = _random_fitness(
            seed, num_workers, num_classes, vector, zeros
        )
        flipped = np.tile(mask, (num_workers, 1))
        flipped[np.arange(num_workers), np.arange(num_workers)] ^= True
        full = fitness.evaluate(flipped)
        for index in range(num_workers):
            delta = fitness.delta_evaluate(mask, index)
            np.testing.assert_allclose(delta, full[index], rtol=1e-9, atol=1e-12)

    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(3, 20),
        num_classes=st.integers(2, 6),
        moves=st.integers(1, 200),
        vector=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_committed_moves_do_not_drift(self, seed, num_workers,
                                          num_classes, moves, vector):
        """Random flip sequences (crossing the resync interval) stay within
        reassociation distance of a from-scratch evaluation."""
        fitness, mask, rng = _random_fitness(seed, num_workers, num_classes,
                                             vector)
        inc = fitness.incremental(mask)
        for __ in range(moves):
            inc.flip(int(rng.integers(num_workers)))
        np.testing.assert_allclose(
            inc.score(), fitness.evaluate(inc.mask[None, :])[0],
            rtol=1e-9, atol=1e-12,
        )
        inc.resync()
        assert inc.score() == fitness.evaluate(inc.mask[None, :])[0]


class TestBatchedNeighbourhoods:
    """flip_scores / swap_scores are bitwise the scalar scans, batched."""

    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(2, 24),
        num_classes=st.integers(2, 8),
        vector=st.booleans(),
        zeros=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_flip_scores_bitwise_match_scalar_flips(self, seed, num_workers,
                                                    num_classes, vector, zeros):
        fitness, mask, __ = _random_fitness(
            seed, num_workers, num_classes, vector, zeros
        )
        inc = fitness.incremental(mask)
        batched = inc.flip_scores()
        for index in range(num_workers):
            assert batched[index] == inc.flip_score(index)

    @given(
        seed=st.integers(0, 10_000),
        num_workers=st.integers(4, 24),
        num_classes=st.integers(2, 8),
        vector=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_swap_scores_bitwise_match_scalar_swaps(self, seed, num_workers,
                                                    num_classes, vector):
        fitness, mask, __ = _random_fitness(seed, num_workers, num_classes,
                                            vector)
        mask[0], mask[1] = True, False
        inc = fitness.incremental(mask)
        remove = 0
        adds = np.flatnonzero(~mask)
        batched = inc.swap_scores(adds, remove)
        for row, add in enumerate(adds):
            assert batched[row] == inc.swap_score(int(add), remove)

    def test_swap_scores_reject_invalid_directions(self):
        fitness, mask, __ = _random_fitness(12, 6, 4)
        mask[:] = [True, False, True, False, True, False]
        inc = fitness.incremental(mask)
        with pytest.raises(SelectionError, match="swap"):
            inc.swap_scores(np.array([1, 2]), 0)  # 2 is selected
        with pytest.raises(SelectionError, match="swap"):
            inc.swap_scores(np.array([1, 3]), 5)  # 5 is not selected

    def test_flip_scores_cover_degenerate_rows(self):
        """Zero-batch selections fall back to the scalar path per row."""
        rng = new_rng(13)
        dists = rng.dirichlet([0.3] * 4, size=6)
        batch_sizes = np.array([0, 3, 0, 5, 2, 0])
        fitness = PopulationFitness(
            batch_sizes, dists, iid_distribution(dists), 1.0,
            0.5 * float(batch_sizes.sum()),
        )
        # From the empty anchor, flipping a zero-batch worker selects a
        # count-1 / size-0 set: the uniform-mean fallback row.
        inc = fitness.incremental(np.zeros(6, dtype=bool))
        batched = inc.flip_scores()
        for index in range(6):
            assert batched[index] == inc.flip_score(index)
        assert batched[0] != 1e6  # the degenerate row was actually scored


class TestSwapAndValidation:
    def test_swap_score_matches_full_evaluation(self):
        fitness, mask, __ = _random_fitness(7, 12, 5)
        mask[0], mask[1] = True, False
        inc = fitness.incremental(mask)
        swapped = mask.copy()
        swapped[1], swapped[0] = True, False
        np.testing.assert_allclose(
            inc.swap_score(1, 0), fitness.evaluate(swapped[None, :])[0],
            rtol=1e-9,
        )

    def test_swap_rejects_wrong_directions(self):
        fitness, mask, __ = _random_fitness(8, 6, 4)
        mask[:] = [True, False, True, False, True, False]
        inc = fitness.incremental(mask)
        with pytest.raises(SelectionError, match="swap"):
            inc.swap_score(0, 2)  # both selected
        with pytest.raises(SelectionError, match="swap"):
            inc.swap_score(1, 3)  # neither direction valid

    def test_mask_length_is_validated(self):
        fitness, __, ___ = _random_fitness(9, 8, 4)
        with pytest.raises(SelectionError, match="mask length"):
            fitness.incremental(np.ones(5, dtype=bool))

    def test_empty_mask_scores_the_penalty_constant(self):
        fitness, mask, __ = _random_fitness(10, 6, 4)
        mask[:] = False
        assert fitness.incremental(mask).score() == 1e6

    def test_delta_evaluate_reuses_anchor_cache(self):
        fitness, mask, __ = _random_fitness(11, 10, 5)
        fitness.delta_evaluate(mask, 0)
        anchored = fitness._incremental
        fitness.delta_evaluate(mask, 3)
        assert fitness._incremental is anchored
        other = ~mask
        fitness.delta_evaluate(other, 1)
        assert fitness._incremental is not anchored


class TestVectorBandwidth:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_vector_evaluate_bitwise_matches_scalar_fitness_helper(self, seed):
        """The vectorized evaluation with a per-worker cost vector equals
        the reference ``_fitness`` loop bit for bit."""
        problem = make_problem(num_workers=12, seed=seed, vector_bandwidth=True)
        fitness = problem.fitness()
        rng = new_rng(seed + 100)
        masks = rng.random((40, 12)) < 0.5
        vectorized = fitness.evaluate(masks)
        for row, mask in enumerate(masks):
            reference = _fitness(
                mask, problem.batch_sizes, problem.label_distributions,
                problem.target_distribution, problem.bandwidth_per_sample,
                problem.bandwidth_budget,
            )
            assert vectorized[row] == reference

    def test_constant_vector_agrees_with_scalar(self):
        """A constant cost vector is numerically the scalar path (the
        summation order differs, so equality is allclose, not bitwise)."""
        problem = make_problem(num_workers=10, seed=4)
        scalar = problem.fitness()
        vector = PopulationFitness(
            problem.batch_sizes, problem.label_distributions,
            problem.target_distribution,
            np.full(10, float(problem.bandwidth_per_sample)),
            problem.bandwidth_budget,
        )
        rng = new_rng(42)
        masks = rng.random((30, 10)) < 0.5
        np.testing.assert_allclose(
            vector.evaluate(masks), scalar.evaluate(masks), rtol=1e-12,
        )

    def test_vector_length_mismatch_rejected(self):
        problem = make_problem(num_workers=8, seed=5)
        with pytest.raises(SelectionError, match="different worker counts"):
            PopulationFitness(
                problem.batch_sizes, problem.label_distributions,
                problem.target_distribution, np.ones(5),
                problem.bandwidth_budget,
            )
