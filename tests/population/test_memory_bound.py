"""The memory contract: live worker state is bounded by the cohort."""

from __future__ import annotations

import numpy as np

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.metrics.summary import cache_hit_rate, participation_summary


def _session(num_workers=200, candidates=8, rounds=3, **overrides) -> Session:
    params = dict(
        algorithm="mergesfl",
        dataset="blobs",
        model="mlp",
        num_workers=num_workers,
        num_rounds=rounds,
        local_iterations=2,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=240,
        test_samples=64,
        seed=9,
        population="lazy",
        population_candidates=candidates,
        population_cache=8,
        extras={"population_sharding": "sampled"},
    )
    params.update(overrides)
    return Session.from_config(ExperimentConfig(**params))


def test_peak_live_bounded_by_cohort_and_released_at_round_end():
    session = _session()
    session.run()
    pool = session.algorithm.engine.pool
    stats = pool.stats()
    assert stats["registered"] == 200
    # Resident worker state never exceeds the candidate pool (which caps
    # the selectable cohort) ...
    assert 0 < stats["peak_live"] <= 8
    # ... and the cohort is fully released once the round is over.
    assert pool.live_worker_count() == 0
    assert stats["live"] == 0


def test_materializations_only_for_selected_workers():
    session = _session()
    session.run()
    pool = session.algorithm.engine.pool
    participation = participation_summary(session.history)
    assert pool.materializer.materializations == participation["total_selections"]
    assert participation["distinct_workers"] <= 8 * session.config.num_rounds


def test_cached_deltas_bounded_by_capacity():
    session = _session(num_workers=10, candidates=0, rounds=4,
                       population_cache=4)
    session.run()
    pool = session.algorithm.engine.pool
    assert pool.stats()["cached_deltas"] <= 4
    # A 10-worker population revisits workers, so the bounded cache serves
    # real hits and the summary reflects them.
    assert cache_hit_rate(session.history) > 0.0


def test_label_columns_materialise_only_touched_shards():
    session = _session(num_workers=100_000, candidates=8, rounds=2,
                       extras={"population_sharding": "sampled",
                               "auto_budget": False,
                               "population_live_devices": 256})
    session.run()
    registry = session.algorithm.engine.pool.registry
    # 100k workers / shard_size 4096 ~ 25 shards; the rounds touch at most
    # one per candidate (plus none eagerly).
    assert registry.built_label_shards <= 8 * 2


def test_plan_candidates_is_pure_in_round_index():
    session = _session()
    pool = session.algorithm.engine.pool
    first = pool.plan_candidates(5)
    second = pool.plan_candidates(5)
    other = pool.plan_candidates(6)
    assert np.array_equal(first, second)
    assert not np.array_equal(first, other)
    assert first.shape == (8,)
    assert np.array_equal(first, np.sort(first))
