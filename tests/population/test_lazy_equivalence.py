"""Lazy-vs-eager bit-exactness across algorithms, executors and schedulers.

``population="lazy"`` is a materialisation strategy, not a different
algorithm: for any config where the eager path fits in memory, the lazy
path must produce bit-identical history records and final weights.  The
only record fields allowed to differ are the observational ``cache_hits``
and ``cache_misses`` -- eager pools never touch the delta cache.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.metrics.history import WIRE_FIELDS

#: Fields that legitimately differ between lazy and eager runs: the delta
#: cache is observational (reconstruction matches the engine's install),
#: and wire traffic measures the execution topology, not the trajectory.
OBSERVATIONAL_FIELDS = {"cache_hits", "cache_misses", *WIRE_FIELDS}

#: (executor, transport, pipeline) rows the lazy path must match.
VARIANTS = (
    ("serial", "pipe", "sync"),
    ("batched", "pipe", "sync"),
    ("process", "shm", "pipelined"),
    ("serial", "pipe", "staleness"),
)


def _config(population: str, algorithm: str, **overrides) -> ExperimentConfig:
    params = dict(
        algorithm=algorithm,
        dataset="blobs",
        model="mlp",
        num_workers=5,
        num_rounds=3,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=300,
        test_samples=80,
        learning_rate=0.1,
        momentum=0.9,
        weight_decay=1e-4,
        seed=3,
        population=population,
        population_cache=8 if population == "lazy" else 0,
        extras={"executor_processes": 2},
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _run(config: ExperimentConfig):
    with Session.from_config(config) as session:
        history = session.run()
        return history.records, session.global_model().state_dict()


_REFERENCES: dict[str, tuple] = {}


def _eager_reference(algorithm: str):
    if algorithm not in _REFERENCES:
        _REFERENCES[algorithm] = _run(_config("eager", algorithm))
    return _REFERENCES[algorithm]


def _assert_bit_equal(reference, candidate, label: str) -> None:
    ref_records, ref_state = reference
    records, state = candidate
    assert len(records) == len(ref_records), label
    for ref_record, record in zip(ref_records, records):
        ref_dict = {k: v for k, v in dataclasses.asdict(ref_record).items()
                    if k not in OBSERVATIONAL_FIELDS}
        got = {k: v for k, v in dataclasses.asdict(record).items()
               if k not in OBSERVATIONAL_FIELDS}
        assert got == ref_dict, label
    assert set(state) == set(ref_state)
    for key in ref_state:
        assert np.array_equal(state[key], ref_state[key]), f"{label}: {key}"


@pytest.mark.parametrize("executor,transport,pipeline", VARIANTS,
                         ids=["/".join(v) for v in VARIANTS])
@pytest.mark.parametrize("algorithm", ["mergesfl", "splitfed", "fedavg"])
def test_lazy_matches_eager(algorithm, executor, transport, pipeline):
    reference = _eager_reference(algorithm)
    candidate = _run(_config(
        "lazy", algorithm,
        executor=executor, transport=transport, pipeline=pipeline,
    ))
    _assert_bit_equal(
        reference, candidate,
        f"{algorithm}/lazy/{executor}/{transport}/{pipeline}",
    )


def test_lazy_without_cache_matches_eager():
    reference = _eager_reference("mergesfl")
    candidate = _run(_config("lazy", "mergesfl", population_cache=0))
    _assert_bit_equal(reference, candidate, "mergesfl/lazy/no-cache")


def test_selected_ids_recorded_and_identical():
    ref_records, _ = _eager_reference("mergesfl")
    lazy_records, _ = _run(_config("lazy", "mergesfl"))
    for ref_record, record in zip(ref_records, lazy_records):
        assert record.selected_ids == ref_record.selected_ids
        assert len(record.selected_ids) == record.num_selected


def test_candidate_pool_restricts_selection_deterministically():
    """With a candidate pool the trajectory is its own (a different planning
    scope), but it must be deterministic and select within the pool."""
    config = _config("lazy", "mergesfl", num_workers=40,
                     population_candidates=8)
    records_a, state_a = _run(config)
    records_b, state_b = _run(_config("lazy", "mergesfl", num_workers=40,
                                      population_candidates=8))
    for a, b in zip(records_a, records_b):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key])
    for record in records_a:
        assert len(record.selected_ids) <= 8


def test_eager_with_candidates_is_rejected():
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError, match="population_candidates"):
        _config("eager", "mergesfl", population_candidates=8)
