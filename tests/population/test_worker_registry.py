"""Registry round-trips, shard determinism and the delta cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.partition import label_distribution, partition_dataset
from repro.population import (
    DeltaCache,
    PartitionShards,
    SampledShards,
    WorkerRegistry,
    sample_distinct,
)
from repro.utils.rng import spawned_rng


def _targets(n=200, classes=4, seed=0):
    return spawned_rng(seed, 0).integers(0, classes, size=n)


# -- sample_distinct ----------------------------------------------------------
def test_sample_distinct_is_sorted_distinct_and_in_range():
    ids = sample_distinct(spawned_rng(3, 0), population=1_000_000, count=64)
    assert ids.shape == (64,)
    assert ids.dtype == np.int64
    assert len(set(ids.tolist())) == 64
    assert np.array_equal(ids, np.sort(ids))
    assert ids.min() >= 0 and ids.max() < 1_000_000


def test_sample_distinct_is_deterministic():
    a = sample_distinct(spawned_rng(3, 7), 10_000, 32)
    b = sample_distinct(spawned_rng(3, 7), 10_000, 32)
    assert np.array_equal(a, b)


def test_sample_distinct_saturates_to_full_population():
    assert np.array_equal(sample_distinct(spawned_rng(0, 0), 5, 9), np.arange(5))
    assert np.array_equal(sample_distinct(spawned_rng(0, 0), 5, 5), np.arange(5))


# -- shard sources ------------------------------------------------------------
def test_sampled_shards_deterministic_sorted_distinct():
    source = SampledShards(train_size=500, samples_per_worker=40, seed=11)
    for worker_id in (0, 1, 999_999):
        shard = source.shard_indices(worker_id)
        again = source.shard_indices(worker_id)
        assert np.array_equal(shard, again)
        assert shard.shape == (40,)
        assert len(set(shard.tolist())) == 40
        assert np.array_equal(shard, np.sort(shard))
        assert source.num_samples(worker_id) == 40
    assert not np.array_equal(source.shard_indices(0), source.shard_indices(1))


def test_sampled_shards_clamped_to_train_size():
    source = SampledShards(train_size=10, samples_per_worker=50, seed=0)
    assert np.array_equal(source.shard_indices(3), np.arange(10))


def test_partition_shards_match_partitioner_verbatim():
    import types

    targets = _targets()
    shards = partition_dataset(types.SimpleNamespace(targets=targets),
                               num_workers=6, non_iid_level=2.0, seed=5)
    source = PartitionShards(shards)
    assert len(source) == 6
    for worker_id, shard in enumerate(shards):
        assert np.array_equal(source.shard_indices(worker_id), shard)
        assert source.num_samples(worker_id) == len(shard)


# -- registry -----------------------------------------------------------------
def _registry(num_workers=50, shard_size=8, seed=11):
    targets = _targets()
    source = SampledShards(len(targets), samples_per_worker=20, seed=seed)
    return WorkerRegistry(num_workers, 4, targets, source, shard_size=shard_size), targets


def test_registry_label_rows_match_direct_computation():
    registry, targets = _registry()
    for worker_id in (0, 7, 49):
        expected = label_distribution(
            targets, registry.shard_indices(worker_id), 4
        )
        row = registry.label_distributions(np.array([worker_id]))[0]
        assert np.array_equal(row, expected)


def test_registry_builds_label_rows_lazily():
    registry, _ = _registry(num_workers=64, shard_size=8)
    assert registry.built_label_shards == 0
    registry.label_distributions(np.array([0]))
    assert registry.built_label_shards == 1
    # A row in a far shard allocates that shard only.
    registry.label_distributions(np.array([63]))
    assert registry.built_label_shards == 2


def test_registry_full_matrix_matches_row_queries():
    registry, _ = _registry(num_workers=10)
    full = registry.label_distributions()
    rows = registry.label_distributions(np.arange(10))
    assert np.array_equal(full, rows)


def test_registry_state_roundtrip_is_sparse():
    registry, _ = _registry()
    registry.store_worker_state(3, 2, {"cursor": 7})
    registry.store_worker_state(17, 1, {"cursor": 1})
    state = registry.state_dict()
    assert set(state["participation"]) == {"3", "17"}
    fresh, _ = _registry()
    fresh.load_state_dict(state)
    assert fresh.participation_count(3) == 2
    assert fresh.participation_count(17) == 1
    assert fresh.participation_count(0) == 0
    assert fresh.loader_state(3) == {"cursor": 7}
    assert fresh.loader_state(0) is None
    assert np.array_equal(fresh.participation_counts(),
                          registry.participation_counts())


def test_registry_rejects_population_mismatch_and_bad_ids():
    registry, _ = _registry(num_workers=50)
    other, _ = _registry(num_workers=10)
    with pytest.raises(ValueError, match="50 workers"):
        other.load_state_dict(registry.state_dict())
    with pytest.raises(IndexError):
        registry.shard_indices(50)
    with pytest.raises(IndexError):
        registry.participation_count(-1)


# -- delta cache --------------------------------------------------------------
def _state(value):
    return {"w": np.full((3,), float(value)), "b": np.full((2,), float(value))}


def test_delta_cache_reconstructs_exactly():
    cache = DeltaCache(capacity=4)
    reference = _state(1.0)
    cache.put(7, _state(3.5), reference)
    rebuilt = cache.reconstruct(7, reference)
    assert rebuilt is not None
    for key, value in _state(3.5).items():
        assert np.array_equal(rebuilt[key], value)
    assert cache.reconstruct(8, reference) is None
    assert cache.take_round_counts() == (1, 1)
    assert cache.take_round_counts() == (0, 0)


def test_delta_cache_evicts_least_recently_used():
    cache = DeltaCache(capacity=2)
    reference = _state(0.0)
    cache.put(1, _state(1.0), reference)
    cache.put(2, _state(2.0), reference)
    assert cache.reconstruct(1, reference) is not None  # 1 becomes MRU
    cache.put(3, _state(3.0), reference)                # evicts 2
    assert cache.reconstruct(2, reference) is None
    assert cache.reconstruct(1, reference) is not None
    assert cache.reconstruct(3, reference) is not None
    assert len(cache) == 2


def test_delta_cache_state_roundtrip_preserves_entries_and_counters():
    cache = DeltaCache(capacity=3)
    reference = _state(1.0)
    cache.put(1, _state(2.0), reference)
    cache.put(2, _state(4.0), reference)
    cache.reconstruct(1, reference)
    cache.reconstruct(9, reference)
    fresh = DeltaCache(capacity=3)
    fresh.load_state_dict(cache.state_dict())
    assert len(fresh) == 2
    assert fresh.hits == cache.hits and fresh.misses == cache.misses
    rebuilt = fresh.reconstruct(2, reference)
    for key, value in _state(4.0).items():
        assert np.array_equal(rebuilt[key], value)


def test_delta_cache_restore_keeps_the_checkpointed_capacity(caplog):
    """The capacity-mismatch bug: a resume at a smaller configured capacity
    used to keep the new capacity but *all* checkpointed entries, so the
    restored cache held more deltas than it could ever evict consistently.
    The checkpointed capacity must win (with a warning), preserving the
    hit/miss trajectory of the original run."""
    cache = DeltaCache(capacity=4)
    reference = _state(0.0)
    for worker_id in range(4):
        cache.put(worker_id, _state(worker_id + 1.0), reference)

    shrunk = DeltaCache(capacity=2)
    with caplog.at_level("WARNING"):
        shrunk.load_state_dict(cache.state_dict())
    assert "capacity mismatch" in caplog.text
    assert shrunk.capacity == 4
    assert len(shrunk) == 4
    for worker_id in range(4):
        assert shrunk.reconstruct(worker_id, reference) is not None

    grown = DeltaCache(capacity=16)
    grown.load_state_dict(cache.state_dict())
    assert grown.capacity == 4
    grown.put(9, _state(9.0), reference)  # evicts at the restored capacity
    assert len(grown) == 4


def test_delta_cache_restore_matching_capacity_stays_silent(caplog):
    cache = DeltaCache(capacity=3)
    cache.put(1, _state(2.0), _state(0.0))
    fresh = DeltaCache(capacity=3)
    with caplog.at_level("WARNING"):
        fresh.load_state_dict(cache.state_dict())
    assert "capacity mismatch" not in caplog.text
    assert fresh.capacity == 3
