"""Checkpoint/resume of lazy populations, including a warm delta cache."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.api.session import Session
from repro.config import ExperimentConfig


def _config(**overrides) -> ExperimentConfig:
    params = dict(
        algorithm="mergesfl",
        dataset="blobs",
        model="mlp",
        num_workers=6,
        num_rounds=4,
        local_iterations=2,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=240,
        test_samples=64,
        learning_rate=0.1,
        momentum=0.9,
        seed=5,
        population="lazy",
        population_cache=8,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _assert_identical(session, reference_session) -> None:
    for record, ref_record in zip(session.history.records,
                                  reference_session.history.records):
        # Cache fields included: a correctly restored warm cache serves the
        # same hits after resume as the uninterrupted run.
        assert dataclasses.asdict(record) == dataclasses.asdict(ref_record)
    state = session.global_model().state_dict()
    reference = reference_session.global_model().state_dict()
    for key in reference:
        assert np.array_equal(state[key], reference[key]), key


def test_checkpoint_resume_with_warm_cache_is_bit_exact(tmp_path):
    reference = Session.from_config(_config())
    reference.run()
    # The small population revisits workers, so the cache is warm by round
    # 2 and the resumed half must reproduce its hits exactly.
    assert sum(r.cache_hits for r in reference.history.records) > 0

    path = tmp_path / "lazy.ckpt.json"
    session = Session.from_config(_config())
    session.run(2)
    session.save_checkpoint(path)

    resumed = Session.load_checkpoint(path)
    assert resumed.config.population == "lazy"
    resumed.run()
    _assert_identical(resumed, reference)


def test_warm_resume_at_smaller_configured_capacity_is_bit_exact(caplog):
    """Pin of the capacity-mismatch fix at the session level: restoring a
    checkpoint into a session configured with a *smaller* delta cache must
    warn, keep the checkpointed capacity, and reproduce the uninterrupted
    run's cache hits exactly."""
    reference = Session.from_config(_config())
    reference.run()
    assert sum(r.cache_hits for r in reference.history.records) > 0

    session = Session.from_config(_config())
    session.run(2)
    state = session.state_dict()

    resumed = Session.from_config(_config(population_cache=4))
    with caplog.at_level("WARNING"):
        resumed.algorithm.load_state_dict(state["algorithm"])
    assert "capacity mismatch" in caplog.text
    assert resumed.algorithm.engine.pool.cache.capacity == 8
    resumed.run()
    _assert_identical(resumed, reference)


def test_checkpoint_resume_with_candidate_pool(tmp_path):
    config = _config(num_workers=40, population_candidates=8, num_rounds=4)
    reference = Session.from_config(config)
    reference.run()

    path = tmp_path / "candidates.ckpt.json"
    session = Session.from_config(_config(num_workers=40,
                                          population_candidates=8,
                                          num_rounds=4))
    session.run(2)
    session.save_checkpoint(path)
    resumed = Session.load_checkpoint(path)
    resumed.run()
    _assert_identical(resumed, reference)


def test_checkpoint_scales_with_participants_not_population():
    """Registry checkpoints are sparse: rows exist only for participants."""
    # Sampled sharding: partitioning 240 samples over 500 workers would
    # yield empty shards.
    config = _config(num_workers=500, population_candidates=6, num_rounds=2,
                     extras={"population_sharding": "sampled"})
    session = Session.from_config(config)
    session.run()
    state = session.algorithm.engine.pool.workers_state()
    assert state["format"] == "population"
    participants = state["registry"]["participation"]
    assert 0 < len(participants) <= 2 * 6
    assert len(state["registry"]["loaders"]) == len(participants)


def test_lazy_checkpoint_rejects_eager_payload_and_vice_versa():
    import pytest

    lazy = Session.from_config(_config(num_rounds=1))
    lazy.run()
    eager = Session.from_config(_config(population="eager",
                                        population_cache=0, num_rounds=1))
    eager.run()
    lazy_state = lazy.algorithm.engine.pool.workers_state()
    eager_state = eager.algorithm.engine.pool.workers_state()
    with pytest.raises((ValueError, TypeError)):
        lazy.algorithm.engine.pool.load_workers_state(eager_state)
    with pytest.raises((ValueError, TypeError)):
        eager.algorithm.engine.pool.load_workers_state(lazy_state)
