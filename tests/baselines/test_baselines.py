"""Tests for the baseline algorithms and their policies."""

import numpy as np
import pytest

from repro.baselines.fedavg import SelectAll
from repro.baselines.policies import FixedBatchPolicy, RegulatedBatchPolicy
from repro.baselines.pyramidfl import PyramidSelection
from repro.baselines.sfl import SFLVariant
from repro.core.controller import ControlContext
from repro.exceptions import ConfigurationError
from repro.experiments.runner import build_algorithm, build_components
from repro.utils.rng import new_rng


def _context(num_workers=5, seed=0):
    rng = new_rng(seed)
    return ControlContext(
        round_index=0,
        per_sample_durations=rng.uniform(0.05, 0.5, size=num_workers),
        label_distributions=rng.dirichlet([0.5] * 4, size=num_workers),
        participation_counts=np.zeros(num_workers),
        bandwidth_budget=100.0,
        bandwidth_per_sample=1.0,
        max_batch_size=16,
        base_batch_size=8,
        rng=rng,
    )


class TestPolicies:
    def test_fixed_batch_selects_everyone_with_identical_batch(self):
        plan = FixedBatchPolicy().plan_round(_context())
        assert plan.selected == list(range(5))
        assert set(plan.batch_sizes.values()) == {8}

    def test_fixed_batch_custom_size(self):
        plan = FixedBatchPolicy(batch_size=4).plan_round(_context())
        assert set(plan.batch_sizes.values()) == {4}

    def test_regulated_batch_varies_with_speed(self):
        context = _context()
        plan = RegulatedBatchPolicy().plan_round(context)
        fastest = int(np.argmin(context.per_sample_durations))
        assert plan.batch_sizes[fastest] == 16
        assert len(set(plan.batch_sizes.values())) > 1

    def test_merge_flags(self):
        assert FixedBatchPolicy(merge_features=True).merge_features
        assert not RegulatedBatchPolicy().merge_features

    def test_splitfed_flag(self):
        policy = FixedBatchPolicy(aggregate_every_iteration=True)
        assert policy.aggregate_every_iteration


class TestFLSelection:
    def test_select_all(self):
        rng = new_rng(0)
        selected = SelectAll().select(0, np.ones(7), np.ones((7, 3)) / 3, np.zeros(7), rng)
        assert selected == list(range(7))

    def test_pyramid_selects_fraction(self):
        rng = new_rng(0)
        durations = rng.uniform(0.1, 1.0, size=10)
        dists = rng.dirichlet([0.3] * 4, size=10)
        selected = PyramidSelection(participation_fraction=0.5).select(
            0, durations, dists, np.zeros(10), rng
        )
        assert len(selected) == 5
        assert selected == sorted(selected)

    def test_pyramid_avoids_the_slowest_worker(self):
        rng = new_rng(1)
        durations = np.array([0.1, 0.1, 0.1, 0.1, 10.0])
        dists = np.tile(np.full(4, 0.25), (5, 1))
        selected = PyramidSelection(participation_fraction=0.6).select(
            0, durations, dists, np.zeros(5), rng
        )
        assert 4 not in selected

    def test_pyramid_exploration_prefers_unseen_workers(self):
        rng = new_rng(0)
        durations = np.full(6, 0.5)
        dists = np.tile(np.full(4, 0.25), (6, 1))
        counts = np.array([10.0, 10.0, 10.0, 0.0, 10.0, 10.0])
        selected = PyramidSelection(participation_fraction=0.34, exploration=1.0).select(
            0, durations, dists, counts, rng
        )
        assert 3 in selected

    def test_pyramid_invalid_fraction(self):
        with pytest.raises(ValueError):
            PyramidSelection(participation_fraction=0.0)


class TestSFLVariants:
    def test_unknown_variant_raises(self, fast_config):
        components = build_components(fast_config)
        with pytest.raises(ConfigurationError):
            SFLVariant(
                "sfl_x", fast_config, components.split, components.workers,
                components.cluster, components.data,
            )

    @pytest.mark.parametrize("variant,merges,regulates", [
        ("sfl_t", False, False),
        ("sfl_fm", True, False),
        ("sfl_br", False, True),
    ])
    def test_variant_policy_flags(self, fast_config, variant, merges, regulates):
        components = build_components(fast_config)
        algorithm = SFLVariant(
            variant, fast_config, components.split, components.workers,
            components.cluster, components.data,
        )
        assert algorithm.policy.merge_features == merges
        is_regulated = isinstance(algorithm.policy, RegulatedBatchPolicy)
        assert is_regulated == regulates


class TestEndToEndBaselines:
    @pytest.mark.parametrize("algorithm", [
        "fedavg", "pyramidfl", "splitfed", "locfedmix_sl", "adasfl",
        "sfl_t", "sfl_fm", "sfl_br", "mergesfl_no_fm", "mergesfl_no_br",
    ])
    def test_every_algorithm_trains(self, fast_config, algorithm):
        config = fast_config.replace(algorithm=algorithm, num_rounds=2)
        history = build_algorithm(build_components(config)).run()
        assert len(history) == 2
        assert history.records[-1].test_accuracy >= 0.0
        assert history.records[-1].traffic_mb > 0.0
        assert history.records[-1].sim_time > 0.0

    def test_fl_baselines_have_no_feature_traffic(self, fast_config):
        config = fast_config.replace(algorithm="fedavg", num_rounds=2)
        algorithm = build_algorithm(build_components(config))
        algorithm.run()
        breakdown = algorithm.engine.traffic.breakdown()
        assert breakdown["feature"] == 0.0
        assert breakdown["model"] > 0.0

    def test_sfl_baselines_have_feature_traffic(self, fast_config):
        config = fast_config.replace(algorithm="locfedmix_sl", num_rounds=2)
        algorithm = build_algorithm(build_components(config))
        algorithm.run()
        breakdown = algorithm.engine.traffic.breakdown()
        assert breakdown["feature"] > 0.0

    def test_batch_regulation_reduces_waiting_time(self, fast_config):
        config = fast_config.replace(num_rounds=3, num_workers=8)
        fixed = build_algorithm(build_components(config.replace(algorithm="locfedmix_sl"))).run()
        regulated = build_algorithm(build_components(config.replace(algorithm="adasfl"))).run()
        assert np.mean(regulated.waiting_times) < np.mean(fixed.waiting_times)
