"""Tests for parallel, resumable study execution.

Covers the acceptance criteria of the Study API: a parallel grid run is
bit-identical to serial ``run_experiment`` per config, and ``resume()``
after a simulated interruption (both between trials and mid-trial) skips
completed trials and finishes the rest bit-exactly.
"""

from dataclasses import asdict

import pytest

from repro.api.session import Session
from repro.exceptions import CallbackError, StudyError
from repro.experiments.runner import run_experiment
from repro.study import (
    EarlyStopping,
    JSONLLogger,
    PeriodicCheckpoint,
    Study,
    StudyRunner,
    StudyStore,
    Trial,
    run_study,
)


def _records(history):
    return [asdict(record) for record in history.records]


class _Boom(EarlyStopping):
    """Picklable always-raising callback (module level so fork workers
    resolve it when the payload crosses the process boundary)."""

    def __init__(self):
        super().__init__(target=1.0)

    def on_round_end(self, session, event):
        raise RuntimeError("boom")


@pytest.fixture
def tiny_config(fast_config):
    """Two-round variant of fast_config to keep multi-trial tests quick."""
    return fast_config.replace(num_rounds=2)


@pytest.fixture
def grid_study(tiny_config):
    """A 2x2 grid (algorithm x seed): the acceptance-criterion sweep."""
    return Study.grid("grid", tiny_config, axes={
        "algorithm": ("mergesfl", "fedavg"),
        "seed": (3, 4),
    })


class TestSerialRun:
    def test_results_match_run_experiment(self, grid_study):
        results = StudyRunner(grid_study).run()
        assert list(results) == grid_study.names()
        for trial in grid_study:
            reference = run_experiment(trial.config)
            assert _records(results[trial.name].history) == _records(reference)

    def test_result_carries_tags_and_config(self, grid_study):
        results = run_study(grid_study)
        trial = grid_study.trials[0]
        result = results[trial.name]
        assert result.tags == trial.tags
        assert result.config == trial.config.to_dict()

    def test_invalid_arguments(self, grid_study, tmp_path):
        with pytest.raises(StudyError, match="n_jobs"):
            StudyRunner(grid_study, n_jobs=0)
        with pytest.raises(StudyError, match="requires a store"):
            StudyRunner(grid_study, checkpoint_every=1)
        with pytest.raises(StudyError, match="checkpoint_every"):
            StudyRunner(grid_study, store=StudyStore(tmp_path), checkpoint_every=0)
        with pytest.raises(StudyError, match="max_trials"):
            StudyRunner(grid_study).run(max_trials=-1)
        with pytest.raises(StudyError, match="resume"):
            StudyRunner(grid_study).resume()


class TestParallelRun:
    def test_n_jobs_2_bit_identical_to_serial_run_experiment(self, grid_study):
        """Acceptance: >= 4 trials, n_jobs > 1, per-trial histories
        bit-identical to run_experiment on each config serially."""
        assert len(grid_study) >= 4
        results = StudyRunner(grid_study, n_jobs=2).run()
        assert list(results) == grid_study.names()
        for trial in grid_study:
            reference = run_experiment(trial.config)
            assert _records(results[trial.name].history) == _records(reference)

    def test_trial_failure_propagates_from_worker_process(self, tiny_config):
        study = Study.grid("bad", tiny_config, axes={"seed": (3, 4)})
        with pytest.raises(CallbackError, match="boom"):
            StudyRunner(study, n_jobs=2, callbacks=[_Boom()]).run()


class TestResume:
    def test_interrupted_sweep_resumes_bit_exactly(self, grid_study, tmp_path):
        """Acceptance: kill a parallel sweep mid-way; resume() skips the
        recorded trials and the final results equal an uninterrupted run."""
        uninterrupted = StudyRunner(grid_study, n_jobs=2).run()

        store = StudyStore(tmp_path / "results")
        interrupted = StudyRunner(grid_study, store=store, n_jobs=2)
        partial = interrupted.run(max_trials=2)
        assert len(partial) == 2

        # A fresh runner (fresh process after the kill) picks up the store.
        resumed = StudyRunner(grid_study, store=StudyStore(tmp_path / "results"),
                              n_jobs=2).resume()
        assert list(resumed) == grid_study.names()
        for name in grid_study.names():
            assert _records(resumed[name].history) == _records(
                uninterrupted[name].history
            )

    def test_completed_trials_are_not_rerun(self, grid_study, tmp_path, monkeypatch):
        store = StudyStore(tmp_path)
        StudyRunner(grid_study, store=store).run()
        import repro.study.runner as runner_module

        def explode(payload):
            raise AssertionError(f"re-ran trial {payload['trial_name']}")

        monkeypatch.setattr(runner_module, "_execute_trial", explode)
        results = StudyRunner(grid_study, store=store).resume()
        assert list(results) == grid_study.names()

    def test_mid_trial_checkpoint_resumes_bit_exactly(self, tiny_config, tmp_path):
        """A trial interrupted mid-run continues from its session
        checkpoint instead of restarting, and stays bit-exact."""
        study = Study("mid", [Trial("only", tiny_config)])
        store = StudyStore(tmp_path)
        reference = run_experiment(tiny_config)

        # Simulate the kill: one round ran and was checkpointed, then the
        # sweep died before the trial completed (nothing recorded).
        session = Session.from_config(tiny_config)
        session.step()
        path = store.checkpoint_path("mid", "only")
        path.parent.mkdir(parents=True, exist_ok=True)
        session.save_checkpoint(path)
        session.close()

        results = StudyRunner(study, store=store, checkpoint_every=1).resume()
        assert _records(results["only"].history) == _records(reference)
        # The trial completed, so its in-flight checkpoint is gone.
        assert not path.exists()

    def test_checkpoint_every_writes_and_clears(self, tiny_config, tmp_path):
        study = Study("ck", [Trial("only", tiny_config)])
        store = StudyStore(tmp_path)
        StudyRunner(study, store=store, checkpoint_every=1).run()
        assert not store.checkpoint_path("ck", "only").exists()
        assert sorted(store.completed("ck")) == ["only"]

    def test_stale_store_rejected(self, grid_study, tmp_path):
        store = StudyStore(tmp_path)
        StudyRunner(grid_study, store=store).run()
        renamed = Study("grid", [
            Trial(trial.name, trial.config.replace(num_rounds=1), trial.tags)
            for trial in grid_study
        ])
        with pytest.raises(StudyError, match="different configuration"):
            StudyRunner(renamed, store=store).run()


class TestCallbacksThroughStudies:
    def test_early_stopping_wired_into_every_trial(self, tiny_config):
        study = Study.grid("es", tiny_config.replace(num_rounds=3),
                           axes={"seed": (3, 4)})
        results = StudyRunner(
            study, callbacks=[EarlyStopping(metric="train_loss", mode="min",
                                            target=100.0)],
        ).run()
        # train_loss is trivially below the target, so every trial stops
        # after its first round -- proving per-trial wiring, including for
        # the second trial (callback state must not leak between trials).
        for result in results.values():
            assert len(result.history) == 1

    def test_periodic_checkpoint_through_parallel_study_run(
        self, tiny_config, tmp_path
    ):
        study = Study.grid("pc", tiny_config, axes={"seed": (3, 4)})
        store = StudyStore(tmp_path)
        results = StudyRunner(
            study, store=store, n_jobs=2, checkpoint_every=1
        ).run()
        assert sorted(results) == sorted(study.names())
        for trial in study:
            reference = run_experiment(trial.config)
            assert _records(results[trial.name].history) == _records(reference)

    def test_per_trial_callback_factory(self, tiny_config, tmp_path):
        study = Study.grid("fac", tiny_config, axes={"seed": (3, 4)})
        results = StudyRunner(
            study,
            callbacks=lambda trial: [JSONLLogger(tmp_path / f"{trial.name}.jsonl")],
        ).run()
        for trial in study:
            lines = (tmp_path / f"{trial.name}.jsonl").read_text().splitlines()
            assert len(lines) == len(results[trial.name].history)

    def test_mid_trial_resume_restores_callback_state(self, fast_config, tmp_path):
        """An early stopper's best/patience counters ride in the trial
        checkpoint: a mid-trial interruption must not reset them, or the
        resumed trial stops later than the uninterrupted one."""
        config = fast_config.replace(num_rounds=8)
        study = Study("es-resume", [Trial("only", config)])
        # sim_time never "improves" under min mode with a huge min_delta,
        # so the run stops after round 0 + patience stale rounds = round 2.
        stopper = EarlyStopping(metric="sim_time", mode="min", patience=2,
                                min_delta=1e9)

        uninterrupted = StudyRunner(study, callbacks=[stopper]).run()
        assert len(uninterrupted["only"].history) == 3

        # Simulate the interrupted trial exactly as _execute_trial wires
        # it (user callbacks, then the periodic checkpointer), killed
        # after round 1 with one stale round already counted.
        store = StudyStore(tmp_path)
        path = store.checkpoint_path("es-resume", "only")
        path.parent.mkdir(parents=True, exist_ok=True)
        session = Session.from_config(config)
        session.add_callback(EarlyStopping(metric="sim_time", mode="min",
                                           patience=2, min_delta=1e9))
        session.add_callback(PeriodicCheckpoint(path, every=1))
        session.run(2)
        session.close()

        resumed = StudyRunner(study, store=store, callbacks=[stopper],
                              checkpoint_every=1).resume()
        assert _records(resumed["only"].history) == _records(
            uninterrupted["only"].history
        )

    def test_mid_trial_resume_truncates_jsonl_log(self, fast_config, tmp_path):
        """Rounds logged after the last checkpoint are replayed on resume;
        the logger's checkpointed line count drops them so the log has
        exactly one line per round."""
        config = fast_config.replace(num_rounds=4)
        study = Study("log-resume", [Trial("only", config)])
        store = StudyStore(tmp_path)
        log_path = tmp_path / "records.jsonl"
        ckpt_path = store.checkpoint_path("log-resume", "only")
        ckpt_path.parent.mkdir(parents=True, exist_ok=True)

        # Interrupted run: checkpoint every 2 rounds, killed after round 3
        # -- one logged round (index 2) lies beyond the checkpoint.
        session = Session.from_config(config)
        session.add_callback(JSONLLogger(log_path))
        session.add_callback(PeriodicCheckpoint(ckpt_path, every=2))
        session.run(3)
        session.close()
        assert len(log_path.read_text().splitlines()) == 3

        resumed = StudyRunner(
            study, store=store, checkpoint_every=2,
            callbacks=lambda trial: [JSONLLogger(log_path)],
        ).resume()
        lines = log_path.read_text().splitlines()
        assert len(lines) == 4
        import json as json_module

        assert [json_module.loads(line)["round_index"] for line in lines] == [0, 1, 2, 3]
        assert len(resumed["only"].history) == 4

    def test_callback_state_mismatch_fails_loudly(self, fast_config, tmp_path):
        path = tmp_path / "ck.json"
        session = Session.from_config(fast_config)
        session.add_callback(EarlyStopping(target=2.0))
        session.step()
        session.save_checkpoint(path)
        session.close()

        from repro.api.checkpoint import load_checkpoint_payload
        from repro.exceptions import ConfigurationError
        from repro.study import Timing

        fresh = Session.from_config(fast_config)
        fresh.add_callback(Timing())
        with pytest.raises(ConfigurationError, match="same callbacks"):
            fresh.load_state_dict(load_checkpoint_payload(path))

    def test_sibling_failure_keeps_finished_trials(self, tiny_config, tmp_path):
        """One failing trial must not discard concurrently completed
        siblings: they are recorded, so resume() only re-runs the rest."""
        study = Study("salvage", [
            Trial("good-1", tiny_config),
            Trial("good-2", tiny_config.replace(seed=4)),
            Trial("bad", tiny_config.replace(seed=5)),
            Trial("good-3", tiny_config.replace(seed=6)),
        ])
        store = StudyStore(tmp_path)
        failing = StudyRunner(
            study, store=store, n_jobs=2,
            callbacks=lambda trial: [_Boom()] if trial.name == "bad" else [],
        )
        with pytest.raises(CallbackError, match="boom"):
            failing.run()
        # At least one good trial finished (before or alongside the
        # failure) and was persisted rather than thrown away.
        assert len(store.completed("salvage")) >= 1
        assert "bad" not in store.completed("salvage")

    def test_raising_callback_aborts_with_callback_error(self, tiny_config):
        study = Study("err", [Trial("only", tiny_config)])

        class Exploding(EarlyStopping):
            def on_round_end(self, session, event):
                raise RuntimeError("boom")

        with pytest.raises(CallbackError, match="on_round_end"):
            StudyRunner(study, callbacks=[Exploding(target=1.0)]).run()


class TestWorkerBudget:
    """Study-level worker budget: n_jobs x executor_processes is capped."""

    @staticmethod
    def _study(tiny_config, executor_processes):
        config = tiny_config.replace(
            executor="process",
            extras={"executor_processes": executor_processes},
        )
        return Study.grid("budget", config, axes={"seed": (3, 4, 5, 6)})

    def test_effective_n_jobs_clamps_to_the_budget(self, tiny_config, caplog):
        runner = StudyRunner(
            self._study(tiny_config, executor_processes=3),
            n_jobs=4, max_processes=8,
        )
        with caplog.at_level("WARNING", logger="repro.study.runner"):
            # Each trial = 1 worker + 3 children; two fit in a budget of 8.
            assert runner.effective_n_jobs() == 2
        assert any("clamping n_jobs" in message for message in caplog.messages)

    def test_budget_never_clamps_below_one(self, tiny_config):
        runner = StudyRunner(
            self._study(tiny_config, executor_processes=16),
            n_jobs=4, max_processes=2,
        )
        assert runner.effective_n_jobs() == 1

    def test_within_budget_is_untouched(self, tiny_config, caplog):
        runner = StudyRunner(
            self._study(tiny_config, executor_processes=2),
            n_jobs=2, max_processes=6,
        )
        with caplog.at_level("WARNING", logger="repro.study.runner"):
            assert runner.effective_n_jobs() == 2
        assert not any("clamping" in message for message in caplog.messages)

    def test_in_process_trials_cost_one_each(self, tiny_config):
        study = Study.grid("serial-budget", tiny_config, axes={"seed": (3, 4)})
        runner = StudyRunner(study, n_jobs=2, max_processes=2)
        assert runner.effective_n_jobs() == 2

    def test_no_budget_leaves_n_jobs_alone(self, tiny_config):
        runner = StudyRunner(self._study(tiny_config, 8), n_jobs=4)
        assert runner.effective_n_jobs() == 4

    def test_invalid_budget_rejected(self, tiny_config):
        with pytest.raises(StudyError, match="max_processes"):
            StudyRunner(
                self._study(tiny_config, 2), n_jobs=2, max_processes=0
            )

    def test_footprint_reads_the_executor_config(self, tiny_config):
        from repro.study import trial_process_footprint

        assert trial_process_footprint(tiny_config) == 1
        # A process-executor trial costs its worker plus its pool.
        assert trial_process_footprint(
            tiny_config.replace(
                executor="process", extras={"executor_processes": 5}
            )
        ) == 6

    def test_clamped_parallel_run_still_completes(self, tiny_config):
        """End to end: a clamped run produces the same results, just with
        fewer concurrent trial workers."""
        study = Study.grid("clamped", tiny_config, axes={"seed": (3, 4)})
        reference = {
            name: _records(result.history)
            for name, result in StudyRunner(study).run().items()
        }
        clamped = StudyRunner(study, n_jobs=2, max_processes=1).run()
        assert {
            name: _records(result.history) for name, result in clamped.items()
        } == reference
