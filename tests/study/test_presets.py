"""Paper-scale sweep presets: construction, axes and the bench hook."""

from __future__ import annotations

import pytest

from repro.exceptions import StudyError
from repro.study import PRESETS, get_preset, preset_scales, scalability_study
from repro.study.presets import PAPER_WORKER_SCALES, SMOKE_WORKER_SCALES


class TestScalabilityStudy:
    def test_paper_preset_sweeps_the_paper_axis(self):
        study = get_preset("paper-scalability")
        assert preset_scales("paper-scalability") == PAPER_WORKER_SCALES == (100, 200, 400)
        assert len(study) == 3
        for trial, scale in zip(study, PAPER_WORKER_SCALES):
            assert trial.config.num_workers == scale
            assert trial.config.algorithm == "mergesfl"
            assert trial.tags["num_workers"] == scale

    def test_noniid_preset_sets_the_level(self):
        study = get_preset("paper-scalability-noniid")
        assert all(trial.config.non_iid_level == 10.0 for trial in study)

    def test_smoke_preset_has_the_same_shape(self):
        assert preset_scales("smoke-scalability") == SMOKE_WORKER_SCALES
        smoke = get_preset("smoke-scalability")
        paper = get_preset("paper-scalability")
        assert len(smoke) == len(paper)

    def test_overrides_apply_to_every_trial(self):
        study = get_preset("paper-scalability", num_rounds=2, seed=42)
        for trial in study:
            assert trial.config.num_rounds == 2
            assert trial.config.seed == 42

    def test_num_workers_override_cannot_clobber_the_axis(self):
        study = scalability_study(scales=(10, 20), num_workers=999)
        assert [t.config.num_workers for t in study] == [10, 20]

    def test_unknown_preset_fails_loudly(self):
        with pytest.raises(StudyError, match="unknown study preset"):
            get_preset("paper-warp-speed")

    def test_registry_is_complete(self):
        assert {"paper-scalability", "paper-scalability-noniid",
                "smoke-scalability", "paper-churn",
                "smoke-churn", "paper-codec", "smoke-codec"} <= set(PRESETS)


class TestChurnStudy:
    def test_paper_preset_sweeps_the_dropout_axis(self):
        from repro.study.presets import PAPER_CHURN_RATES

        study = get_preset("paper-churn")
        assert [t.config.dropout_rate for t in study] == list(PAPER_CHURN_RATES)
        for trial in study:
            assert trial.config.elastic
            assert trial.config.over_select_factor == 1.25
            assert trial.config.rejoin_staleness_bound == 2
            assert trial.tags["dropout_rate"] == trial.config.dropout_rate

    def test_smoke_preset_runs_end_to_end(self):
        from repro.study import StudyRunner
        from repro.study.presets import churn_study

        study = churn_study(
            dataset="blobs", rates=(0.0, 0.5), num_workers=4, num_rounds=2,
            local_iterations=1, train_samples=60, test_samples=30,
            max_batch_size=8, base_batch_size=4,
        )
        histories = StudyRunner(study).histories()
        assert len(histories) == 2
        lossy = histories[study.trials[1].name]
        assert any(record.dropped_ids for record in lossy.records)


class TestCodecStudy:
    def test_paper_preset_crosses_codec_and_algorithm(self):
        from repro.study.presets import PAPER_CODEC_ALGORITHMS, PAPER_CODECS

        study = get_preset("paper-codec")
        assert len(study) == len(PAPER_CODECS) * len(PAPER_CODEC_ALGORITHMS)
        combos = {(t.config.algorithm, t.config.codec) for t in study}
        assert combos == {
            (algorithm, codec)
            for algorithm in PAPER_CODEC_ALGORITHMS
            for codec in PAPER_CODECS
        }
        for trial in study:
            # Codecs only matter across a process boundary.
            assert trial.config.executor == "process"
            assert trial.tags["codec"] == trial.config.codec

    def test_smoke_preset_runs_end_to_end(self):
        from repro.study import StudyRunner
        from repro.study.presets import codec_study

        study = codec_study(
            dataset="blobs", codecs=("none", "int8"),
            algorithms=("mergesfl",), num_workers=4, num_rounds=2,
            local_iterations=1, train_samples=60, test_samples=30,
            max_batch_size=8, base_batch_size=4,
            extras={"executor_processes": 2},
        )
        histories = StudyRunner(study).histories()
        assert len(histories) == 2
        exact = histories["algorithm=mergesfl,codec=none"]
        lossy = histories["algorithm=mergesfl,codec=int8"]
        assert all(r.compression_ratio == 1.0 for r in exact.records)
        assert all(r.compression_ratio > 1.0 for r in lossy.records)


class TestPresetExecution:
    def test_preset_study_runs_through_figure12(self):
        """A (tiny) preset-shaped study flows through the figure12 entry
        point exactly like the bench harness drives it via BENCH_PRESET."""
        from repro.experiments import figures

        study = scalability_study(
            dataset="blobs", scales=(3, 4), num_rounds=1, local_iterations=1,
            train_samples=60, test_samples=30, max_batch_size=8,
            base_batch_size=4, model_width=0.25,
        )
        result = figures.figure12_scalability(study=study)
        assert [row["num_workers"] for row in result["rows"]] == [3, 4]


class TestSplitpointStudy:
    def test_paper_preset_sweeps_the_policy_axis(self):
        from repro.study.presets import PAPER_SPLIT_POLICIES

        study = get_preset("paper-splitpoint")
        assert len(study) == len(PAPER_SPLIT_POLICIES)
        assert tuple(t.config.split_policy for t in study) == PAPER_SPLIT_POLICIES
        for trial in study:
            assert trial.tags["split_policy"] == trial.config.split_policy

    def test_smoke_preset_has_the_same_shape(self):
        from repro.study.presets import SMOKE_SPLIT_POLICIES

        study = get_preset("smoke-splitpoint")
        assert tuple(t.config.split_policy for t in study) == SMOKE_SPLIT_POLICIES
        assert study.trials[0].config.split_policy == "uniform"

    def test_split_policy_override_cannot_clobber_the_axis(self):
        from repro.study.presets import splitpoint_study

        study = splitpoint_study(policies=("uniform", "adaptive"),
                                 split_policy="profile", num_workers=4)
        assert [t.config.split_policy for t in study] == ["uniform", "adaptive"]

    def test_smoke_preset_runs_end_to_end(self):
        from repro.study import StudyRunner
        from repro.study.presets import splitpoint_study

        study = splitpoint_study(
            dataset="har", policies=("uniform", "profile"),
            num_workers=4, num_rounds=2, local_iterations=2,
            train_samples=120, test_samples=40, max_batch_size=8,
            base_batch_size=4, model_width=0.3,
        )
        histories = StudyRunner(study).histories()
        assert len(histories) == 2
        for history in histories.values():
            assert len(history.records) == 2
