"""Tests for the shipped callbacks (EarlyStopping, PeriodicCheckpoint, ...)."""

import json

import pytest

from repro.api.session import Session
from repro.exceptions import ConfigurationError
from repro.study import EarlyStopping, JSONLLogger, PeriodicCheckpoint, Timing


class TestEarlyStopping:
    def test_requires_target_or_patience(self):
        with pytest.raises(ConfigurationError, match="target and/or a patience"):
            EarlyStopping()
        with pytest.raises(ConfigurationError, match="mode"):
            EarlyStopping(target=0.5, mode="up")
        with pytest.raises(ConfigurationError, match="patience"):
            EarlyStopping(patience=0)

    def test_target_stops_run(self, fast_config):
        session = Session.from_config(fast_config)
        stopper = session.add_callback(EarlyStopping(target=0.0))
        session.run()
        # Accuracy is >= 0 from round one, so the run stops immediately.
        assert session.rounds_completed == 1
        assert stopper.stopped_round == 0

    def test_patience_stops_a_stalled_metric(self, fast_config):
        session = Session.from_config(fast_config.replace(num_rounds=6))
        # merged_kl never improves above 0 in min mode with a huge
        # min_delta, so every round after the first counts as stale.
        session.add_callback(EarlyStopping(
            metric="sim_time", mode="min", patience=2, min_delta=1e9,
        ))
        session.run()
        assert session.rounds_completed == 3  # round 0 sets best, 2 stale rounds

    def test_unknown_metric_fails_loudly(self, fast_config):
        session = Session.from_config(fast_config)
        session.add_callback(EarlyStopping(metric="f1", target=0.5))
        with pytest.raises(Exception, match="f1"):
            session.step()


class TestPeriodicCheckpoint:
    def test_every_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="every"):
            PeriodicCheckpoint(tmp_path / "ck.json", every=0)

    def test_saves_on_schedule_and_resumes(self, fast_config, tmp_path):
        path = tmp_path / "nested" / "ck.json"
        session = Session.from_config(fast_config)
        saver = session.add_callback(PeriodicCheckpoint(path, every=2))
        session.run(2)
        assert saver.saves == 1
        assert path.exists()
        resumed = Session.load_checkpoint(path)
        assert resumed.rounds_completed == 2

    def test_resumed_saves_counter_matches_uninterrupted(self, fast_config, tmp_path):
        """The checkpointed counter includes the write in progress, so a
        resumed run ends with exactly as many saves as an uninterrupted one."""
        uninterrupted = Session.from_config(fast_config)
        full = uninterrupted.add_callback(
            PeriodicCheckpoint(tmp_path / "full.json", every=1))
        uninterrupted.run()  # 3 rounds

        path = tmp_path / "ck.json"
        session = Session.from_config(fast_config)
        session.add_callback(PeriodicCheckpoint(path, every=1))
        session.run(2)  # "killed" here

        from repro.api.checkpoint import load_checkpoint_payload
        resumed = Session.from_config(fast_config)
        saver = resumed.add_callback(PeriodicCheckpoint(path, every=1))
        resumed.load_state_dict(load_checkpoint_payload(path))
        assert saver.saves == 2
        resumed.run()
        assert saver.saves == full.saves == 3

    def test_skips_off_schedule_rounds(self, fast_config, tmp_path):
        path = tmp_path / "ck.json"
        session = Session.from_config(fast_config)
        saver = session.add_callback(PeriodicCheckpoint(path, every=2))
        session.run(1)
        assert saver.saves == 0
        assert not path.exists()


class TestJSONLLogger:
    def test_appends_one_line_per_round(self, fast_config, tmp_path):
        path = tmp_path / "log" / "records.jsonl"
        session = Session.from_config(fast_config)
        session.add_callback(JSONLLogger(path))
        session.run(2)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["round_index"] for line in lines] == [0, 1]
        assert lines[0]["test_accuracy"] == session.history[0].test_accuracy


class TestTiming:
    def test_measures_each_round(self, fast_config):
        session = Session.from_config(fast_config)
        timing = session.add_callback(Timing())
        session.run(2)
        assert len(timing.durations) == 2
        assert all(duration >= 0 for duration in timing.durations)
        assert timing.total == pytest.approx(sum(timing.durations))
