"""Tests for the declarative Study/Trial descriptions."""

import pytest

from repro.exceptions import StudyError
from repro.study import Study, Trial


class TestTrial:
    def test_requires_config_instance(self, fast_config):
        with pytest.raises(StudyError, match="ExperimentConfig"):
            Trial("t", {"algorithm": "mergesfl"})

    def test_rejects_path_separators(self, fast_config):
        with pytest.raises(StudyError, match="path separator"):
            Trial("a/b", fast_config)

    def test_rejects_empty_name(self, fast_config):
        with pytest.raises(StudyError, match="non-empty"):
            Trial("", fast_config)

    def test_rejects_dot_names(self, fast_config):
        """'.' and '..' would resolve a store's study dir outside its root."""
        for name in (".", ".."):
            with pytest.raises(StudyError, match="escape"):
                Trial(name, fast_config)
            with pytest.raises(StudyError, match="escape"):
                Study(name, [Trial("a", fast_config)])


class TestStudy:
    def test_explicit_trials_keep_order(self, fast_config):
        study = Study("s", [Trial("b", fast_config), Trial("a", fast_config)])
        assert study.names() == ["b", "a"]
        assert len(study) == 2

    def test_duplicate_trial_names_rejected(self, fast_config):
        with pytest.raises(StudyError, match="twice"):
            Study("s", [Trial("a", fast_config), Trial("a", fast_config)])

    def test_empty_study_rejected(self, fast_config):
        with pytest.raises(StudyError, match="no trials"):
            Study("s", [])

    def test_trial_lookup(self, fast_config):
        study = Study("s", [Trial("a", fast_config)])
        assert study.trial("a").config == fast_config
        with pytest.raises(StudyError, match="no trial"):
            study.trial("zzz")

    def test_from_configs(self, fast_config):
        study = Study.from_configs("s", {
            "base": fast_config,
            "long": fast_config.replace(num_rounds=5),
        }, tags={"long": {"variant": "long"}})
        assert study.names() == ["base", "long"]
        assert study.trial("long").config.num_rounds == 5
        assert study.trial("long").tags == {"variant": "long"}
        assert study.trial("base").tags == {}


class TestGrid:
    def test_product_order_names_and_tags(self, fast_config):
        study = Study.grid("g", fast_config, axes={
            "algorithm": ("mergesfl", "fedavg"),
            "non_iid_level": (0.0, 10.0),
        })
        assert study.names() == [
            "algorithm=mergesfl,non_iid_level=0",
            "algorithm=mergesfl,non_iid_level=10",
            "algorithm=fedavg,non_iid_level=0",
            "algorithm=fedavg,non_iid_level=10",
        ]
        trial = study.trial("algorithm=fedavg,non_iid_level=10")
        assert trial.config.algorithm == "fedavg"
        assert trial.config.non_iid_level == 10.0
        assert trial.tags == {"algorithm": "fedavg", "non_iid_level": 10.0}

    def test_grid_leaves_base_untouched(self, fast_config):
        Study.grid("g", fast_config, axes={"num_rounds": (1, 2)})
        assert fast_config.num_rounds == 3

    def test_empty_axes_rejected(self, fast_config):
        with pytest.raises(StudyError, match="at least one axis"):
            Study.grid("g", fast_config, axes={})
        with pytest.raises(StudyError, match="no values"):
            Study.grid("g", fast_config, axes={"seed": ()})

    def test_extras_axis_goes_through_replace(self, fast_config):
        study = Study.grid("g", fast_config, axes={"mystery": (1, 2)})
        assert study.trial("mystery=2").config.extras["mystery"] == 2


class TestVariations:
    def test_named_change_sets(self, fast_config):
        study = Study.variations("v", fast_config, {
            "base": {},
            "slow": {"learning_rate": 0.01},
        })
        assert study.names() == ["base", "slow"]
        assert study.trial("base").config == fast_config
        assert study.trial("slow").config.learning_rate == 0.01
        assert study.trial("slow").tags["variation"] == "slow"

    def test_empty_variations_rejected(self, fast_config):
        with pytest.raises(StudyError, match="no variations"):
            Study.variations("v", fast_config, {})


class TestWithSeeds:
    def test_replicates_each_trial_per_seed(self, fast_config):
        study = Study("s", [Trial("a", fast_config)]).with_seeds((1, 2))
        assert study.names() == ["a,seed=1", "a,seed=2"]
        assert study.trial("a,seed=2").config.seed == 2
        assert study.trial("a,seed=2").tags["seed"] == 2

    def test_no_seeds_rejected(self, fast_config):
        with pytest.raises(StudyError, match="no seeds"):
            Study("s", [Trial("a", fast_config)]).with_seeds(())
