"""Tests for the on-disk study store."""

import json

from repro.metrics.history import History, RoundRecord
from repro.study import StudyStore, TrialResult


def _result(name: str, rounds: int = 2) -> TrialResult:
    history = History(algorithm="mergesfl")
    for index in range(rounds):
        history.append(RoundRecord(
            round_index=index, sim_time=1.0 * (index + 1), duration=1.0,
            waiting_time=0.1, traffic_mb=2.0, train_loss=1.0, test_loss=1.1,
            test_accuracy=0.5 + 0.1 * index, num_selected=4, total_batch=16,
        ))
    return TrialResult(name=name, tags={"algorithm": "mergesfl"},
                       config={"seed": 3}, history=history)


class TestTrialResult:
    def test_dict_roundtrip(self):
        result = _result("a")
        clone = TrialResult.from_dict(result.to_dict())
        assert clone.name == "a"
        assert clone.tags == result.tags
        assert clone.config == result.config
        assert clone.history.to_dict() == result.history.to_dict()


class TestStudyStore:
    def test_record_then_completed_roundtrip(self, tmp_path):
        store = StudyStore(tmp_path / "results")
        store.record("s", _result("a"))
        store.record("s", _result("b", rounds=1))
        completed = store.completed("s")
        assert sorted(completed) == ["a", "b"]
        assert len(completed["a"].history) == 2
        assert len(completed["b"].history) == 1

    def test_missing_study_is_empty(self, tmp_path):
        assert StudyStore(tmp_path).completed("nope") == {}

    def test_studies_are_isolated(self, tmp_path):
        store = StudyStore(tmp_path)
        store.record("s1", _result("a"))
        assert store.completed("s2") == {}

    def test_later_record_wins(self, tmp_path):
        store = StudyStore(tmp_path)
        store.record("s", _result("a", rounds=1))
        store.record("s", _result("a", rounds=3))
        assert len(store.completed("s")["a"].history) == 3

    def test_truncated_final_line_is_skipped(self, tmp_path):
        """The signature a kill leaves behind: a partial last append."""
        store = StudyStore(tmp_path)
        store.record("s", _result("a"))
        path = store.records_path("s")
        with path.open("a") as stream:
            stream.write(json.dumps(_result("b").to_dict())[:40])
        completed = store.completed("s")
        assert sorted(completed) == ["a"]

    def test_checkpoint_path_and_clear(self, tmp_path):
        store = StudyStore(tmp_path)
        path = store.checkpoint_path("s", "trial=1")
        assert path.name == "trial=1.ckpt.json"
        path.parent.mkdir(parents=True)
        path.write_text("{}")
        store.clear_checkpoint("s", "trial=1")
        assert not path.exists()
        store.clear_checkpoint("s", "trial=1")  # idempotent
