"""Tests for the control module (Alg. 1) and the split training engine."""

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.core.controller import ControlContext, ControlModule, RoundPlan
from repro.core.divergence import iid_distribution
from repro.core.engine import SplitTrainingEngine
from repro.core.mergesfl import MergeSFL, MergeSFLPolicy
from repro.baselines.policies import FixedBatchPolicy
from repro.experiments.runner import build_components, build_algorithm
from repro.utils.rng import new_rng


def _context(num_workers=6, num_classes=4, seed=0, budget=None):
    rng = new_rng(seed)
    durations = rng.uniform(0.05, 0.5, size=num_workers)
    dists = rng.dirichlet([0.3] * num_classes, size=num_workers)
    batch_budget = budget if budget is not None else 0.6 * num_workers * 16
    return ControlContext(
        round_index=0,
        per_sample_durations=durations,
        label_distributions=dists,
        participation_counts=np.zeros(num_workers),
        bandwidth_budget=batch_budget,
        bandwidth_per_sample=1.0,
        max_batch_size=16,
        base_batch_size=8,
        rng=rng,
    )


class TestControlModule:
    def test_plan_structure(self):
        control = ControlModule()
        plan = control.plan_round(_context())
        assert isinstance(plan, RoundPlan)
        assert plan.selected == sorted(plan.selected)
        assert set(plan.batch_sizes) == set(plan.selected)
        assert all(size >= 1 for size in plan.batch_sizes.values())

    def test_respects_bandwidth_budget(self):
        context = _context(budget=30.0)
        plan = ControlModule().plan_round(context)
        assert plan.total_batch <= 30.0 * (1 + 1e-6)

    def test_regulation_gives_fast_workers_larger_batches(self):
        context = _context()
        plan = ControlModule(enable_selection=False, enable_finetune=False).plan_round(context)
        durations = context.per_sample_durations
        fastest = int(np.argmin(durations))
        slowest = int(np.argmax(durations))
        assert plan.batch_sizes[fastest] >= plan.batch_sizes[slowest]

    def test_disable_regulation_uses_base_batch(self):
        context = _context()
        control = ControlModule(
            enable_regulation=False, enable_selection=False, enable_finetune=False
        )
        plan = control.plan_round(context)
        assert all(size == 8 for size in plan.batch_sizes.values())

    def test_disable_selection_selects_everyone(self):
        context = _context()
        plan = ControlModule(enable_selection=False, enable_finetune=False).plan_round(context)
        assert plan.selected == list(range(6))

    def test_merged_kl_reported(self):
        plan = ControlModule().plan_round(_context())
        assert plan.merged_kl >= 0.0

    def test_greedy_selection_variant(self):
        plan = ControlModule(use_greedy=True).plan_round(_context())
        assert len(plan.selected) >= 1

    def test_total_batch_property(self):
        plan = RoundPlan(selected=[0, 1], batch_sizes={0: 4, 1: 6})
        assert plan.total_batch == 10


class TestMergeSFLPolicy:
    def test_no_br_variant_uses_identical_batches(self, fast_config):
        policy = MergeSFLPolicy(fast_config, enable_regulation=False)
        plan = policy.plan_round(_context())
        sizes = set(plan.batch_sizes.values())
        assert len(sizes) == 1

    def test_no_fm_variant_disables_merging(self, fast_config):
        policy = MergeSFLPolicy(fast_config, enable_merging=False)
        assert policy.merge_features is False

    def test_default_flags(self, fast_config):
        policy = MergeSFLPolicy(fast_config)
        assert policy.merge_features is True
        assert policy.aggregate_every_iteration is False


class TestSplitTrainingEngine:
    def test_history_has_one_record_per_round(self, fast_config):
        components = build_components(fast_config)
        algorithm = build_algorithm(components)
        history = algorithm.run()
        assert len(history) == fast_config.num_rounds
        assert history.records[0].round_index == 0

    def test_clock_and_traffic_monotone(self, fast_config):
        components = build_components(fast_config)
        history = build_algorithm(components).run()
        times = history.times
        traffic = history.traffic
        assert all(a < b for a, b in zip(times, times[1:]))
        assert all(a <= b for a, b in zip(traffic, traffic[1:]))

    def test_training_improves_accuracy(self, fast_config):
        config = fast_config.replace(num_rounds=5, non_iid_level=0.0)
        history = build_algorithm(build_components(config)).run()
        assert history.accuracies[-1] > 0.5

    def test_global_model_combines_halves(self, fast_config):
        components = build_components(fast_config)
        algorithm = build_algorithm(components)
        algorithm.run()
        model = algorithm.engine.global_model()
        out = model.forward(components.data.test.data[:4])
        assert out.shape == (4, components.data.num_classes)

    def test_splitfed_aggregates_every_iteration_costs_more_traffic(self, fast_config):
        loc = build_algorithm(build_components(fast_config.replace(algorithm="locfedmix_sl"))).run()
        sf = build_algorithm(build_components(fast_config.replace(algorithm="splitfed"))).run()
        assert sf.records[-1].traffic_mb > loc.records[-1].traffic_mb

    def test_engine_rejects_empty_selection(self, fast_config):
        components = build_components(fast_config)

        class EmptyPolicy:
            merge_features = False
            aggregate_every_iteration = False

            def plan_round(self, context):
                return RoundPlan(selected=[], batch_sizes={})

        engine = SplitTrainingEngine(
            config=fast_config,
            split=components.split,
            workers=components.workers,
            cluster=components.cluster,
            data=components.data,
            policy=EmptyPolicy(),
        )
        with pytest.raises(RuntimeError):
            engine.run(1)

    def test_participation_counts_increase(self, fast_config):
        components = build_components(fast_config)
        algorithm = build_algorithm(components)
        algorithm.run()
        counts = [worker.participation_count for worker in components.workers]
        assert sum(counts) > 0


class TestMergeSFLFacade:
    def test_run_returns_history(self, fast_config):
        components = build_components(fast_config)
        mergesfl = MergeSFL(
            config=fast_config,
            split=components.split,
            workers=components.workers,
            cluster=components.cluster,
            data=components.data,
            bandwidth_budget_override=components.bandwidth_budget,
        )
        history = mergesfl.run(2)
        assert len(history) == 2
