"""ElasticController unit behaviour: over-selection, quorum, rejoin."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.core.controller import RoundPlan
from repro.core.elastic import (
    DEFAULT_REJOIN_CACHE,
    ElasticController,
    build_elastic_controller,
)


def _controller(**overrides) -> ElasticController:
    params = dict(elastic=True, seed=3)
    params.update(overrides)
    return ElasticController(ExperimentConfig(**params))


class _FakePool:
    """Planning-column stub: participation counts and a population size."""

    def __init__(self, counts):
        self._counts = np.asarray(counts, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._counts)

    def participation_counts(self, ids=None):
        if ids is None:
            return self._counts
        return self._counts[np.asarray(ids, dtype=np.int64)]


def _state(value: float) -> dict:
    return {"w": np.full(2, value, dtype=np.float64)}


REFERENCE = _state(0.0)


class TestBuild:
    def test_disabled_config_builds_nothing(self):
        assert build_elastic_controller(ExperimentConfig()) is None

    def test_enabled_config_builds_a_controller(self):
        controller = build_elastic_controller(
            ExperimentConfig(elastic=True, dropout_rate=0.25)
        )
        assert isinstance(controller, ElasticController)
        assert controller.churn.dropout_rate == 0.25

    def test_cache_capacity_follows_population_cache(self):
        assert _controller().cache.capacity == DEFAULT_REJOIN_CACHE
        assert _controller(population_cache=5).cache.capacity == 5


class TestOverSelection:
    def test_factor_one_returns_the_plan_untouched(self):
        plan = RoundPlan(selected=[0, 2], batch_sizes={0: 8, 2: 8})
        controller = _controller(over_select_factor=1.0)
        assert controller.over_select(plan, _FakePool([0] * 4), None, 8) is plan

    def test_backups_prefer_low_participation_then_low_id(self):
        plan = RoundPlan(selected=[0, 1], batch_sizes={0: 8, 1: 16})
        pool = _FakePool([5, 5, 3, 1, 3, 0])
        padded = _controller(over_select_factor=2.0).over_select(
            plan, pool, None, 8
        )
        # Two extra workers: counts 0 (id 5) then 1 (id 3).
        assert padded.selected == [0, 1, 3, 5]
        assert padded.batch_sizes == {0: 8, 1: 16, 3: 8, 5: 8}
        assert padded.info["over_selected"] == [5, 3]
        assert padded.merged_kl == plan.merged_kl

    def test_participation_tie_breaks_on_lowest_id(self):
        plan = RoundPlan(selected=[0], batch_sizes={0: 8})
        padded = _controller(over_select_factor=3.0).over_select(
            plan, _FakePool([9, 2, 2, 2]), None, 8
        )
        assert padded.info["over_selected"] == [1, 2]

    def test_backups_exhaust_at_the_population(self):
        plan = RoundPlan(selected=[0, 1, 2], batch_sizes={0: 8, 1: 8, 2: 8})
        padded = _controller(over_select_factor=4.0).over_select(
            plan, _FakePool([0] * 4), None, 8
        )
        assert padded.selected == [0, 1, 2, 3]

    def test_no_available_backup_keeps_the_plan(self):
        plan = RoundPlan(selected=[0, 1], batch_sizes={0: 8, 1: 8})
        controller = _controller(over_select_factor=2.0)
        assert controller.over_select(plan, _FakePool([0, 0]), None, 8) is plan

    def test_candidates_bound_the_backup_universe(self):
        plan = RoundPlan(selected=[4], batch_sizes={4: 8})
        padded = _controller(over_select_factor=2.0).over_select(
            plan, _FakePool([0] * 10), np.array([2, 4, 9]), 8
        )
        assert padded.selected == [2, 4]

    def test_over_select_ids_matches_the_plan_variant(self):
        controller = _controller(over_select_factor=1.5)
        pool = _FakePool([3, 0, 0, 0])
        assert controller.over_select_ids([0, 2], pool, None) == [0, 1, 2]
        # ceil(1.0 * k) == k: no padding at a neutral factor.
        neutral = _controller(over_select_factor=1.0)
        assert neutral.over_select_ids([0], _FakePool([0, 0]), None) == [0]


class TestApplyAggregate:
    def test_missing_workers_are_filtered_out(self):
        controller = _controller(dropout_rate=0.5)
        round_state = controller.begin_round(0, [0, 1, 2], np.ones(3))
        round_state.dropped = [1]
        resolved = controller.apply_aggregate(
            round_state, [0, 1, 2],
            [_state(1.0), _state(2.0), _state(3.0)], [8.0, 8.0, 8.0],
            REFERENCE,
        )
        states, weights = resolved
        assert [s["w"][0] for s in states] == [1.0, 3.0]
        assert weights == [8.0, 8.0]
        assert round_state.completed == [0, 2]
        assert round_state.effective_cohort == 2
        assert round_state.dropout_rate == pytest.approx(1 / 3)

    def test_below_quorum_yields_no_update(self):
        controller = _controller(min_cohort_fraction=0.75)
        round_state = controller.begin_round(0, [0, 1, 2, 3], np.ones(4))
        round_state.dropped = [0, 1]
        resolved = controller.apply_aggregate(
            round_state, [0, 1, 2, 3], [_state(i) for i in range(4)],
            [8.0] * 4, REFERENCE,
        )
        assert resolved is None
        assert round_state.no_update
        assert round_state.effective_cohort == 2  # completed, not aggregated

    def test_every_cohort_member_is_cached(self):
        controller = _controller(dropout_rate=0.5)
        round_state = controller.begin_round(0, [0, 1], np.ones(2))
        round_state.dropped = [1]
        controller.apply_aggregate(
            round_state, [0, 1], [_state(1.0), _state(2.0)], [8.0, 8.0],
            REFERENCE,
        )
        assert 0 in controller.cache and 1 in controller.cache

    def _drop_and_aggregate(self, controller, round_index, delay):
        """One round where worker 9 (of [8, 9]) drops with a rejoin delay."""
        round_state = controller.begin_round(round_index, [8, 9], np.ones(2))
        round_state.dropped = [9]
        round_state.churn.rejoin_delays = {9: delay}
        return controller.apply_aggregate(
            round_state, [8, 9], [_state(1.0), _state(4.0)], [8.0, 2.0],
            REFERENCE,
        )

    def _healthy_round(self, controller, round_index, ids=(8,)):
        round_state = controller.begin_round(
            round_index, list(ids), np.ones(len(ids))
        )
        round_state.dropped = []  # pin the churn draw: everyone completes
        resolved = controller.apply_aggregate(
            round_state, list(ids), [_state(1.0)] * len(ids),
            [8.0] * len(ids), REFERENCE,
        )
        return round_state, resolved

    def test_rejoin_folds_the_cached_delta_at_its_arrival_round(self):
        controller = _controller(dropout_rate=0.5, rejoin_staleness_bound=2)
        self._drop_and_aggregate(controller, 0, delay=2)
        __, early = self._healthy_round(controller, 1)
        assert len(early[0]) == 1  # not arrived yet
        round_state, resolved = self._healthy_round(controller, 2)
        states, weights = resolved
        assert round_state.rejoined == [9]
        assert round_state.effective_cohort == 2
        # Reconstructed as reference + (state - origin reference) = 4.0.
        assert states[-1]["w"][0] == pytest.approx(4.0)
        assert weights[-1] == 2.0
        assert 9 not in controller.pending

    def test_rejoin_exactly_at_the_staleness_bound_still_folds(self):
        controller = _controller(dropout_rate=0.5, rejoin_staleness_bound=3)
        self._drop_and_aggregate(controller, 0, delay=3)
        round_state, resolved = self._healthy_round(controller, 3)
        assert round_state.rejoined == [9]
        assert len(resolved[0]) == 2

    def test_rejoin_past_the_bound_is_discarded(self):
        # The update arrives at round 1, but quorum failures starve every
        # aggregate until round 4 -- staleness 4 > bound 3.
        controller = _controller(
            dropout_rate=0.5, rejoin_staleness_bound=3,
            min_cohort_fraction=1.0,
        )
        self._drop_and_aggregate(controller, 0, delay=1)
        assert 9 in controller.pending
        round_state, resolved = self._healthy_round(controller, 4)
        assert round_state.rejoined == []
        assert len(resolved[0]) == 1
        assert 9 not in controller.pending  # consumed, not retried

    def test_completion_supersedes_a_pending_rejoin(self):
        controller = _controller(dropout_rate=0.5, rejoin_staleness_bound=3)
        self._drop_and_aggregate(controller, 0, delay=2)
        # Worker 9 completes round 1 itself: the stale update is obsolete.
        round_state, __ = self._healthy_round(controller, 1, ids=(9,))
        assert 9 not in controller.pending
        later, __ = self._healthy_round(controller, 2)
        assert later.rejoined == []

    def test_evicted_delta_cannot_rejoin(self):
        controller = _controller(
            dropout_rate=0.5, rejoin_staleness_bound=3, population_cache=1,
        )
        self._drop_and_aggregate(controller, 0, delay=1)  # evicts 9's delta
        round_state, resolved = self._healthy_round(controller, 1)
        assert round_state.rejoined == []
        assert len(resolved[0]) == 1

    def test_folding_runs_once_per_round(self):
        # SplitFed aggregates every local iteration; the rejoin must fold
        # into the first aggregate only.
        controller = _controller(dropout_rate=0.5, rejoin_staleness_bound=2)
        self._drop_and_aggregate(controller, 0, delay=1)
        round_state = controller.begin_round(1, [8], np.ones(1))
        first = controller.apply_aggregate(
            round_state, [8], [_state(1.0)], [8.0], REFERENCE
        )
        second = controller.apply_aggregate(
            round_state, [8], [_state(1.0)], [8.0], REFERENCE
        )
        assert len(first[0]) == 2
        assert len(second[0]) == 1


class TestDeathsAndQuorum:
    def test_record_death_merges_and_sorts(self):
        controller = _controller()
        round_state = controller.begin_round(0, [0, 1, 2, 3], np.ones(4))
        round_state.dropped = [3]
        controller.record_death(round_state, [1, 3, 1])
        assert round_state.dropped == [1, 3]

    def test_min_cohort_never_drops_to_zero(self):
        controller = _controller(min_cohort_fraction=0.5)
        assert controller.min_cohort(1) == 1
        assert controller.min_cohort(4) == 2
        assert controller.min_cohort(5) == 3


class TestCheckpointing:
    def test_state_round_trips(self):
        controller = _controller(dropout_rate=0.5, rejoin_staleness_bound=3)
        round_state = controller.begin_round(0, [0, 1], np.ones(2))
        round_state.dropped = [1]
        round_state.churn.rejoin_delays = {1: 2}
        controller.apply_aggregate(
            round_state, [0, 1], [_state(1.0), _state(2.0)], [8.0, 4.0],
            REFERENCE,
        )
        restored = _controller(dropout_rate=0.5, rejoin_staleness_bound=3)
        restored.load_state_dict(controller.state_dict())
        assert restored.pending == controller.pending
        assert len(restored.cache) == len(controller.cache)
        rebuilt = restored.cache.reconstruct(1, REFERENCE)
        assert rebuilt["w"][0] == pytest.approx(2.0)


class TestDeviceClassRates:
    """``extras['device_dropout_rates']`` maps device classes to rates."""

    def _cluster(self, num_workers=12):
        from repro.simulation.cluster import build_cluster

        return build_cluster(num_workers, bandwidth_budget_mbps=100.0, seed=3)

    def test_rates_resolve_through_the_device_class(self):
        cluster = self._cluster()
        rates = {"jetson_tx2": 0.5, "jetson_agx": 0.1}
        controller = build_elastic_controller(
            ExperimentConfig(
                elastic=True, dropout_rate=0.02,
                extras={"device_dropout_rates": rates},
            ),
            cluster,
        )
        for worker_id in range(len(cluster.devices)):
            name = cluster[worker_id].profile.name
            expected = rates.get(name, 0.02)  # base rate for unlisted classes
            assert controller.churn.rate_of(worker_id) == expected

    def test_without_class_rates_the_scalar_stays(self):
        controller = build_elastic_controller(
            ExperimentConfig(elastic=True, dropout_rate=0.25), self._cluster()
        )
        assert controller.churn.dropout_rate == 0.25

    def test_class_rates_without_cluster_fall_back_to_scalar(self):
        controller = build_elastic_controller(
            ExperimentConfig(
                elastic=True, dropout_rate=0.25,
                extras={"device_dropout_rates": {"jetson_tx2": 0.9}},
            )
        )
        assert controller.churn.rate_of(0) == 0.25
