"""Property-based round-trip tests for feature merging / gradient dispatch.

``FeatureMerger.dispatch`` must be the exact inverse of the concatenation
performed by ``FeatureMerger.merge``: slicing the merged gradient back into
per-worker segments recovers every worker's contribution bitwise, for any
worker count, batch sizes, trailing feature shape and dtype.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.merging import FeatureMerger

scenario = st.fixed_dictionaries({
    "num_workers": st.integers(1, 6),
    "trailing": st.lists(st.integers(1, 4), min_size=0, max_size=3),
    "seed": st.integers(0, 2**31 - 1),
    "dtype": st.sampled_from([np.float64, np.float32]),
})


@settings(max_examples=60, deadline=None)
@given(scn=scenario)
def test_merge_dispatch_roundtrip(scn):
    rng = np.random.default_rng(scn["seed"])
    trailing = tuple(scn["trailing"])
    worker_ids = list(
        rng.choice(100, size=scn["num_workers"], replace=False).astype(int)
    )
    batch_sizes = rng.integers(1, 6, size=scn["num_workers"])
    features = [
        rng.normal(size=(int(batch), *trailing)).astype(scn["dtype"])
        for batch in batch_sizes
    ]
    labels = [rng.integers(0, 10, size=int(batch)) for batch in batch_sizes]

    merger = FeatureMerger()
    merged = merger.merge(worker_ids, features, labels)

    # The merged sequence is the concatenation, in worker order.
    assert merged.total_samples == int(batch_sizes.sum())
    assert np.array_equal(merged.features, np.concatenate(features, axis=0))
    assert np.array_equal(merged.labels, np.concatenate(labels, axis=0))

    # Dispatching the merged features themselves recovers every worker's
    # original upload bitwise (dispatch slices exactly as merge packed).
    segments = merger.dispatch(merged, merged.features)
    assert set(segments) == set(worker_ids)
    for worker_id, feats in zip(worker_ids, features):
        assert segments[worker_id].dtype == feats.dtype
        assert np.array_equal(segments[worker_id], feats)

    # An arbitrary gradient dispatches to segments that reassemble into the
    # merged gradient in the same order.
    gradient = rng.normal(size=merged.features.shape).astype(scn["dtype"])
    dispatched = merger.dispatch(merged, gradient)
    reassembled = np.concatenate(
        [dispatched[worker_id] for worker_id in worker_ids], axis=0
    )
    assert np.array_equal(reassembled, gradient)
