"""Tests for feature merging, gradient dispatching, workers and the server."""

import numpy as np
import pytest

from repro.core.merging import FeatureMerger
from repro.core.server import SplitServer
from repro.core.worker import SplitWorker
from repro.data.synthetic import make_blobs
from repro.exceptions import ShapeError
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import build_mlp
from repro.nn.split import split_model
from repro.utils.rng import new_rng


@pytest.fixture
def merger():
    return FeatureMerger()


class TestFeatureMerger:
    def test_merge_concatenates_in_worker_order(self, merger):
        feats = [np.ones((2, 4)), np.zeros((3, 4))]
        labels = [np.array([0, 1]), np.array([2, 2, 2])]
        merged = merger.merge([7, 9], feats, labels)
        assert merged.total_samples == 5
        assert merged.worker_ids == [7, 9]
        assert merged.segment_sizes == [2, 3]
        assert np.allclose(merged.features[:2], 1.0)
        assert np.allclose(merged.features[2:], 0.0)

    def test_dispatch_inverts_merge(self, merger):
        feats = [np.ones((2, 4)), np.zeros((3, 4))]
        labels = [np.array([0, 1]), np.array([2, 2, 2])]
        merged = merger.merge([1, 2], feats, labels)
        gradient = np.arange(20, dtype=np.float64).reshape(5, 4)
        segments = merger.dispatch(merged, gradient)
        assert np.allclose(np.concatenate([segments[1], segments[2]]), gradient)
        assert segments[1].shape == (2, 4)
        assert segments[2].shape == (3, 4)

    def test_merge_rejects_empty(self, merger):
        with pytest.raises(ShapeError):
            merger.merge([], [], [])

    def test_merge_rejects_feature_label_mismatch(self, merger):
        with pytest.raises(ShapeError):
            merger.merge([0], [np.ones((2, 4))], [np.array([1])])

    def test_merge_rejects_inconsistent_feature_shapes(self, merger):
        with pytest.raises(ShapeError):
            merger.merge(
                [0, 1], [np.ones((2, 4)), np.ones((2, 5))],
                [np.zeros(2, dtype=int), np.zeros(2, dtype=int)],
            )

    def test_dispatch_rejects_wrong_batch(self, merger):
        merged = merger.merge([0], [np.ones((2, 4))], [np.array([0, 1])])
        with pytest.raises(ShapeError):
            merger.dispatch(merged, np.ones((3, 4)))


def _worker(worker_id=0, samples=60, seed=0):
    data = make_blobs(train_samples=samples, test_samples=10, seed=seed)
    return SplitWorker(worker_id, data.train, num_classes=4, seed=seed), data


class TestSplitWorker:
    def test_label_distribution_sums_to_one(self):
        worker, __ = _worker()
        dist = worker.local_label_distribution()
        assert dist.shape == (4,)
        assert np.isclose(dist.sum(), 1.0)

    def test_forward_requires_model(self):
        worker, __ = _worker()
        with pytest.raises(RuntimeError):
            worker.forward_batch(4)

    def test_forward_backward_updates_bottom(self, tiny_mlp):
        worker, __ = _worker()
        split = split_model(tiny_mlp, 2)
        worker.receive_bottom_model(split.bottom, learning_rate=0.1)
        before = worker.bottom_state()
        features, labels = worker.forward_batch(8)
        assert features.shape[0] == 8 and labels.shape == (8,)
        worker.backward_and_step(np.ones_like(features))
        after = worker.bottom_state()
        assert any(
            not np.allclose(before[key], after[key]) for key in before
        )

    def test_backward_batch_mismatch_raises(self, tiny_mlp):
        worker, __ = _worker()
        split = split_model(tiny_mlp, 2)
        worker.receive_bottom_model(split.bottom, learning_rate=0.1)
        features, __labels = worker.forward_batch(8)
        with pytest.raises(ValueError):
            worker.backward_and_step(np.ones((4, features.shape[1])))

    def test_receive_bottom_model_is_a_copy(self, tiny_mlp):
        worker, __ = _worker()
        split = split_model(tiny_mlp, 2)
        worker.receive_bottom_model(split.bottom, learning_rate=0.1)
        worker.bottom.parameters()[0].data[:] = 0.0
        assert not np.allclose(split.bottom.parameters()[0].data, 0.0)

    def test_train_full_model_reduces_loss(self, tiny_mlp):
        worker, data = _worker(samples=200)
        loss_fn = CrossEntropyLoss()
        state = worker.train_full_model(
            tiny_mlp, loss_fn, iterations=30, batch_size=32, learning_rate=0.2
        )
        trained = tiny_mlp.clone()
        trained.load_state_dict(state)
        trained.eval()
        logits = trained.forward(data.train.data)
        accuracy = (logits.argmax(axis=1) == data.train.targets).mean()
        assert accuracy > 0.5


def _server_setup(seed=0):
    model = build_mlp(input_dim=32, num_classes=4, hidden_dims=(32, 16), seed=seed)
    split = split_model(model, 2)
    server = SplitServer(split.bottom, split.top, learning_rate=0.1)
    return server, split


class TestSplitServer:
    def test_merged_update_returns_per_worker_gradients(self):
        server, split = _server_setup()
        rng = new_rng(0)
        feats = [split.bottom.forward(rng.normal(size=(4, 32))) for __ in range(3)]
        labels = [rng.integers(0, 4, size=4) for __ in range(3)]
        loss, grads = server.update_top_merged([0, 1, 2], feats, labels)
        assert loss > 0
        assert set(grads) == {0, 1, 2}
        assert all(grads[w].shape == feats[i].shape for i, w in enumerate([0, 1, 2]))

    def test_merged_update_changes_top_parameters(self):
        server, split = _server_setup()
        before = server.top.state_dict()
        rng = new_rng(0)
        feats = [split.bottom.forward(rng.normal(size=(6, 32)))]
        server.update_top_merged([0], feats, [rng.integers(0, 4, size=6)])
        after = server.top.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_dispatched_gradients_are_rescaled_per_worker(self):
        # A worker's segment must equal the gradient of the loss averaged over
        # its own samples, independent of how many other workers merged.
        server_solo, split = _server_setup(seed=1)
        server_pair, __ = _server_setup(seed=1)
        rng = new_rng(3)
        x_a = rng.normal(size=(4, 32))
        y_a = rng.integers(0, 4, size=4)
        x_b = rng.normal(size=(8, 32))
        y_b = rng.integers(0, 4, size=8)
        feats_a = split.bottom.forward(x_a)
        feats_b = split.bottom.forward(x_b)
        __, solo = server_solo.update_top_merged([0], [feats_a], [y_a])
        __, pair = server_pair.update_top_merged([0, 1], [feats_a, feats_b], [y_a, y_b])
        assert np.allclose(solo[0], pair[0], atol=1e-9)

    def test_per_worker_update_path(self):
        server, split = _server_setup()
        rng = new_rng(0)
        feats = [split.bottom.forward(rng.normal(size=(4, 32))) for __ in range(2)]
        labels = [rng.integers(0, 4, size=4) for __ in range(2)]
        loss, grads = server.update_top_per_worker([5, 6], feats, labels)
        assert loss > 0 and set(grads) == {5, 6}

    def test_aggregate_bottoms_weighted(self):
        server, split = _server_setup()
        state_a = {k: np.zeros_like(v) for k, v in split.bottom.state_dict().items()}
        state_b = {k: np.ones_like(v) for k, v in split.bottom.state_dict().items()}
        server.aggregate_bottoms([state_a, state_b], weights=[1.0, 3.0])
        aggregated = server.global_bottom.state_dict()
        assert all(np.allclose(v, 0.75) for v in aggregated.values())

    def test_evaluate_returns_accuracy_and_loss(self):
        server, __ = _server_setup()
        data = make_blobs(train_samples=10, test_samples=40, seed=0)
        accuracy, loss = server.evaluate(data.test.data, data.test.targets)
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0

    def test_set_learning_rate(self):
        server, __ = _server_setup()
        server.set_learning_rate(0.01)
        assert server.top_optimizer.lr == 0.01
