"""Tests for KL divergence, mixed label distributions and batch regulation."""

import numpy as np
import pytest

from repro.core.batching import (
    occupied_bandwidth,
    regulate_batch_sizes,
    scale_to_bandwidth,
)
from repro.core.divergence import (
    iid_distribution,
    kl_divergence,
    mixed_label_distribution,
)


class TestKLDivergence:
    def test_zero_for_identical_distributions(self):
        phi = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(phi, phi) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different_distributions(self):
        assert kl_divergence([0.9, 0.1], [0.5, 0.5]) > 0.0

    def test_asymmetric(self):
        a, b = np.array([0.8, 0.2]), np.array([0.3, 0.7])
        assert kl_divergence(a, b) != pytest.approx(kl_divergence(b, a))

    def test_handles_zero_entries(self):
        value = kl_divergence([1.0, 0.0], [0.5, 0.5])
        assert np.isfinite(value) and value > 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.5], [1.0, 0.0, 0.0])


class TestIidAndMixedDistributions:
    def test_iid_distribution_is_mean(self):
        dists = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert np.allclose(iid_distribution(dists), [0.5, 0.5])

    def test_mixed_distribution_weights_by_batch_size(self):
        dists = np.array([[1.0, 0.0], [0.0, 1.0]])
        batch_sizes = np.array([3, 1])
        phi = mixed_label_distribution(dists, batch_sizes, [0, 1])
        assert np.allclose(phi, [0.75, 0.25])

    def test_mixed_distribution_subset_only(self):
        dists = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        phi = mixed_label_distribution(dists, np.array([4, 4, 4]), [2])
        assert np.allclose(phi, [0.5, 0.5])

    def test_empty_selection_gives_uniform(self):
        dists = np.array([[1.0, 0.0], [0.0, 1.0]])
        phi = mixed_label_distribution(dists, np.array([1, 1]), [])
        assert np.allclose(phi, 0.5)

    def test_merging_skewed_workers_approaches_iid(self):
        # Complementary one-class workers, equal batches -> exactly IID.
        dists = np.eye(4)
        phi = mixed_label_distribution(dists, np.full(4, 8), list(range(4)))
        target = iid_distribution(dists)
        assert kl_divergence(phi, target) == pytest.approx(0.0, abs=1e-9)


class TestBatchRegulation:
    def test_fastest_worker_gets_max_batch(self):
        durations = np.array([0.1, 0.2, 0.4])
        sizes = regulate_batch_sizes(durations, max_batch_size=32)
        assert sizes[0] == 32

    def test_eq9_floor_rule(self):
        durations = np.array([0.1, 0.25])
        sizes = regulate_batch_sizes(durations, max_batch_size=10)
        assert sizes[1] == int(np.floor(10 * 0.1 / 0.25))

    def test_durations_aligned_after_regulation(self):
        durations = np.array([0.05, 0.1, 0.2, 0.4])
        sizes = regulate_batch_sizes(durations, max_batch_size=64)
        per_worker_time = sizes * durations
        assert per_worker_time.max() / per_worker_time.min() < 1.5

    def test_minimum_batch_enforced(self):
        durations = np.array([0.001, 10.0])
        sizes = regulate_batch_sizes(durations, max_batch_size=16)
        assert sizes[1] >= 1

    def test_invalid_durations(self):
        with pytest.raises(ValueError):
            regulate_batch_sizes(np.array([0.0, 1.0]), 16)

    def test_empty_input(self):
        assert regulate_batch_sizes(np.array([]), 16).size == 0


class TestBandwidthScaling:
    def test_scales_up_to_fill_budget(self):
        sizes = np.array([4, 4, 4])
        scaled = scale_to_bandwidth(
            sizes, [0, 1, 2], bandwidth_per_sample=1.0,
            bandwidth_budget=24.0, max_batch_size=16,
        )
        assert scaled.sum() > sizes.sum()
        assert occupied_bandwidth(scaled, [0, 1, 2], 1.0) <= 24.0

    def test_scales_down_when_over_budget(self):
        sizes = np.array([16, 16])
        scaled = scale_to_bandwidth(
            sizes, [0, 1], bandwidth_per_sample=1.0,
            bandwidth_budget=10.0, max_batch_size=16,
        )
        assert occupied_bandwidth(scaled, [0, 1], 1.0) <= 10.0
        assert np.all(scaled >= 1)

    def test_respects_per_worker_cap(self):
        sizes = np.array([4])
        scaled = scale_to_bandwidth(
            sizes, [0], bandwidth_per_sample=1.0,
            bandwidth_budget=1000.0, max_batch_size=16,
        )
        assert scaled[0] <= 16

    def test_unselected_workers_untouched(self):
        sizes = np.array([4, 8])
        scaled = scale_to_bandwidth(
            sizes, [0], bandwidth_per_sample=1.0,
            bandwidth_budget=100.0, max_batch_size=16,
        )
        assert scaled[1] == 8

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            scale_to_bandwidth(np.array([1]), [0], 1.0, 0.0, 16)
