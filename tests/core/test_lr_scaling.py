"""Pin the learning-rate scale clip bounds and their use by the engine."""

from __future__ import annotations

import pytest

from repro.api.session import Session
from repro.core.engine import TOP_LR_SCALE_BOUNDS, WORKER_LR_SCALE_BOUNDS


def test_lr_scale_bounds_values():
    """The documented clip bounds of Section IV-B's lr scaling.

    Changing either is a training-math change: regenerate the golden
    history and record why.
    """
    assert WORKER_LR_SCALE_BOUNDS == (0.25, 4.0)
    assert TOP_LR_SCALE_BOUNDS == (0.25, 16.0)


@pytest.fixture
def engine(fast_config):
    session = Session.from_config(fast_config)
    return session.algorithm.engine


def test_worker_lr_clips_to_bounds(engine):
    base = engine.config.base_batch_size
    current = engine._current_lr
    low, high = WORKER_LR_SCALE_BOUNDS
    # Inside the bounds: plain proportional scaling.
    assert engine._scaled_lr(base) == pytest.approx(current)
    assert engine._scaled_lr(2 * base) == pytest.approx(2 * current)
    # Outside: clipped to the bounds.
    assert engine._scaled_lr(1000 * base) == pytest.approx(high * current)
    assert engine._scaled_lr(max(1, base // 1000)) == pytest.approx(low * current)


def test_top_lr_clips_to_bounds(fast_config):
    low, high = TOP_LR_SCALE_BOUNDS
    for requested, expected_scale in [(1.0, 1.0), (100.0, high), (0.001, low)]:
        config = fast_config.replace(extras={"top_lr_scale": requested})
        engine = Session.from_config(config).algorithm.engine
        plan_like = type("Plan", (), {})()
        assert engine.policy.merge_features
        assert engine._top_lr(plan_like) == pytest.approx(
            expected_scale * engine._current_lr
        )
