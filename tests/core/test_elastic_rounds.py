"""Elastic rounds end to end: neutrality, dropout, rejoin, death recovery.

The contract, in increasing strength:

* elasticity *off* is the seed behaviour (pinned by the whole existing
  suite) and *neutral* elasticity (``elastic=True`` with every knob at its
  default) is bit-exact with it -- the only difference is the
  ``completed_ids`` bookkeeping column;
* real dropout is a *different*, deterministic trajectory whose final
  accuracy stays within a pinned epsilon of the exact run (the staleness
  suite's convergence-regression pattern);
* a round losing every worker yields no model update but the session
  survives; late workers rejoin within ``rejoin_staleness_bound``;
* a dead executor process is recovered at the engine level: the round is
  re-planned with the survivors (or skipped below quorum) instead of
  failing the run -- with elasticity off it still fails loudly;
* elastic runs checkpoint/resume bit-exactly, pending rejoins included.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.metrics.summary import (
    mean_dropout_rate,
    mean_effective_cohort,
    schedule_divergence,
)

#: Pinned tolerance of the dropout convergence regression: dropout 0.3 with
#: over-selection 1.25 may cost at most this much final accuracy on the
#: seed config below.  Measured headroom on this container: 0.0.
CONVERGENCE_EPSILON = 0.05

#: Record fields that differ between an elastic-off and a *neutral* elastic
#: run by construction: neutral elasticity still logs who completed.
NEUTRAL_BOOKKEEPING = ("completed_ids",)


def _config(**overrides) -> ExperimentConfig:
    params = dict(
        algorithm="mergesfl",
        dataset="blobs",
        model="mlp",
        num_workers=5,
        num_rounds=3,
        local_iterations=3,
        non_iid_level=2.0,
        max_batch_size=16,
        base_batch_size=8,
        train_samples=300,
        test_samples=80,
        learning_rate=0.1,
        momentum=0.9,
        weight_decay=1e-4,
        seed=3,
        extras={"executor_processes": 2},
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def _lazy_config(**overrides) -> ExperimentConfig:
    """A rotating-cohort population: candidate pools make rejoins real."""
    params = dict(
        num_workers=12,
        num_rounds=6,
        population="lazy",
        population_cache=8,
        population_candidates=5,
        elastic=True,
        dropout_rate=0.4,
        over_select_factor=1.5,
        rejoin_staleness_bound=3,
    )
    params.update(overrides)
    return _config(**params)


def _run(config: ExperimentConfig):
    with Session.from_config(config) as session:
        history = session.run()
        return (
            [dataclasses.asdict(record) for record in history.records],
            session.global_model().state_dict(),
        )


def _assert_bit_equal(reference, candidate, label, ignore=()):
    # Wire-traffic fields measure the execution topology, not the training
    # trajectory, so cross-executor comparisons strip them.
    from repro.metrics.history import WIRE_FIELDS

    ignore = tuple(ignore) + WIRE_FIELDS
    ref_records, ref_state = reference
    records, state = candidate
    assert len(records) == len(ref_records), label
    for ref_record, record in zip(ref_records, records):
        stripped_ref = {k: v for k, v in ref_record.items() if k not in ignore}
        stripped = {k: v for k, v in record.items() if k not in ignore}
        assert stripped == stripped_ref, label
    assert set(state) == set(ref_state)
    for key in ref_state:
        assert np.array_equal(state[key], ref_state[key]), f"{label}: {key}"


# -- neutrality ----------------------------------------------------------------

class TestNeutralElasticity:
    @pytest.mark.parametrize("algorithm", ["mergesfl", "splitfed", "fedavg"])
    def test_neutral_knobs_are_bit_exact_serial(self, algorithm):
        reference = _run(_config(algorithm=algorithm))
        candidate = _run(_config(algorithm=algorithm, elastic=True))
        _assert_bit_equal(
            reference, candidate, f"{algorithm}/neutral-elastic",
            ignore=NEUTRAL_BOOKKEEPING,
        )

    def test_neutral_knobs_are_bit_exact_on_process_executor(self):
        reference = _run(_config(executor="process", transport="shm"))
        candidate = _run(
            _config(executor="process", transport="shm", elastic=True)
        )
        _assert_bit_equal(
            reference, candidate, "process/neutral-elastic",
            ignore=NEUTRAL_BOOKKEEPING,
        )

    def test_neutral_knobs_are_bit_exact_on_lazy_population(self):
        base = dict(
            num_workers=12, num_rounds=4, population="lazy",
            population_cache=8, population_candidates=5,
        )
        reference = _run(_config(**base))
        candidate = _run(_config(elastic=True, **base))
        _assert_bit_equal(
            reference, candidate, "lazy/neutral-elastic",
            ignore=NEUTRAL_BOOKKEEPING,
        )

    def test_neutral_records_carry_the_completed_cohort(self):
        records, __ = _run(_config(elastic=True))
        for record in records:
            assert record["completed_ids"] == record["selected_ids"]
            assert record["effective_cohort"] == record["num_selected"]
            assert record["dropped_ids"] == []
            assert record["dropout_rate"] == 0.0

    def test_elastic_off_records_effective_cohort(self):
        records, __ = _run(_config())
        for record in records:
            assert record["effective_cohort"] == record["num_selected"]
            assert record["completed_ids"] == []

    def test_elastic_knobs_require_the_elastic_flag(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="elastic=True"):
            _config(dropout_rate=0.3)


# -- lossy modes ---------------------------------------------------------------

class TestDropout:
    def test_dropout_is_deterministic(self):
        config = _config(elastic=True, dropout_rate=0.3, over_select_factor=1.25)
        _assert_bit_equal(_run(config), _run(config), "dropout-determinism")

    def test_dropout_actually_drops_and_filters_the_aggregate(self):
        records, __ = _run(
            _config(elastic=True, dropout_rate=0.4, num_rounds=4)
        )
        assert any(record["dropped_ids"] for record in records)
        for record in records:
            assert sorted(
                record["completed_ids"] + record["dropped_ids"]
            ) == record["selected_ids"]
            assert record["effective_cohort"] == len(record["completed_ids"])

    @pytest.mark.parametrize("algorithm", ["mergesfl", "fedavg"])
    def test_dropout_converges_within_epsilon(self, algorithm):
        def seed_config(**overrides):
            return _config(
                algorithm=algorithm, num_rounds=4, non_iid_level=10.0,
                train_samples=200, test_samples=100, learning_rate=0.02,
                lr_decay=0.97, seed=11, **overrides,
            )

        with Session.from_config(seed_config()) as session:
            exact = session.run()
        with Session.from_config(seed_config(
            elastic=True, dropout_rate=0.3, over_select_factor=1.25,
        )) as session:
            lossy = session.run()
        assert mean_dropout_rate(lossy) > 0.0  # churn active
        divergence = schedule_divergence(lossy, exact)
        assert divergence["final"] <= CONVERGENCE_EPSILON
        assert divergence["max"] <= 2 * CONVERGENCE_EPSILON

    def test_straggler_deadline_shortens_rounds(self):
        base, __ = _run(_config())
        capped, __ = _run(_config(elastic=True, straggler_deadline=1.1))
        assert sum(r["duration"] for r in capped) < sum(
            r["duration"] for r in base
        )
        for record in capped:
            assert record["duration"] <= max(r["duration"] for r in base)


class TestTotalDropout:
    """Every selected worker drops: no update, but the session survives."""

    @pytest.mark.parametrize("algorithm", ["mergesfl", "splitfed"])
    def test_split_round_survives_losing_everyone(self, algorithm):
        config = _config(algorithm=algorithm, elastic=True, dropout_rate=1.0,
                         num_rounds=2)
        with Session.from_config(config) as session:
            engine = session.algorithm.engine
            before = {
                key: value.copy() for key, value in
                engine.server.global_bottom.state_dict().items()
            }
            history = session.run()
            after = engine.server.global_bottom.state_dict()
        assert len(history) == 2
        for record in history.records:
            assert record.completed_ids == []
            assert record.effective_cohort == 0
            assert record.dropout_rate == 1.0
        # The bottom model never aggregated anything.
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_fl_round_survives_losing_everyone(self):
        config = _config(algorithm="fedavg", elastic=True, dropout_rate=1.0,
                         num_rounds=2)
        with Session.from_config(config) as session:
            before = session.global_model().state_dict()
            history = session.run()
            after = session.global_model().state_dict()
        assert all(r.effective_cohort == 0 for r in history.records)
        assert all(r.train_loss == 0.0 for r in history.records)
        for key in before:
            assert np.array_equal(before[key], after[key])


class TestRejoin:
    def test_missing_workers_rejoin_within_the_bound(self):
        records, __ = _run(_lazy_config())
        rejoined = [r for r in records if r["rejoined_ids"]]
        assert rejoined, "no worker ever rejoined; the scenario is vacuous"
        for record in rejoined:
            # A rejoin adds updates beyond the completed cohort.
            assert record["effective_cohort"] > len(record["completed_ids"])
            assert not set(record["rejoined_ids"]) & set(record["completed_ids"])

    def test_rejoins_require_a_positive_bound(self):
        records, __ = _run(_lazy_config(rejoin_staleness_bound=0))
        assert all(r["rejoined_ids"] == [] for r in records)

    def test_over_selection_keeps_dropped_deltas_in_the_pool_cache(self):
        """Satellite: over-selected lazy rounds cache *every* cohort
        member's delta -- dropped workers included -- so a later checkout
        of a dropped worker is still a cache hit."""
        with Session.from_config(_lazy_config(num_rounds=1)) as session:
            session.run()
            engine = session.algorithm.engine
            record = engine.history.records[0]
            assert record.dropped_ids
            for worker_id in record.dropped_ids:
                assert worker_id in engine.pool.cache

    def test_over_selection_pads_a_constrained_plan(self):
        overrides = dict(
            num_workers=8, bandwidth_budget_mbps=0.5,
            extras={"auto_budget": False},
        )
        base, __ = _run(_config(**overrides))
        padded, __ = _run(_config(
            elastic=True, over_select_factor=1.5, **overrides,
        ))
        assert all(
            p["num_selected"] > b["num_selected"]
            for p, b in zip(padded, base)
        )


# -- engine-level death recovery -----------------------------------------------

class TestDeathRecovery:
    @staticmethod
    def _kill_first_child(session) -> None:
        executor = session.algorithm.engine.executor
        child = executor._children[0]
        child.process.kill()
        child.process.join(timeout=5.0)

    def test_elastic_round_recovers_from_a_dead_child(self):
        config = _config(
            executor="process", elastic=True, min_cohort_fraction=0.2,
            num_rounds=3,
        )
        with Session.from_config(config) as session:
            session.run(1)
            self._kill_first_child(session)
            history = session.run()
        assert len(history) == 3
        recovered = history.records[1]
        assert recovered.dropped_ids, "the death was not recorded as dropout"
        assert recovered.completed_ids, "the survivors did not finish the round"
        assert set(recovered.dropped_ids) | set(recovered.completed_ids) == set(
            recovered.selected_ids
        )
        # The round after the recovery runs on a fresh pool, at full health.
        assert history.records[2].dropped_ids == []

    def test_fl_round_recovers_from_a_dead_child(self):
        config = _config(
            algorithm="fedavg", executor="process", elastic=True,
            min_cohort_fraction=0.2, num_rounds=3,
        )
        with Session.from_config(config) as session:
            session.run(1)
            self._kill_first_child(session)
            history = session.run()
        assert len(history) == 3
        assert history.records[1].dropped_ids
        assert history.records[1].completed_ids

    def test_below_quorum_death_yields_no_update_but_survives(self):
        config = _config(
            executor="process", elastic=True, min_cohort_fraction=1.0,
            num_rounds=2,
        )
        with Session.from_config(config) as session:
            session.run(1)
            self._kill_first_child(session)
            history = session.run()
        assert len(history) == 2
        assert history.records[1].effective_cohort == 0
        assert history.records[1].completed_ids == []

    def test_without_elasticity_a_dead_child_still_fails_loudly(self):
        with Session.from_config(
            _config(executor="process", num_rounds=2)
        ) as session:
            session.run(1)
            self._kill_first_child(session)
            with pytest.raises(RuntimeError, match="died"):
                session.run()


# -- checkpoint / resume -------------------------------------------------------

class TestElasticCheckpointing:
    def test_resume_mid_run_is_bit_exact_with_pending_rejoins(self, tmp_path):
        config = _lazy_config()
        path = tmp_path / "elastic.ckpt.json"
        with Session.from_config(config) as session:
            session.run(2)
            state = session.state_dict()
            assert state["algorithm"]["elastic"]["pending"], (
                "no pending rejoin at the checkpoint; the scenario is vacuous"
            )
            session.save_checkpoint(path)
        with Session.load_checkpoint(path) as resumed:
            assert resumed.config.elastic
            resumed.run()
            candidate = (
                [dataclasses.asdict(r) for r in resumed.history.records],
                resumed.global_model().state_dict(),
            )
        _assert_bit_equal(_run(config), candidate, "elastic resume")

    def test_eager_dropout_resume_is_bit_exact(self, tmp_path):
        config = _config(
            elastic=True, dropout_rate=0.3, over_select_factor=1.25,
            rejoin_staleness_bound=2, num_rounds=4,
        )
        path = tmp_path / "dropout.ckpt.json"
        with Session.from_config(config) as session:
            session.run(2)
            session.save_checkpoint(path)
        with Session.load_checkpoint(path) as resumed:
            resumed.run()
            candidate = (
                [dataclasses.asdict(r) for r in resumed.history.records],
                resumed.global_model().state_dict(),
            )
        _assert_bit_equal(_run(config), candidate, "dropout resume")


# -- metrics -------------------------------------------------------------------

class TestElasticMetrics:
    def test_summary_metrics_reflect_the_run(self):
        with Session.from_config(
            _config(elastic=True, dropout_rate=0.4, num_rounds=4)
        ) as session:
            history = session.run()
        assert 0.0 < mean_dropout_rate(history) < 1.0
        assert mean_effective_cohort(history) < 5.0

    def test_effective_cohort_falls_back_for_old_records(self):
        from repro.metrics.history import History, RoundRecord

        history = History()
        history.append(RoundRecord(
            round_index=0, sim_time=1.0, duration=1.0, waiting_time=0.0,
            traffic_mb=0.0, train_loss=0.0, test_loss=0.0, test_accuracy=0.5,
            num_selected=7, total_batch=56,
        ))
        assert mean_effective_cohort(history) == 7.0
        assert mean_dropout_rate(history) == 0.0
