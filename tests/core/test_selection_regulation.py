"""Tests for priorities, GA/greedy worker selection and batch fine-tuning."""

import numpy as np
import pytest

from repro.core.batching import occupied_bandwidth
from repro.core.divergence import iid_distribution, kl_divergence, mixed_label_distribution
from repro.core.regulation import finetune_batch_sizes
from repro.core.selection import genetic_select, greedy_select, selection_priorities
from repro.exceptions import SelectionError
from repro.utils.rng import new_rng


def _skewed_problem(num_workers=8, num_classes=4, seed=0):
    """Workers that each hold (mostly) one class."""
    rng = new_rng(seed)
    dists = np.zeros((num_workers, num_classes))
    for worker in range(num_workers):
        dists[worker, worker % num_classes] = 0.9
        dists[worker, (worker + 1) % num_classes] = 0.1
    batch_sizes = rng.integers(4, 17, size=num_workers)
    target = iid_distribution(dists)
    return dists, batch_sizes, target


class TestPriorities:
    def test_eq13_formula(self):
        counts = np.array([0.0, 1.0, 3.0])
        priorities = selection_priorities(counts)
        total = (counts + 1).sum()
        assert np.allclose(priorities, total / (counts + 1))

    def test_less_frequent_workers_have_higher_priority(self):
        priorities = selection_priorities(np.array([0.0, 5.0]))
        assert priorities[0] > priorities[1]

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            selection_priorities(np.array([-1.0]))


class TestGeneticSelect:
    def test_selects_feasible_low_kl_set(self):
        dists, batch_sizes, target = _skewed_problem()
        budget = 0.7 * batch_sizes.sum()
        result = genetic_select(
            batch_sizes, dists, target, bandwidth_per_sample=1.0,
            bandwidth_budget=budget, rng=new_rng(0),
        )
        assert result.feasible
        assert len(result.selected) >= 1
        used = occupied_bandwidth(batch_sizes, result.selected, 1.0)
        assert used <= budget * (1 + 1e-9)

    def test_beats_random_selection_on_kl(self):
        dists, batch_sizes, target = _skewed_problem(num_workers=12)
        budget = 0.5 * batch_sizes.sum()
        result = genetic_select(
            batch_sizes, dists, target, 1.0, budget, rng=new_rng(1),
            generations=20,
        )
        rng = new_rng(2)
        random_kls = []
        for __ in range(20):
            subset = rng.choice(12, size=6, replace=False)
            phi = mixed_label_distribution(dists, batch_sizes, subset)
            random_kls.append(kl_divergence(phi, target))
        assert result.kl <= np.median(random_kls)

    def test_deterministic_given_rng(self):
        dists, batch_sizes, target = _skewed_problem()
        a = genetic_select(batch_sizes, dists, target, 1.0, 40, rng=new_rng(3))
        b = genetic_select(batch_sizes, dists, target, 1.0, 40, rng=new_rng(3))
        assert np.array_equal(a.selected, b.selected)

    def test_priority_seed_prefers_rare_workers(self):
        dists, batch_sizes, target = _skewed_problem()
        priorities = np.ones(8)
        priorities[0] = 100.0  # worker 0 almost never participated
        result = genetic_select(
            batch_sizes, dists, target, 1.0, 0.8 * batch_sizes.sum(),
            priorities=priorities, rng=new_rng(0),
        )
        assert 0 in result.selected

    def test_zero_workers_raises(self):
        with pytest.raises(SelectionError):
            genetic_select(np.array([], dtype=int), np.zeros((0, 2)), np.array([0.5, 0.5]), 1.0, 10)

    def test_mismatched_inputs_raise(self):
        with pytest.raises(SelectionError):
            genetic_select(np.array([1, 2]), np.zeros((3, 2)), np.array([0.5, 0.5]), 1.0, 10)


class TestGreedySelect:
    def test_selects_at_least_one_worker(self):
        dists, batch_sizes, target = _skewed_problem()
        result = greedy_select(batch_sizes, dists, target, 1.0, batch_sizes.sum())
        assert len(result.selected) >= 1

    def test_respects_budget(self):
        dists, batch_sizes, target = _skewed_problem()
        budget = 0.4 * batch_sizes.sum()
        result = greedy_select(batch_sizes, dists, target, 1.0, budget)
        assert occupied_bandwidth(batch_sizes, result.selected, 1.0) <= budget


class TestFinetuneBatchSizes:
    def test_no_change_when_already_within_threshold(self):
        dists = np.tile(np.array([0.25, 0.25, 0.25, 0.25]), (4, 1))
        batch_sizes = np.array([8, 8, 8, 8])
        target = iid_distribution(dists)
        tuned = finetune_batch_sizes(
            batch_sizes, [0, 1, 2, 3], dists, target,
            per_sample_durations=np.full(4, 0.1),
            kl_threshold=0.05, max_batch_size=16,
        )
        assert np.array_equal(tuned, batch_sizes)

    def test_reduces_kl_below_threshold_when_possible(self):
        # Two one-class workers with unbalanced batches: rebalancing fixes KL.
        dists = np.array([[1.0, 0.0], [0.0, 1.0]])
        batch_sizes = np.array([12, 4])
        target = np.array([0.5, 0.5])
        tuned = finetune_batch_sizes(
            batch_sizes, [0, 1], dists, target,
            per_sample_durations=np.array([0.1, 0.1]),
            kl_threshold=0.01, max_batch_size=16,
        )
        phi = mixed_label_distribution(dists, tuned, [0, 1])
        assert kl_divergence(phi, target) <= 0.05

    def test_respects_bounds(self):
        dists = np.array([[1.0, 0.0], [0.0, 1.0], [0.8, 0.2]])
        batch_sizes = np.array([16, 2, 10])
        target = np.array([0.5, 0.5])
        tuned = finetune_batch_sizes(
            batch_sizes, [0, 1, 2], dists, target,
            per_sample_durations=np.array([0.1, 0.3, 0.2]),
            kl_threshold=0.02, max_batch_size=16,
        )
        assert np.all(tuned >= 1) and np.all(tuned <= 16)

    def test_returns_integers(self):
        dists = np.array([[0.7, 0.3], [0.2, 0.8]])
        tuned = finetune_batch_sizes(
            np.array([10, 10]), [0, 1], dists, np.array([0.5, 0.5]),
            per_sample_durations=np.array([0.1, 0.1]),
            kl_threshold=0.001, max_batch_size=16,
        )
        assert tuned.dtype == np.int64

    def test_empty_selection_is_noop(self):
        tuned = finetune_batch_sizes(
            np.array([4, 4]), [], np.eye(2), np.array([0.5, 0.5]),
            per_sample_durations=np.array([0.1, 0.1]),
            kl_threshold=0.01, max_batch_size=8,
        )
        assert np.array_equal(tuned, [4, 4])
