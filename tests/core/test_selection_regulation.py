"""Tests for priorities, GA/greedy worker selection and batch fine-tuning."""

import numpy as np
import pytest

from repro.core.batching import occupied_bandwidth
from repro.core.divergence import iid_distribution, kl_divergence, mixed_label_distribution
from repro.core.regulation import finetune_batch_sizes
from repro.core.selection import (
    PopulationFitness,
    _fitness,
    genetic_select,
    greedy_select,
    selection_priorities,
)
from repro.exceptions import SelectionError
from repro.utils.rng import new_rng


def _skewed_problem(num_workers=8, num_classes=4, seed=0):
    """Workers that each hold (mostly) one class."""
    rng = new_rng(seed)
    dists = np.zeros((num_workers, num_classes))
    for worker in range(num_workers):
        dists[worker, worker % num_classes] = 0.9
        dists[worker, (worker + 1) % num_classes] = 0.1
    batch_sizes = rng.integers(4, 17, size=num_workers)
    target = iid_distribution(dists)
    return dists, batch_sizes, target


class TestPriorities:
    def test_eq13_formula(self):
        counts = np.array([0.0, 1.0, 3.0])
        priorities = selection_priorities(counts)
        total = (counts + 1).sum()
        assert np.allclose(priorities, total / (counts + 1))

    def test_less_frequent_workers_have_higher_priority(self):
        priorities = selection_priorities(np.array([0.0, 5.0]))
        assert priorities[0] > priorities[1]

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            selection_priorities(np.array([-1.0]))


class TestGeneticSelect:
    def test_selects_feasible_low_kl_set(self):
        dists, batch_sizes, target = _skewed_problem()
        budget = 0.7 * batch_sizes.sum()
        result = genetic_select(
            batch_sizes, dists, target, bandwidth_per_sample=1.0,
            bandwidth_budget=budget, rng=new_rng(0),
        )
        assert result.feasible
        assert len(result.selected) >= 1
        used = occupied_bandwidth(batch_sizes, result.selected, 1.0)
        assert used <= budget * (1 + 1e-9)

    def test_beats_random_selection_on_kl(self):
        dists, batch_sizes, target = _skewed_problem(num_workers=12)
        budget = 0.5 * batch_sizes.sum()
        result = genetic_select(
            batch_sizes, dists, target, 1.0, budget, rng=new_rng(1),
            generations=20,
        )
        rng = new_rng(2)
        random_kls = []
        for __ in range(20):
            subset = rng.choice(12, size=6, replace=False)
            phi = mixed_label_distribution(dists, batch_sizes, subset)
            random_kls.append(kl_divergence(phi, target))
        assert result.kl <= np.median(random_kls)

    def test_deterministic_given_rng(self):
        dists, batch_sizes, target = _skewed_problem()
        a = genetic_select(batch_sizes, dists, target, 1.0, 40, rng=new_rng(3))
        b = genetic_select(batch_sizes, dists, target, 1.0, 40, rng=new_rng(3))
        assert np.array_equal(a.selected, b.selected)

    def test_priority_seed_prefers_rare_workers(self):
        dists, batch_sizes, target = _skewed_problem()
        priorities = np.ones(8)
        priorities[0] = 100.0  # worker 0 almost never participated
        result = genetic_select(
            batch_sizes, dists, target, 1.0, 0.8 * batch_sizes.sum(),
            priorities=priorities, rng=new_rng(0),
        )
        assert 0 in result.selected

    def test_zero_workers_raises(self):
        with pytest.raises(SelectionError):
            genetic_select(np.array([], dtype=int), np.zeros((0, 2)), np.array([0.5, 0.5]), 1.0, 10)

    def test_mismatched_inputs_raise(self):
        with pytest.raises(SelectionError):
            genetic_select(np.array([1, 2]), np.zeros((3, 2)), np.array([0.5, 0.5]), 1.0, 10)


class TestPopulationFitness:
    """The vectorized GA fitness is bit-identical to the per-mask loop."""

    def _random_problem(self, rng, num_workers, num_classes):
        batch_sizes = rng.integers(1, 33, size=num_workers)
        dists = rng.dirichlet(np.ones(num_classes), size=num_workers)
        target = rng.dirichlet(np.ones(num_classes))
        return batch_sizes, dists, target

    @pytest.mark.parametrize("num_workers,num_classes", [
        (3, 2), (8, 4), (40, 10), (150, 10), (60, 100),
    ])
    def test_bitwise_identical_to_scalar_fitness(self, num_workers, num_classes):
        rng = new_rng(17)
        batch_sizes, dists, target = self._random_problem(rng, num_workers, num_classes)
        fitness = PopulationFitness(batch_sizes, dists, target, 0.3, 40.0)
        masks = rng.random((25, num_workers)) < 0.4
        masks[0] = False                     # empty individual
        masks[1] = True                      # full fleet (budget violation)
        masks[2] = masks[3] = masks[4]       # duplicates (dedup path)
        vectorized = fitness.evaluate(masks)
        reference = np.asarray([
            _fitness(mask, np.asarray(batch_sizes, dtype=np.int64),
                     np.atleast_2d(dists), target, 0.3, 40.0)
            for mask in masks
        ])
        assert np.array_equal(vectorized, reference)

    def test_zero_batch_sizes_match_scalar_fallback(self):
        """Masks whose selected workers all have zero batch size hit the
        scalar path's uniform-mean fallback, not a NaN."""
        dists = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        batch_sizes = np.array([0, 0, 4])
        target = np.array([0.5, 0.5])
        fitness = PopulationFitness(batch_sizes, dists, target, 1.0, 10.0)
        masks = np.array([
            [True, True, False],    # selected weights sum to zero
            [True, False, True],
            [False, False, False],
        ])
        scores = fitness.evaluate(masks)
        reference = np.asarray([
            _fitness(mask, batch_sizes.astype(np.int64), dists, target, 1.0, 10.0)
            for mask in masks
        ])
        assert np.array_equal(scores, reference)
        assert np.all(np.isfinite(scores))

    def test_negative_batch_sizes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PopulationFitness(np.array([4, -1]), np.eye(2), np.array([0.5, 0.5]),
                              1.0, 10.0)

    def test_empty_population_all_penalised(self):
        rng = new_rng(5)
        batch_sizes, dists, target = self._random_problem(rng, 6, 3)
        fitness = PopulationFitness(batch_sizes, dists, target, 1.0, 30.0)
        scores = fitness.evaluate(np.zeros((4, 6), dtype=bool))
        assert np.array_equal(scores, np.full(4, 1e6))

    def test_genetic_select_identical_to_scalar_loop(self, monkeypatch):
        """Same seed, same SelectionResult, whether the population is scored
        by the vectorized evaluator or the original per-mask loop."""
        dists, batch_sizes, target = _skewed_problem(num_workers=10)
        budget = 0.6 * batch_sizes.sum()
        args = (batch_sizes, dists, target, 1.0, budget)

        vectorized = genetic_select(*args, rng=new_rng(23))

        def loop_evaluate(self, masks):
            return np.asarray([
                _fitness(mask, np.asarray(batch_sizes, dtype=np.int64),
                         np.atleast_2d(dists), target, 1.0, budget)
                for mask in np.atleast_2d(masks)
            ])

        monkeypatch.setattr(PopulationFitness, "evaluate", loop_evaluate)
        reference = genetic_select(*args, rng=new_rng(23))

        assert np.array_equal(vectorized.selected, reference.selected)
        assert vectorized.kl == reference.kl
        assert vectorized.feasible == reference.feasible


class TestGreedySelect:
    def test_selects_at_least_one_worker(self):
        dists, batch_sizes, target = _skewed_problem()
        result = greedy_select(batch_sizes, dists, target, 1.0, batch_sizes.sum())
        assert len(result.selected) >= 1

    def test_respects_budget(self):
        dists, batch_sizes, target = _skewed_problem()
        budget = 0.4 * batch_sizes.sum()
        result = greedy_select(batch_sizes, dists, target, 1.0, budget)
        assert occupied_bandwidth(batch_sizes, result.selected, 1.0) <= budget


class TestFinetuneBatchSizes:
    def test_no_change_when_already_within_threshold(self):
        dists = np.tile(np.array([0.25, 0.25, 0.25, 0.25]), (4, 1))
        batch_sizes = np.array([8, 8, 8, 8])
        target = iid_distribution(dists)
        tuned = finetune_batch_sizes(
            batch_sizes, [0, 1, 2, 3], dists, target,
            per_sample_durations=np.full(4, 0.1),
            kl_threshold=0.05, max_batch_size=16,
        )
        assert np.array_equal(tuned, batch_sizes)

    def test_reduces_kl_below_threshold_when_possible(self):
        # Two one-class workers with unbalanced batches: rebalancing fixes KL.
        dists = np.array([[1.0, 0.0], [0.0, 1.0]])
        batch_sizes = np.array([12, 4])
        target = np.array([0.5, 0.5])
        tuned = finetune_batch_sizes(
            batch_sizes, [0, 1], dists, target,
            per_sample_durations=np.array([0.1, 0.1]),
            kl_threshold=0.01, max_batch_size=16,
        )
        phi = mixed_label_distribution(dists, tuned, [0, 1])
        assert kl_divergence(phi, target) <= 0.05

    def test_respects_bounds(self):
        dists = np.array([[1.0, 0.0], [0.0, 1.0], [0.8, 0.2]])
        batch_sizes = np.array([16, 2, 10])
        target = np.array([0.5, 0.5])
        tuned = finetune_batch_sizes(
            batch_sizes, [0, 1, 2], dists, target,
            per_sample_durations=np.array([0.1, 0.3, 0.2]),
            kl_threshold=0.02, max_batch_size=16,
        )
        assert np.all(tuned >= 1) and np.all(tuned <= 16)

    def test_returns_integers(self):
        dists = np.array([[0.7, 0.3], [0.2, 0.8]])
        tuned = finetune_batch_sizes(
            np.array([10, 10]), [0, 1], dists, np.array([0.5, 0.5]),
            per_sample_durations=np.array([0.1, 0.1]),
            kl_threshold=0.001, max_batch_size=16,
        )
        assert tuned.dtype == np.int64

    def test_empty_selection_is_noop(self):
        tuned = finetune_batch_sizes(
            np.array([4, 4]), [], np.eye(2), np.array([0.5, 0.5]),
            per_sample_durations=np.array([0.1, 0.1]),
            kl_threshold=0.01, max_batch_size=8,
        )
        assert np.array_equal(tuned, [4, 4])
