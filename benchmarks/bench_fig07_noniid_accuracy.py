"""Fig. 7: time-to-accuracy of the five approaches at non-IID level p=10.

Paper: MergeSFL keeps nearly its IID convergence and final accuracy, while
the baselines lose 5.8%-26.2% accuracy.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_comparison

from benchmarks.common import bench_overrides, run_once, smoke_mode


def test_fig07_noniid_har(benchmark):
    result = run_once(
        benchmark, figures.figure7_noniid_accuracy, datasets=("har",), **bench_overrides()
    )
    print()
    print(format_comparison(result["har"]["comparison"],
                            title="Fig. 7(a): HAR analogue, non-IID p=10"))


def test_fig07_noniid_cifar10(benchmark):
    result = run_once(
        benchmark, figures.figure7_noniid_accuracy, datasets=("cifar10",), **bench_overrides()
    )
    comparison = result["cifar10"]["comparison"]
    print()
    print(format_comparison(comparison, title="Fig. 7(c): CIFAR-10 analogue, non-IID p=10"))
    # Every approach must still train (well above the 10% chance level).
    # Meaningless at smoke scale, where runs are cut to a couple of rounds.
    if not smoke_mode():
        assert all(m["best_accuracy"] > 0.2 for m in comparison.values())
