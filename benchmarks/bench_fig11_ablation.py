"""Fig. 11: ablation — MergeSFL vs MergeSFL w/o FM vs MergeSFL w/o BR.

Paper: w/o FM matches MergeSFL on IID but loses accuracy on non-IID data;
w/o BR matches on non-IID accuracy but is ~2.2x slower.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_comparison

from benchmarks.common import bench_overrides, run_once, smoke_mode


def test_fig11_ablation_cifar10(benchmark):
    result = run_once(
        benchmark, figures.figure11_ablation, dataset="cifar10", **bench_overrides()
    )
    print()
    for label in ("iid", "non_iid"):
        print(format_comparison(result[label]["comparison"],
                                title=f"Fig. 11 ({label}): MergeSFL ablation"))
        print()
    iid = result["iid"]["histories"]
    # Shape check: removing batch-size regulation slows the round clock down
    # (w/o BR uses one identical batch size, so fast workers idle).
    with_br = iid["mergesfl"].records[-1].sim_time
    without_br = iid["mergesfl_no_br"].records[-1].sim_time
    # Meaningless at smoke scale, where runs are cut to a couple of rounds.
    if not smoke_mode():
        assert with_br <= without_br * 1.05
