"""Feature-transport throughput: pickle-over-pipe vs shared-memory rings.

Round-trips feature-sized float64 payloads through one persistent child
process under both transports and reports the payload throughput.  This
isolates the transfer cost that dominates the process executor at
simulation scale: the ``shm`` transport ships the arrays through ring
buffers with only headers crossing the pipe, so its advantage grows with
payload size.

EXPERIMENTS.md records measured numbers next to the executor wall-clock
table.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.experiments.reporting import format_table

from benchmarks.common import run_once, smoke_mode

import numpy as np

from repro.parallel.transport import PipeTransport, SharedMemoryTransport


def _echo_child(connector) -> None:
    """Child loop: echo every payload back until the channel closes."""
    endpoint = connector.connect()
    try:
        while True:
            try:
                message = endpoint.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            # Encode the way back too, like the executor's feature replies.
            endpoint.send(message, klass="features")
    finally:
        endpoint.close()


def _throughput(transport, payload_shape, repeats: int,
                codec: str | None = None) -> tuple[float, float]:
    """Round-trip one echo child; return (logical MB/s, compression ratio).

    The throughput is *logical* megabytes per second -- the dense payload
    the caller handed over -- so codec rows are comparable: a codec helps
    exactly when shrinking the wire beats the encode/decode cost.  The
    ratio comes from the endpoint's own wire tally.
    """
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    endpoint, connector = transport.pair(context)
    process = context.Process(target=_echo_child, args=(connector,), daemon=True)
    process.start()
    connector.conn.close()
    payload = {worker: np.random.default_rng(worker).normal(size=payload_shape)
               for worker in range(4)}
    megabytes = sum(array.nbytes for array in payload.values()) / 1e6
    try:
        endpoint.send(payload, klass="features")  # warm-up
        endpoint.recv()
        wire_before = endpoint.bytes_on_wire
        logical_before = endpoint.logical_bytes
        start = time.perf_counter()
        for __ in range(repeats):
            endpoint.send(payload, klass="features")
            received = endpoint.recv()
        elapsed = time.perf_counter() - start
        wire = endpoint.bytes_on_wire - wire_before
        logical = endpoint.logical_bytes - logical_before
        if codec in (None, "none"):
            assert np.array_equal(received[0], payload[0])
        else:
            assert received[0].shape == payload[0].shape
        endpoint.send(None, count=False)
    finally:
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - defensive cleanup
            process.terminate()
        endpoint.close(unlink=True)
    # Payload crosses twice per round trip (up + echoed back down).
    return 2.0 * megabytes * repeats / elapsed, logical / wire


def test_transport_throughput(benchmark):
    repeats = 5 if smoke_mode() else 50
    # Feature-sized (16 samples x 13ch x 4x4) and batch-sized (16 x 3x32x32)
    # payloads, four workers each -- the shapes the process executor ships.
    shapes = [(16, 13, 4, 4), (16, 3, 32, 32)]

    def run() -> dict:
        results = {}
        for shape in shapes:
            for transport in (PipeTransport(), SharedMemoryTransport()):
                results[(transport.name, shape)], __ = _throughput(
                    transport, shape, repeats
                )
        return results

    results = run_once(benchmark, run)
    rows = []
    for shape in shapes:
        pipe_mbs = results[("pipe", shape)]
        shm_mbs = results[("shm", shape)]
        rows.append([
            "x".join(map(str, shape)),
            f"{pipe_mbs:.0f}",
            f"{shm_mbs:.0f}",
            f"{shm_mbs / pipe_mbs:.2f}x",
        ])
    print()
    print(format_table(
        ["payload (float64)", "pipe MB/s", "shm MB/s", "shm speedup"], rows,
        title="transport round-trip throughput, 4 workers/message",
    ))
    assert all(value > 0 for value in results.values())


def test_codec_wire_compression(benchmark):
    """Codec matrix over one feature-sized payload: logical throughput and
    logical-bytes-per-wire-byte, read off the endpoint's own tally."""
    from repro.api.registry import CODECS
    from repro.parallel.codec import CodecPolicy

    repeats = 5 if smoke_mode() else 50
    shape = (16, 3, 32, 32)
    codecs = ("none", "fp16", "bf16", "int8", "topk")

    def run() -> dict:
        results = {}
        for name in codecs:
            policy = (None if name == "none"
                      else CodecPolicy({"features": CODECS.get(name)()}))
            results[name] = _throughput(
                SharedMemoryTransport(codec=policy), shape, repeats, codec=name
            )
        return results

    results = run_once(benchmark, run)
    print()
    print(format_table(
        ["codec", "logical MB/s", "logical/wire"],
        [[name, f"{mbs:.0f}", f"{ratio:.2f}x"]
         for name, (mbs, ratio) in results.items()],
        title=f"shm transport, {'x'.join(map(str, shape))} float64 features",
    ))
    assert results["none"][1] == 1.0
    assert results["fp16"][1] >= 3.9   # 16 of 64 bits, ~4x
    assert results["int8"][1] >= 2.0   # acceptance floor; ~8x measured
    assert results["topk"][1] >= 2.0   # ~12 bytes kept per 80 dropped
