"""Fig. 10: final accuracy versus the non-IID level p.

Paper: accuracy of every approach decreases as p grows; MergeSFL stays on
top across all levels.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_table

from benchmarks.common import BENCH_OVERRIDES, SMOKE_MODE, run_once


def test_fig10_noniid_levels_cifar10(benchmark):
    result = run_once(
        benchmark, figures.figure10_noniid_levels,
        dataset="cifar10", levels=(0.0, 10.0),
        approaches=("mergesfl", "adasfl", "locfedmix_sl", "fedavg"),
        **BENCH_OVERRIDES,
    )
    rows = [
        [row["non_iid_level"], row["approach"], row["final_accuracy"], row["best_accuracy"]]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["non_iid_p", "approach", "final_acc", "best_acc"], rows,
        title="Fig. 10: accuracy vs non-IID level (CIFAR-10 analogue)",
    ))
    # Every approach trains above chance at every level.
    # Meaningless at smoke scale, where runs are cut to a couple of rounds.
    if not SMOKE_MODE:
        assert all(row["best_accuracy"] > 0.2 for row in result["rows"])
