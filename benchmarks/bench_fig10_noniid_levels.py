"""Fig. 10: final accuracy versus the non-IID level p.

Paper: accuracy of every approach decreases as p grows; MergeSFL stays on
top across all levels.

Runs as a :mod:`repro.study` grid (levels x approaches) so the whole figure
is one sweep; set ``BENCH_N_JOBS`` to execute the trials in parallel
worker processes (bit-exact either way).
"""

from repro.experiments.reporting import format_table
from repro.metrics.summary import best_accuracy, final_accuracy

from benchmarks.common import bench_study, run_bench_study, run_once, smoke_mode

LEVELS = (0.0, 10.0)
APPROACHES = ("mergesfl", "adasfl", "locfedmix_sl", "fedavg")


def test_fig10_noniid_levels_cifar10(benchmark):
    study = bench_study(
        "bench-fig10-noniid-levels", dataset="cifar10",
        axes={"non_iid_level": LEVELS, "algorithm": APPROACHES},
    )
    histories = run_once(benchmark, run_bench_study, study)
    rows = [
        [trial.tags["non_iid_level"], trial.tags["algorithm"],
         final_accuracy(histories[trial.name]), best_accuracy(histories[trial.name])]
        for trial in study
    ]
    print()
    print(format_table(
        ["non_iid_p", "approach", "final_acc", "best_acc"], rows,
        title="Fig. 10: accuracy vs non-IID level (CIFAR-10 analogue)",
    ))
    # Every approach trains above chance at every level.
    # Meaningless at smoke scale, where runs are cut to a couple of rounds.
    if not smoke_mode():
        assert all(best_accuracy(history) > 0.2 for history in histories.values())
