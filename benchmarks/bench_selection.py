"""Selection-solver quality vs wall-clock at fleet-scale candidate pools.

A multi-round selection sequence (drifting batch sizes, Eq. 13 priorities
fed back from each solver's own selections) is replayed at 100-, 400- and
1000-worker candidate pools for every production solver in
:data:`repro.api.registry.SELECTION_SOLVERS`.  Reported per (scale, solver):
mean KL of the selected mixtures, total solve wall-clock and feasibility.

Two properties are asserted, not just reported:

* at the 400-worker scale, ``ga-warm`` and ``local-search`` each reach a
  mean KL <= the cold GA's in materially less solve time -- the point of
  warm starts and the incremental fitness;
* on tiny instances (N <= 12) every solver's penalised fitness is bounded
  below by the ``exact`` brute-force oracle, and at least one heuristic
  finds the optimum.

``BENCH_SMOKE`` shrinks the scales and rounds and drops the timing/quality
assertions (meaningless at toy sizes); the oracle bound always holds.
"""

import time

import numpy as np

from repro.core.divergence import iid_distribution
from repro.core.selection import selection_priorities
from repro.experiments.reporting import format_table
from repro.selection.solvers import SELECTION_SOLVERS, SelectionProblem
from repro.utils.rng import new_rng

from benchmarks.common import run_once, smoke_mode

#: Production solvers under comparison ("exact" appears only as the oracle).
SOLVERS = ("ga", "ga-warm", "local-search", "greedy")

SEED = 11
#: The scale the ISSUE-level assertions run at.
ASSERT_SCALE = 400


def _scales() -> tuple[int, ...]:
    return (24, 48) if smoke_mode() else (100, 400, 1000)


def _rounds() -> int:
    return 2 if smoke_mode() else 4


def _problem(dists: np.ndarray, base: np.ndarray, counts: np.ndarray,
             round_index: int) -> SelectionProblem:
    """One round's instance: batch sizes drift, priorities follow Eq. 13."""
    num_workers = base.shape[0]
    round_rng = new_rng(SEED + 100 + round_index)
    batch = np.clip(
        base + round_rng.integers(-2, 3, size=num_workers), 1, None
    )
    return SelectionProblem(
        batch_sizes=batch,
        label_distributions=dists,
        target_distribution=iid_distribution(dists),
        bandwidth_per_sample=1.0,
        bandwidth_budget=0.4 * float(batch.sum()),
        priorities=selection_priorities(counts),
        rng=new_rng(SEED + 200 + round_index),
    )


def _run_solver(name: str, num_workers: int) -> tuple[float, float, float]:
    """(mean KL, total solve seconds, feasible fraction) over the sequence.

    Each solver replays the same drifting population; priorities evolve
    from its *own* selections, as they would in a live run, so stateful
    warm starts see realistic round-to-round overlap.  Feasibility is
    reported, not asserted: the GA's bandwidth constraint is a penalty
    (Eq. 10 relaxed), so a cold GA can legitimately land slightly over
    budget on a hard instance.
    """
    rng = new_rng(SEED)
    dists = rng.dirichlet([0.2] * 10, size=num_workers)
    base = rng.integers(4, 17, size=num_workers)
    counts = np.zeros(num_workers)
    solver = SELECTION_SOLVERS.get(name)()
    total_kl, elapsed, feasible = 0.0, 0.0, 0
    rounds = _rounds()
    for round_index in range(rounds):
        problem = _problem(dists, base, counts, round_index)
        start = time.perf_counter()
        result = solver.solve(problem)
        elapsed += time.perf_counter() - start
        total_kl += result.kl
        feasible += int(result.feasible)
        counts[result.selected] += 1
    return total_kl / rounds, elapsed, feasible / rounds


def _sweep() -> dict[int, dict[str, tuple[float, float, bool]]]:
    return {
        scale: {name: _run_solver(name, scale) for name in SOLVERS}
        for scale in _scales()
    }


def test_selection_quality_vs_time(benchmark):
    results = run_once(benchmark, _sweep)
    rows = [
        [scale, name, kl, elapsed * 1e3, feasible]
        for scale, by_solver in results.items()
        for name, (kl, elapsed, feasible) in by_solver.items()
    ]
    print()
    print(format_table(
        ["workers", "solver", "mean_kl", "solve_ms", "feasible_frac"], rows,
        title="Selection solvers: quality vs wall-clock",
    ))
    for scale, by_solver in results.items():
        for name, (kl, __, feasible) in by_solver.items():
            assert np.isfinite(kl), f"{name}@{scale}"
            # The GA treats the budget as a penalty, so a cold GA may land
            # over budget on large pools (visible in the table -- part of
            # the story this bench tells).  The constructive solvers build
            # within budget and must stay feasible.
            if name in ("greedy", "local-search"):
                assert feasible == 1.0, f"{name}@{scale} went over budget"
    if smoke_mode():
        return
    cold_kl, cold_time, __ = results[ASSERT_SCALE]["ga"]
    for challenger in ("ga-warm", "local-search"):
        kl, elapsed, __ = results[ASSERT_SCALE][challenger]
        assert kl <= cold_kl, (
            f"{challenger} mean KL {kl:.6f} exceeds cold GA's {cold_kl:.6f} "
            f"at {ASSERT_SCALE} workers"
        )
        assert elapsed < 0.9 * cold_time, (
            f"{challenger} took {elapsed:.3f}s vs cold GA's {cold_time:.3f}s "
            f"at {ASSERT_SCALE} workers -- not materially faster"
        )


def _tiny_problem(seed: int) -> SelectionProblem:
    rng = new_rng(seed)
    dists = rng.dirichlet([0.3] * 4, size=10)
    batch_sizes = rng.integers(2, 17, size=10)
    return SelectionProblem(
        batch_sizes=batch_sizes,
        label_distributions=dists,
        target_distribution=iid_distribution(dists),
        bandwidth_per_sample=1.0,
        bandwidth_budget=0.5 * float(batch_sizes.sum()),
        rng=new_rng(seed),
    )


def _penalised(problem: SelectionProblem, result) -> float:
    mask = np.zeros(problem.num_workers, dtype=bool)
    mask[np.asarray(result.selected, dtype=np.int64)] = True
    return float(problem.fitness().evaluate(mask[None, :])[0])


def test_solvers_agree_with_exact_oracle(benchmark):
    """At N <= 12 the brute-force optimum bounds every solver's fitness."""

    def _compare():
        scores = []
        for seed in range(3):
            oracle = _penalised(
                _tiny_problem(seed),
                SELECTION_SOLVERS.get("exact")().solve(_tiny_problem(seed)),
            )
            row = {"seed": seed, "exact": oracle}
            for name in SOLVERS:
                problem = _tiny_problem(seed)
                row[name] = _penalised(
                    problem, SELECTION_SOLVERS.get(name)().solve(problem)
                )
            scores.append(row)
        return scores

    scores = run_once(benchmark, _compare)
    print()
    print(format_table(
        ["seed", "exact", *SOLVERS],
        [[row["seed"], row["exact"], *(row[name] for name in SOLVERS)]
         for row in scores],
        title="Penalised fitness vs the exact oracle (N = 10)",
    ))
    hits = 0
    for row in scores:
        for name in SOLVERS:
            assert row[name] >= row["exact"] - 1e-12, (
                f"{name} beat the exhaustive optimum on seed {row['seed']}"
            )
            hits += int(row[name] <= row["exact"] + 1e-12)
    assert hits >= 1, "no heuristic ever found the exhaustive optimum"
