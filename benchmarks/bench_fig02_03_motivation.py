"""Figs. 2-3: motivation — SFL-T vs SFL-FM vs SFL-BR on non-IID data.

Paper: SFL-FM improves accuracy by ~18% over SFL-T; SFL-BR cuts the average
waiting time by ~67% and reaches the target accuracy ~1.8x faster.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_table

from benchmarks.common import bench_overrides, run_once


def test_fig02_03_motivation_variants(benchmark):
    result = run_once(
        benchmark, figures.figure2_3_motivation, dataset="cifar10", **bench_overrides()
    )
    rows = [
        [row["variant"], row["final_accuracy"], row["total_time_s"],
         row["mean_waiting_time_s"]]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["variant", "final_acc", "total_time_s", "avg_wait_s"], rows,
        title="Fig. 2-3: motivation variants (CIFAR-10 analogue, non-IID p=10)",
    ))
    waits = {row["variant"]: row["mean_waiting_time_s"] for row in result["rows"]}
    # Shape check: batch-size regulation reduces waiting time vs typical SFL.
    assert waits["sfl_br"] < waits["sfl_t"]
