"""Fig. 12: system scales — completion time with different worker counts.

Paper: with more participating workers MergeSFL converges faster (1.23x-
1.68x speedup from 100 to 400 workers), since more workers contribute more
data per round.

The figure entry point is a :mod:`repro.study` grid over ``num_workers``
underneath; set ``BENCH_N_JOBS`` to run the scales in parallel worker
processes (bit-exact either way).  Set ``BENCH_PRESET`` (e.g.
``paper-scalability``) to sweep a :mod:`repro.study.presets` grid --
the paper's actual 100/200/400-worker axis -- instead of the scaled-down
default fleet.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_table
from repro.study.presets import get_preset

from benchmarks.common import (
    bench_n_jobs,
    bench_overrides,
    bench_preset,
    run_once,
    smoke_mode,
)


def test_fig12_scalability(benchmark):
    overrides = {k: v for k, v in bench_overrides().items() if k != "num_workers"}
    preset = bench_preset()
    if preset:
        # Overrides shape the preset's trials; figure12 then only reports.
        result = run_once(
            benchmark, figures.figure12_scalability,
            study=get_preset(preset, **overrides), n_jobs=bench_n_jobs(),
        )
    else:
        result = run_once(
            benchmark, figures.figure12_scalability,
            dataset="cifar10", scales=(4, 8, 12), n_jobs=bench_n_jobs(),
            **overrides,
        )
    rows = [
        [row["num_workers"], row["target_accuracy"], row["time_to_target_s"],
         row["final_accuracy"]]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["workers", "target_acc", "time_to_target_s", "final_acc"], rows,
        title="Fig. 12: MergeSFL at different system scales (CIFAR-10 analogue)",
    ))
    # Every scale reaches the common target.
    # Meaningless at smoke scale, where runs are cut to a couple of rounds.
    if not smoke_mode():
        assert all(row["time_to_target_s"] is not None for row in result["rows"])
