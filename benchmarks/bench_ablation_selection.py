"""Extra ablation: GA worker selection vs greedy selection.

DESIGN.md calls out the GA (Alg. 1 line 5) as a design choice; this bench
compares it against the greedy selector on the same skewed worker
population, reporting the KL divergence of the selected mixtures.
"""

import numpy as np

from repro.core.divergence import iid_distribution
from repro.core.selection import genetic_select, greedy_select
from repro.experiments.reporting import format_table
from repro.utils.rng import new_rng

from benchmarks.common import run_once


def _problem(num_workers=24, num_classes=10, seed=0):
    rng = new_rng(seed)
    dists = rng.dirichlet([0.1] * num_classes, size=num_workers)
    batch_sizes = rng.integers(2, 17, size=num_workers)
    return dists, batch_sizes, iid_distribution(dists)


def _compare(seeds=(0, 1, 2)):
    rows = []
    for seed in seeds:
        dists, batch_sizes, target = _problem(seed=seed)
        budget = 0.5 * batch_sizes.sum()
        ga = genetic_select(batch_sizes, dists, target, 1.0, budget,
                            rng=new_rng(seed), generations=20)
        greedy = greedy_select(batch_sizes, dists, target, 1.0, budget)
        rows.append([seed, ga.kl, greedy.kl, len(ga.selected), len(greedy.selected)])
    return rows


def test_ablation_ga_vs_greedy_selection(benchmark):
    rows = run_once(benchmark, _compare)
    print()
    print(format_table(
        ["seed", "ga_kl", "greedy_kl", "ga_selected", "greedy_selected"], rows,
        title="Ablation: GA vs greedy worker selection (lower KL is better)",
    ))
    ga_kls = [row[1] for row in rows]
    assert all(np.isfinite(kl) for kl in ga_kls)
