"""Extra ablation: the registered selection solvers head to head.

DESIGN.md calls out the GA (Alg. 1 line 5) as a design choice; this bench
compares every production solver in :data:`repro.api.registry.SELECTION_SOLVERS`
(``ga``, ``ga-warm``, ``local-search``, ``greedy``) on the same skewed
worker population, reporting the KL divergence of the selected mixtures.
The solvers are built through the registry -- the same code path
``config.selector`` takes -- so the ablation measures exactly what a
configured run would get.
"""

import numpy as np

from repro.core.divergence import iid_distribution
from repro.selection.solvers import SELECTION_SOLVERS, SelectionProblem
from repro.experiments.reporting import format_table
from repro.utils.rng import new_rng

from benchmarks.common import run_once

#: Production solvers under comparison ("exact" is a test oracle and blows
#: up combinatorially at this instance size).
SOLVERS = ("ga", "ga-warm", "local-search", "greedy")


def _problem(num_workers=24, num_classes=10, seed=0) -> SelectionProblem:
    rng = new_rng(seed)
    dists = rng.dirichlet([0.1] * num_classes, size=num_workers)
    batch_sizes = rng.integers(2, 17, size=num_workers)
    return SelectionProblem(
        batch_sizes=batch_sizes,
        label_distributions=dists,
        target_distribution=iid_distribution(dists),
        bandwidth_per_sample=1.0,
        bandwidth_budget=0.5 * float(batch_sizes.sum()),
        rng=new_rng(seed),
    )


def _compare(seeds=(0, 1, 2)):
    rows = []
    for seed in seeds:
        row = [seed]
        for name in SOLVERS:
            solver = SELECTION_SOLVERS.get(name)(generations=20) \
                if name in ("ga", "ga-warm") else SELECTION_SOLVERS.get(name)()
            result = solver.solve(_problem(seed=seed))
            row.extend([result.kl, len(result.selected)])
        rows.append(row)
    return rows


def test_ablation_selection_solvers(benchmark):
    rows = run_once(benchmark, _compare)
    print()
    header = ["seed"]
    for name in SOLVERS:
        header.extend([f"{name}_kl", f"{name}_n"])
    print(format_table(
        header, rows,
        title="Ablation: selection solvers (lower KL is better)",
    ))
    for row in rows:
        kls = row[1::2]
        assert all(np.isfinite(kl) for kl in kls)
