"""Elastic rounds under churn: dropout cost and first-k-of-n round time.

The paper's testbed keeps all 80 devices alive for every round; real
cross-device deployments do not.  :mod:`repro.core.elastic` makes rounds
elastic -- over-selection, first-k-of-n aggregation at a straggler
deadline, and stale rejoins -- and this benchmark measures the two claims
that subsystem makes:

* **Dropout is cheap when over-selected.**  The dropout sweep runs the
  same experiment at per-round dropout 0 / 0.1 / 0.3 with over-selection
  1.25 and reports final accuracy and the realised churn, next to the
  exact (elasticity off) run.
* **First-k-of-n beats wait-for-all under stragglers.**  With a straggler
  deadline, the simulated round duration is capped at a multiple of the
  cohort's median worker time instead of its maximum, so the slowest
  device no longer sets the round clock.

``BENCH_CHURN`` is not consulted here -- this benchmark *is* the elastic
path; the env knob exists to run every other benchmark under churn.
"""

from repro.api.session import Session
from repro.experiments.figures import figure_config
from repro.experiments.reporting import format_table
from repro.metrics.summary import (
    final_accuracy,
    mean_dropout_rate,
    mean_effective_cohort,
)

from benchmarks.common import bench_overrides, run_once, smoke_mode

#: Per-round dropout probabilities of the sweep (0 = neutral elasticity).
DROPOUT_RATES = (0.0, 0.1, 0.3)
OVER_SELECT = 1.25


def _churn_config(**overrides):
    # Deliberately off the saturation plateau (high skew, small LR, few
    # local steps): at the suite's default scale every run reaches 1.0
    # accuracy and the dropout cost would be invisible.
    params = bench_overrides()
    # BENCH_CHURN applies to every *other* benchmark; this one sweeps the
    # elastic knobs itself, against a genuinely exact baseline.
    for key in ("elastic", "dropout_rate", "over_select_factor"):
        params.pop(key, None)
    params.update(
        non_iid_level=8.0, learning_rate=0.02, local_iterations=2,
        **overrides,
    )
    return figure_config("blobs", "mergesfl", **params)


def _run(config):
    with Session.from_config(config) as session:
        return session.run()


def _dropout_sweep() -> list[dict]:
    rows = [{"mode": "exact", "history": _run(_churn_config())}]
    for rate in DROPOUT_RATES:
        config = _churn_config(
            elastic=True, dropout_rate=rate,
            over_select_factor=OVER_SELECT if rate else 1.0,
            rejoin_staleness_bound=2 if rate else 0,
        )
        rows.append({"mode": f"dropout {rate:.1f}", "history": _run(config)})
    return rows


def test_dropout_sweep(benchmark):
    rows = run_once(benchmark, _dropout_sweep)
    print()
    print(format_table(
        ["mode", "final_acc", "dropout", "cohort", "sim_time_s"],
        [[row["mode"],
          f"{final_accuracy(row['history']):.3f}",
          f"{mean_dropout_rate(row['history']):.2f}",
          f"{mean_effective_cohort(row['history']):.1f}",
          f"{row['history'].records[-1].sim_time:.3f}"] for row in rows],
        title=f"Dropout sweep at over-selection {OVER_SELECT}",
    ))
    exact = final_accuracy(rows[0]["history"])
    neutral = final_accuracy(rows[1]["history"])
    # Neutral elasticity is the exact protocol.
    assert neutral == exact
    if not smoke_mode():
        # Over-selection keeps the lossy runs within a learning tolerance
        # of the exact one even at 30% per-round dropout.
        for row in rows[2:]:
            assert final_accuracy(row["history"]) >= exact - 0.15


def _round_times() -> dict[str, float]:
    wait_all = _run(_churn_config())
    first_k = _run(_churn_config(elastic=True, straggler_deadline=1.5))
    return {
        "wait_for_all_s": wait_all.records[-1].sim_time,
        "first_k_of_n_s": first_k.records[-1].sim_time,
    }


def test_first_k_of_n_beats_wait_for_all(benchmark):
    times = run_once(benchmark, _round_times)
    print()
    print(format_table(
        ["policy", "total_sim_time_s"],
        [["wait for all", f"{times['wait_for_all_s']:.3f}"],
         ["first-k-of-n (deadline 1.5x median)",
          f"{times['first_k_of_n_s']:.3f}"]],
        title="Simulated run time: straggler deadline vs synchronous",
    ))
    # The deadline caps every round at 1.5x the cohort median, so the
    # simulated clock must come in under the wait-for-all run's.
    assert times["first_k_of_n_s"] < times["wait_for_all_s"]
