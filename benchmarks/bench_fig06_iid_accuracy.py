"""Fig. 6: time-to-accuracy of the five approaches on IID data.

Paper: all approaches reach similar final accuracy; MergeSFL converges
fastest (1.39x-4.14x speedup over the baselines).
"""

from repro.experiments import figures
from repro.experiments.reporting import format_comparison
from repro.metrics.summary import time_to_accuracy

from benchmarks.common import bench_overrides, run_once, smoke_mode


def test_fig06_iid_har(benchmark):
    result = run_once(
        benchmark, figures.figure6_iid_accuracy, datasets=("har",), **bench_overrides()
    )
    print()
    print(format_comparison(result["har"]["comparison"],
                            title="Fig. 6(a): HAR analogue, IID"))


def test_fig06_iid_cifar10(benchmark):
    result = run_once(
        benchmark, figures.figure6_iid_accuracy, datasets=("cifar10",), **bench_overrides()
    )
    comparison = result["cifar10"]["comparison"]
    print()
    print(format_comparison(comparison, title="Fig. 6(c): CIFAR-10 analogue, IID"))
    histories = result["cifar10"]["histories"]
    target = min(max(h.accuracies) for h in histories.values())
    merge_time = time_to_accuracy(histories["mergesfl"], target)
    locfedmix_time = time_to_accuracy(histories["locfedmix_sl"], target)
    # Shape check: MergeSFL reaches the common target no slower than LocFedMix-SL.
    # Meaningless at smoke scale, where runs are cut to a couple of rounds.
    if not smoke_mode():
        assert merge_time is not None and locfedmix_time is not None
        assert merge_time <= locfedmix_time * 1.05
