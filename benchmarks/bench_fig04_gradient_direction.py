"""Fig. 4: gradient direction of SFL-FM vs SFL-T vs standalone SGD.

Paper: the merged-feature gradient is much closer to the standalone SGD
gradient than the per-worker gradients of typical SFL.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_table

from benchmarks.common import run_once


def test_fig04_gradient_direction(benchmark):
    result = run_once(
        benchmark, figures.figure4_gradient_directions,
        dataset="cifar10", num_workers=5, batch_size=12, model_width=0.4,
    )
    print()
    print(format_table(
        ["approach", "cosine_to_standalone_sgd"],
        [["SFL-FM (merged)", result.cosine_fm], ["SFL-T (per-worker)", result.cosine_t]],
        title="Fig. 4: top-model gradient alignment with centralized SGD",
    ))
    assert result.cosine_fm >= result.cosine_t
    assert result.cosine_fm > 0.9
