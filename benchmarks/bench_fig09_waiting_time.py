"""Fig. 9: average per-round waiting time of the five approaches.

Paper: AdaSFL has the smallest waiting time, MergeSFL is close behind, and
the fixed-batch approaches (LocFedMix-SL, FedAvg) wait the longest.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_table

from benchmarks.common import bench_overrides, run_once


def test_fig09_waiting_time_cifar10(benchmark):
    result = run_once(
        benchmark, figures.figure9_waiting_time, datasets=("cifar10",),
        **bench_overrides(),
    )
    rows = [
        [row["dataset"], row["approach"], row["mean_waiting_time_s"]]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["dataset", "approach", "avg_waiting_time_s"], rows,
        title="Fig. 9: average per-round waiting time (CIFAR-10 analogue)",
    ))
    waits = {row["approach"]: row["mean_waiting_time_s"] for row in result["rows"]}
    # Shape checks: batch-size regulation (AdaSFL, MergeSFL) waits less than
    # the fixed-batch SFL baseline.
    assert waits["adasfl"] < waits["locfedmix_sl"]
    assert waits["mergesfl"] < waits["locfedmix_sl"]
