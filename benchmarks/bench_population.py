"""Population scaling: registered workers vs round wall-clock and memory.

The paper's testbed holds 80 devices; its simulations hold hundreds.  The
``repro.population`` registry decouples the *registered* population from
the *materialised* one, so a simulation can hold a million registered
workers while only the round's cohort exists as live objects.  This
benchmark sweeps the registered count over three orders of magnitude with
a fixed candidate pool and checks the two properties the subsystem
promises: per-round wall-clock stays flat, and the peak number of live
workers is bounded by the cohort, not the population.

``BENCH_POPULATION`` is not consulted here -- this benchmark *is* the lazy
path; the env knob exists to run every other benchmark under ``lazy`` and
confirm bit-exactness suite-wide.
"""

import time

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.experiments.reporting import format_table

from benchmarks.common import run_once, smoke_mode

#: Registered-population axis (smoke keeps CI to a couple of seconds).
FULL_SCALES = (1_000, 10_000, 100_000, 1_000_000)
SMOKE_SCALES = (500, 5_000)

#: Candidate pool and cache sizes held fixed across the axis.
CANDIDATES = 64
CACHE = 32
ROUNDS = 3


def _population_config(num_workers: int) -> ExperimentConfig:
    return ExperimentConfig(
        dataset="blobs",
        model="mlp",
        algorithm="mergesfl",
        num_workers=num_workers,
        num_rounds=ROUNDS,
        local_iterations=2,
        max_batch_size=32,
        base_batch_size=16,
        selection_fraction=0.25,
        bandwidth_budget_mbps=40.0,
        population="lazy",
        population_candidates=CANDIDATES,
        population_cache=CACHE,
        seed=7,
        extras={
            # Partitioning a small train set over 1e6 workers would yield
            # empty shards; sampled sharding derives each worker's shard
            # from its own RNG stream, O(1) in the registered count.
            "population_sharding": "sampled",
            "auto_budget": False,
            "population_live_devices": 4096,
        },
    )


def _sweep(scales: tuple[int, ...]) -> list[dict]:
    rows = []
    for num_workers in scales:
        start = time.perf_counter()
        session = Session(_population_config(num_workers))
        build_s = time.perf_counter() - start
        start = time.perf_counter()
        session.run()
        round_s = (time.perf_counter() - start) / ROUNDS
        pool = session.algorithm.engine.pool
        stats = pool.stats()
        rows.append({
            "registered": num_workers,
            "build_s": build_s,
            "round_s": round_s,
            "peak_live": stats["peak_live"],
            "live_after": stats["live"],
            "label_shards": stats["label_shards_built"],
        })
    return rows


def test_population_scaling(benchmark):
    scales = SMOKE_SCALES if smoke_mode() else FULL_SCALES
    rows = run_once(benchmark, _sweep, scales)
    print()
    print(format_table(
        ["registered", "build_s", "round_s", "peak_live", "live_after"],
        [[f"{r['registered']:,}", f"{r['build_s']:.3f}", f"{r['round_s']:.3f}",
          r["peak_live"], r["live_after"]] for r in rows],
        title="Population scaling: registered workers vs round wall-clock",
    ))
    for row in rows:
        # Peak resident state is bounded by the cohort (candidates cap the
        # selectable set), never the registered population ...
        assert row["peak_live"] <= min(CANDIDATES, row["registered"])
        # ... and every cohort is released at round end.
        assert row["live_after"] == 0
    if not smoke_mode():
        # Flat per-round wall-clock over three orders of magnitude.  The
        # bound is loose (5x) to absorb shared-CI noise; the measured ratio
        # on an idle machine is ~1.2x from 1e3 to 1e6 registered workers.
        per_round = [row["round_s"] for row in rows]
        assert max(per_round) <= 5.0 * min(per_round)
