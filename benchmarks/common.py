"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (fewer workers, rounds and samples than the 80-Jetson testbed) so the
whole suite finishes on a CPU-only machine.  EXPERIMENTS.md records the
measured numbers next to the paper's and discusses where the shape holds.

Each benchmark runs its experiment exactly once (``benchmark.pedantic`` with
one round/iteration): the interesting output is the reproduced table, not
the harness's own wall-clock variance.

Environment variables tune the suite without editing code; they are read
when a benchmark calls :func:`bench_overrides` (never at import time, so
importing this module has no side effects and tests cannot contaminate
each other through a shared dict):

* ``BENCH_SMOKE=1`` -- shrink every experiment to a near-trivial size, so CI
  can assert that all benchmark entry points still *run* in a couple of
  minutes (the numbers are meaningless at that scale).
* ``BENCH_EXECUTOR=serial|batched|process`` -- select the execution backend
  (see :mod:`repro.parallel`) for every benchmark.  All backends are
  bit-exact, so this only changes wall-clock time.
* ``BENCH_TRANSPORT=pipe|shm`` -- select the process executor's feature
  transport (see :mod:`repro.parallel.transport`); ignored by in-process
  executors.
* ``BENCH_PIPELINE=sync|pipelined|staleness`` -- select the round scheduler
  (see :mod:`repro.parallel.pipeline`).  Also bit-exact (``staleness``
  without a bound behaves as staleness 0).
* ``BENCH_STALENESS=s`` -- run under the bounded-staleness scheduler with
  bound ``s`` (implies ``BENCH_PIPELINE=staleness`` unless one is set
  explicitly).  ``s >= 1`` is the one knob that is *not* bit-exact: it is
  the measured relaxation, deterministic but a different trajectory.
* ``BENCH_N_JOBS=k`` -- run the trials of study-backed benchmarks in ``k``
  parallel worker processes (see :mod:`repro.study`).  Bit-exact as well:
  trial-level parallelism only reorders wall-clock, never results.
* ``BENCH_POPULATION=eager|lazy`` -- select the worker-population mode
  (see :mod:`repro.population`).  ``lazy`` registers workers as metadata
  rows and materialises only each round's cohort; bit-exact against
  ``eager``, so this only changes memory and wall-clock.
* ``BENCH_CODEC=none|fp16|bf16|int8|topk`` -- select the transport codec
  (see :mod:`repro.parallel.codec`) compressing features and gradients on
  the wire.  Only meaningful with ``BENCH_EXECUTOR=process`` (in-process
  executors have no wire).  ``none`` is bit-exact; the lossy codecs are
  deterministic but measured relaxations, like ``BENCH_STALENESS``.
* ``BENCH_SPLITPOINT=uniform|profile|adaptive`` -- select the per-worker
  split-point policy (see :mod:`repro.splitpoint`).  ``uniform`` is the
  bit-exact global-cut anchor; ``profile`` and ``adaptive`` assign
  per-worker cut depths and are deterministic, measured relaxations of the
  exact trajectory.
* ``BENCH_SELECTION=ga|ga-warm|local-search|greedy`` -- select the
  worker-selection solver (see :mod:`repro.selection`).  ``ga`` is the
  bit-exact paper GA; the alternatives trade search budget for warm starts
  or deterministic local refinement and are measured relaxations of the
  exact trajectory (``exact`` exists too, but only for tiny test
  instances -- never point a benchmark fleet at it).
* ``BENCH_PRESET=name`` -- point the scalability benchmark at a
  :mod:`repro.study.presets` study (e.g. ``paper-scalability`` for the
  paper's 100/200/400-worker axis) instead of the scaled-down default.
* ``BENCH_CHURN=rate`` -- run every benchmark under elastic rounds (see
  :mod:`repro.core.elastic`) with that per-round dropout probability and
  over-selection 1.25.  Like ``BENCH_STALENESS``, this is a measured
  relaxation: deterministic for a fixed seed, but a different trajectory
  than the exact synchronous runs (``BENCH_CHURN=0`` keeps elasticity on
  with zero churn, which *is* bit-exact).
"""

from __future__ import annotations

import os

from repro.experiments import figures
from repro.metrics.history import History
from repro.study import Study, StudyRunner

#: Overrides applied to every figure entry point to keep the suite fast.
_BASE_OVERRIDES = {
    "num_workers": 6,
    "num_rounds": 4,
    "local_iterations": 6,
    "train_samples": 480,
    "test_samples": 160,
    "max_batch_size": 16,
    "base_batch_size": 8,
    "model_width": 0.4,
    "learning_rate": 0.08,
    "seed": 7,
}

#: Further reductions applied when ``BENCH_SMOKE`` is set: just enough
#: signal to prove the entry point still assembles and runs.
_SMOKE_OVERRIDES = {
    "num_workers": 4,
    "num_rounds": 2,
    "local_iterations": 2,
    "train_samples": 160,
    "test_samples": 64,
    "model_width": 0.25,
    "ga_population": 8,
    "ga_generations": 4,
}


def smoke_mode() -> bool:
    """Whether ``BENCH_SMOKE`` requests near-trivial experiment sizes."""
    return bool(os.environ.get("BENCH_SMOKE"))


def bench_n_jobs() -> int:
    """Trial-level parallelism requested through ``BENCH_N_JOBS``."""
    return int(os.environ.get("BENCH_N_JOBS") or "1")


def bench_staleness() -> int:
    """Staleness bound requested through ``BENCH_STALENESS`` (0 = exact)."""
    return int(os.environ.get("BENCH_STALENESS") or "0")


def bench_preset() -> str | None:
    """Preset study name requested through ``BENCH_PRESET`` (or ``None``)."""
    return os.environ.get("BENCH_PRESET") or None


def bench_churn_rate() -> float | None:
    """Dropout rate requested through ``BENCH_CHURN`` (``None`` = off).

    ``BENCH_CHURN=0`` is distinct from unset: it enables elastic rounds
    with zero churn, the neutral mode that must stay bit-exact with the
    synchronous protocol.
    """
    value = os.environ.get("BENCH_CHURN")
    return None if value is None or value == "" else float(value)


def bench_overrides() -> dict:
    """The suite's config overrides, built fresh from the environment.

    Pure in the sense that matters here: every call returns a new dict
    assembled from the current environment, so callers may mutate their
    copy and test processes cannot contaminate one another through shared
    module state.
    """
    overrides = dict(_BASE_OVERRIDES)
    if smoke_mode():
        overrides.update(_SMOKE_OVERRIDES)
    for env, key in (("BENCH_EXECUTOR", "executor"),
                     ("BENCH_TRANSPORT", "transport"),
                     ("BENCH_PIPELINE", "pipeline"),
                     ("BENCH_POPULATION", "population"),
                     ("BENCH_CODEC", "codec"),
                     ("BENCH_SPLITPOINT", "split_policy"),
                     ("BENCH_SELECTION", "selector")):
        value = os.environ.get(env)
        if value:
            overrides[key] = value
    staleness = bench_staleness()
    if staleness:
        overrides["staleness"] = staleness
        # An explicit BENCH_PIPELINE wins; otherwise a bound implies the
        # staleness scheduler (a bound under sync/pipelined is inert).
        overrides.setdefault("pipeline", "staleness")
    churn = bench_churn_rate()
    if churn is not None:
        overrides["elastic"] = True
        overrides["dropout_rate"] = churn
        if churn > 0:
            overrides["over_select_factor"] = 1.25
    return overrides


def bench_study(name: str, dataset: str, axes: dict,
                algorithm: str = "mergesfl", non_iid_level: float = 0.0,
                **overrides) -> Study:
    """Build a grid :class:`Study` at benchmark scale.

    ``axes`` sweeps config fields (e.g. ``{"algorithm": (...)}`` or
    ``{"num_workers": (4, 8)}``) over a base config assembled from the
    figure defaults, :func:`bench_overrides` and ``overrides``.
    """
    merged = bench_overrides()
    merged.update(overrides)
    for axis in axes:
        merged.pop(axis, None)
    base = figures.figure_config(dataset, algorithm, non_iid_level, **merged)
    return Study.grid(name, base, axes)


def run_bench_study(study: Study) -> dict[str, History]:
    """Execute a benchmark study (``BENCH_N_JOBS`` workers) -> histories."""
    runner = StudyRunner(study, n_jobs=bench_n_jobs())
    return runner.histories()


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
