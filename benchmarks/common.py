"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (fewer workers, rounds and samples than the 80-Jetson testbed) so the
whole suite finishes on a CPU-only machine.  EXPERIMENTS.md records the
measured numbers next to the paper's and discusses where the shape holds.

Each benchmark runs its experiment exactly once (``benchmark.pedantic`` with
one round/iteration): the interesting output is the reproduced table, not
the harness's own wall-clock variance.

Two environment variables tune the suite without editing code:

* ``BENCH_SMOKE=1`` -- shrink every experiment to a near-trivial size, so CI
  can assert that all benchmark entry points still *run* in a couple of
  minutes (the numbers are meaningless at that scale).
* ``BENCH_EXECUTOR=serial|batched|process`` -- select the execution backend
  (see :mod:`repro.parallel`) for every benchmark.  All backends are
  bit-exact, so this only changes wall-clock time.
* ``BENCH_TRANSPORT=pipe|shm`` -- select the process executor's feature
  transport (see :mod:`repro.parallel.transport`); ignored by in-process
  executors.
* ``BENCH_PIPELINE=sync|pipelined`` -- select the round scheduler (see
  :mod:`repro.parallel.pipeline`).  Also bit-exact.
"""

from __future__ import annotations

import os

#: Overrides applied to every figure entry point to keep the suite fast.
BENCH_OVERRIDES = {
    "num_workers": 6,
    "num_rounds": 4,
    "local_iterations": 6,
    "train_samples": 480,
    "test_samples": 160,
    "max_batch_size": 16,
    "base_batch_size": 8,
    "model_width": 0.4,
    "learning_rate": 0.08,
    "seed": 7,
}

#: Further reductions applied when ``BENCH_SMOKE`` is set: just enough
#: signal to prove the entry point still assembles and runs.
SMOKE_OVERRIDES = {
    "num_workers": 4,
    "num_rounds": 2,
    "local_iterations": 2,
    "train_samples": 160,
    "test_samples": 64,
    "model_width": 0.25,
    "ga_population": 8,
    "ga_generations": 4,
}

SMOKE_MODE = bool(os.environ.get("BENCH_SMOKE"))
if SMOKE_MODE:
    BENCH_OVERRIDES.update(SMOKE_OVERRIDES)

_executor = os.environ.get("BENCH_EXECUTOR")
if _executor:
    BENCH_OVERRIDES["executor"] = _executor

_transport = os.environ.get("BENCH_TRANSPORT")
if _transport:
    BENCH_OVERRIDES["transport"] = _transport

_pipeline = os.environ.get("BENCH_PIPELINE")
if _pipeline:
    BENCH_OVERRIDES["pipeline"] = _pipeline


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
