"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (fewer workers, rounds and samples than the 80-Jetson testbed) so the
whole suite finishes on a CPU-only machine.  EXPERIMENTS.md records the
measured numbers next to the paper's and discusses where the shape holds.

Each benchmark runs its experiment exactly once (``benchmark.pedantic`` with
one round/iteration): the interesting output is the reproduced table, not
the harness's own wall-clock variance.
"""

from __future__ import annotations

#: Overrides applied to every figure entry point to keep the suite fast.
BENCH_OVERRIDES = {
    "num_workers": 6,
    "num_rounds": 4,
    "local_iterations": 6,
    "train_samples": 480,
    "test_samples": 160,
    "max_batch_size": 16,
    "base_batch_size": 8,
    "model_width": 0.4,
    "learning_rate": 0.08,
    "seed": 7,
}


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
