"""Extra ablation: adaptive (batch-size-weighted) vs uniform bottom aggregation.

DESIGN.md calls out Eq. 17's adaptive weights as a design choice; this bench
compares MergeSFL's weighted aggregation against plain uniform averaging by
aggregating diverged bottom states both ways.
"""

import numpy as np

from repro.experiments.reporting import format_table
from repro.nn.models import build_mlp
from repro.nn.serialization import average_state_dicts, state_dict_distance
from repro.utils.rng import new_rng

from benchmarks.common import run_once


def _compare():
    """Aggregate perturbed bottom states with uniform vs batch-size weights."""
    rng = new_rng(0)
    reference = build_mlp(input_dim=16, num_classes=4, hidden_dims=(8,), seed=0)
    base_state = reference.state_dict()
    batch_sizes = np.array([16, 8, 4, 1], dtype=np.float64)
    # Workers with small batches drift more (noisier local gradients).
    states = []
    for batch in batch_sizes:
        noise_scale = 0.5 / np.sqrt(batch)
        states.append({
            key: value + rng.normal(0.0, noise_scale, size=value.shape)
            for key, value in base_state.items()
        })
    uniform = average_state_dicts(states)
    weighted = average_state_dicts(states, weights=list(batch_sizes))
    return {
        "uniform_distance": state_dict_distance(uniform, base_state),
        "weighted_distance": state_dict_distance(weighted, base_state),
    }


def test_ablation_weighted_vs_uniform_aggregation(benchmark):
    result = run_once(benchmark, _compare)
    print()
    print(format_table(
        ["aggregation", "distance_to_reference"],
        [["uniform (Eq. 4)", result["uniform_distance"]],
         ["batch-weighted (Eq. 17)", result["weighted_distance"]]],
        title="Ablation: bottom-model aggregation weighting",
    ))
    # Weighting by batch size discounts the noisiest (smallest-batch) workers.
    assert result["weighted_distance"] < result["uniform_distance"]
