"""Table II: Jetson device specifications used by the testbed simulator."""

from repro.experiments import figures
from repro.experiments.reporting import format_table
from repro.simulation.device import heterogeneity_span

from benchmarks.common import run_once


def test_table02_device_specifications(benchmark):
    rows = run_once(benchmark, figures.table2_device_specifications)
    print()
    print(format_table(
        ["device", "ai_performance", "gpu", "cpu", "memory_gb", "train_gflops", "modes"],
        [[r["device"], r["ai_performance"], r["gpu"], r["cpu"], r["memory_gb"],
          r["train_gflops"], r["num_modes"]] for r in rows],
        title="Table II: device technical specifications (simulator profiles)",
    ))
    assert len(rows) == 3
    # Paper: the fastest AGX mode is ~100x the slowest TX2 mode.
    assert 50 <= heterogeneity_span() <= 200
