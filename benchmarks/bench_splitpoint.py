"""Per-worker split points: straggler waiting time under heterogeneity.

The paper's protocol cuts every worker's model at the same global layer,
so on heterogeneous devices the slow compute classes (Jetson TX2 at
2 GFLOPS vs AGX at 30) set every round's clock.  :mod:`repro.splitpoint`
lets a policy choose a *per-worker* cut depth -- slow devices keep a
shallow bottom model and push more of the network onto the server -- and
this benchmark measures the claim that subsystem makes: on the Table-2
device mix, the ``profile`` policy (static depth per device class) reduces
the average per-round straggler waiting time against the ``uniform``
global cut, with the ``adaptive`` controller (depths re-selected each
round from observed durations and wire traffic) alongside.

``BENCH_SPLITPOINT`` is not consulted here -- this benchmark *is* the
split-point sweep; the env knob exists to run every other benchmark under
a chosen policy.
"""

from repro.api.session import Session
from repro.experiments.figures import figure_config
from repro.experiments.reporting import format_table
from repro.metrics.summary import final_accuracy, mean_waiting_time

from benchmarks.common import bench_overrides, run_once

#: Split-point policies of the sweep (``uniform`` is the exact anchor).
POLICIES = ("uniform", "profile", "adaptive")


def _splitpoint_config(policy: str, **overrides):
    params = bench_overrides()
    # BENCH_SPLITPOINT applies to every *other* benchmark; this one sweeps
    # the policy itself, against a genuinely uniform anchor.
    params.pop("split_policy", None)
    # More workers than the suite default so the 30/40/10 TX2/NX/AGX mix is
    # actually represented; full width so AlexNet-S's dense top layers give
    # the depth choice a real model-transfer stake; few local iterations so
    # the per-round model exchange (what a shallow cut shrinks ~100x) is not
    # amortised away against the feature stream.
    params.update(num_workers=10, model_width=1.0, local_iterations=2,
                  **overrides)
    return figure_config("cifar10", "mergesfl", split_policy=policy, **params)


def _run(config):
    with Session.from_config(config) as session:
        return session.run()


def _policy_sweep() -> list[dict]:
    return [
        {"policy": policy, "history": _run(_splitpoint_config(policy))}
        for policy in POLICIES
    ]


def test_splitpoint_policies(benchmark):
    rows = run_once(benchmark, _policy_sweep)
    print()
    print(format_table(
        ["policy", "avg_waiting_time_s", "sim_time_s", "traffic_mb",
         "final_acc"],
        [[row["policy"],
          f"{mean_waiting_time(row['history']):.3f}",
          f"{row['history'].records[-1].sim_time:.3f}",
          f"{row['history'].records[-1].traffic_mb:.2f}",
          f"{final_accuracy(row['history']):.3f}"] for row in rows],
        title="Split-point policies on the Table-2 device mix "
              "(CIFAR-10 / AlexNet-S)",
    ))
    waits = {row["policy"]: mean_waiting_time(row["history"]) for row in rows}
    # The headline claim: matching each device class's cut depth to its
    # compute/bandwidth profile shrinks the straggler gap the uniform
    # global cut leaves open.
    assert waits["profile"] < waits["uniform"]
