"""Executor backends: wall-clock comparison + bit-exactness at benchmark scale.

Runs the same fixed-seed MergeSFL experiment (16 workers, 3 rounds at full
benchmark scale) under the serial and batched executors and under the
process executor with every transport/pipeline combination, printing the
wall-clock of each and the speedup.  The histories must be bit-identical --
executors, transports and round pipelines are pure execution backends (see
``repro.parallel``).

The process executor exists to model the deployment topology of real split
federated learning (compute happens where the data is, everything crosses
a process boundary); the ``shm`` transport and the ``pipelined`` scheduler
remove most of its transfer/synchronisation overhead, and on multi-core
hosts its children additionally run in parallel.  EXPERIMENTS.md records
measured numbers and discusses the single-core case.
"""

from __future__ import annotations

import dataclasses

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.study import Timing

from benchmarks.common import bench_overrides, run_once, smoke_mode

#: (executor, transport, pipeline) rows of the comparison table.
MATRIX = (
    ("serial", "pipe", "sync"),
    ("batched", "pipe", "sync"),
    ("process", "pipe", "sync"),
    ("process", "shm", "sync"),
    ("process", "shm", "pipelined"),
)


def _config(executor: str, transport: str = "pipe", pipeline: str = "sync",
            **overrides) -> ExperimentConfig:
    params = bench_overrides()
    # This benchmark sweeps the execution axes itself, and a lossy codec
    # would break the bit-exactness the table asserts.
    for key in ("executor", "transport", "pipeline", "codec"):
        params.pop(key, None)
    if not smoke_mode():
        params.update(num_workers=16, num_rounds=3, local_iterations=5,
                      train_samples=1280)
    params.update(overrides)
    return ExperimentConfig(
        algorithm="mergesfl", dataset="cifar10", non_iid_level=2.0,
        executor=executor, transport=transport, pipeline=pipeline, **params,
    )


def _timed_run(executor: str, transport: str = "pipe", pipeline: str = "sync",
               **overrides):
    # The Timing callback is the suite's single wall-clock source (no
    # second hand-rolled perf_counter next to it): its round windows are
    # contiguous, so work a pipelined/staleness schedule leaves in flight
    # at a round boundary is attributed to exactly one round and the total
    # never double-counts overlapped stages.
    config = _config(executor, transport, pipeline, **overrides)
    timing = Timing()
    with Session.from_config(config) as session:
        session.add_callback(timing)
        history = session.run()
    return timing.total, history


def _records(history) -> list[dict]:
    from repro.metrics.history import WIRE_FIELDS

    # Wire tallies measure the execution topology, not the trajectory.
    return [
        {k: v for k, v in dataclasses.asdict(record).items()
         if k not in WIRE_FIELDS}
        for record in history.records
    ]


def test_executor_matrix_speedup_and_bit_exactness(benchmark):
    def sweep():
        return {row: _timed_run(*row) for row in MATRIX}

    results = run_once(benchmark, sweep)
    serial_time, serial_history = results[MATRIX[0]]
    rows = []
    for key in MATRIX:
        elapsed, history = results[key]
        assert _records(history) == _records(serial_history), key
        rows.append(["/".join(key), f"{elapsed:.2f}", f"{serial_time / elapsed:.2f}x"])
    print()
    print(format_table(
        ["executor/transport/pipeline", "wall_clock_s", "speedup"], rows,
        title=f"MergeSFL, {_config('serial').num_workers} workers, "
              f"{_config('serial').num_rounds} rounds (histories bit-identical)",
    ))
