"""Executor backends: wall-clock comparison + bit-exactness at benchmark scale.

Runs the same fixed-seed MergeSFL experiment (16 workers, 3 rounds at full
benchmark scale) under the serial and batched executors, printing the
wall-clock of each and the speedup.  The histories must be bit-identical --
the executors are pure execution backends (see ``repro.parallel``).

The process executor is exercised at a reduced scale: it exists to model
the deployment topology (compute happens where the data is), and at the
tiny simulation scale pickling dominates, so only correctness is asserted.
"""

from __future__ import annotations

import dataclasses
import time

from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.experiments.reporting import format_table

from benchmarks.common import BENCH_OVERRIDES, SMOKE_MODE, run_once


def _config(executor: str, **overrides) -> ExperimentConfig:
    params = dict(BENCH_OVERRIDES)
    params.pop("executor", None)  # this benchmark sweeps executors itself
    if not SMOKE_MODE:
        params.update(num_workers=16, num_rounds=3, local_iterations=5,
                      train_samples=1280)
    params.update(overrides)
    return ExperimentConfig(
        algorithm="mergesfl", dataset="cifar10", non_iid_level=2.0,
        executor=executor, **params,
    )


def _timed_run(executor: str, **overrides):
    config = _config(executor, **overrides)
    start = time.perf_counter()
    with Session.from_config(config) as session:
        history = session.run()
    return time.perf_counter() - start, history


def _records(history) -> list[dict]:
    return [dataclasses.asdict(record) for record in history.records]


def test_batched_executor_speedup(benchmark):
    serial_time, serial_history = run_once(benchmark, _timed_run, "serial")
    batched_time, batched_history = _timed_run("batched")
    rows = [
        ["serial", f"{serial_time:.2f}", "1.00x"],
        ["batched", f"{batched_time:.2f}", f"{serial_time / batched_time:.2f}x"],
    ]
    print()
    print(format_table(
        ["executor", "wall_clock_s", "speedup"], rows,
        title=f"MergeSFL, {_config('serial').num_workers} workers, "
              f"{_config('serial').num_rounds} rounds",
    ))
    assert _records(serial_history) == _records(batched_history)


def test_process_executor_bit_exact(benchmark):
    overrides = dict(
        num_workers=4, num_rounds=2, local_iterations=2, train_samples=240,
        extras={"executor_processes": 2},
    )
    process_time, process_history = run_once(
        benchmark, _timed_run, "process", **overrides
    )
    __, serial_history = _timed_run("serial", **overrides)
    print(f"\nprocess executor (4 workers, 2 rounds): {process_time:.2f}s")
    assert _records(serial_history) == _records(process_history)
