"""Fig. 8: network traffic consumed to reach target accuracies.

Paper: the SFL approaches (which exchange features instead of full models)
consume far less traffic than FedAvg/PyramidFL, and MergeSFL the least.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_table
from repro.metrics.summary import (
    best_accuracy,
    final_accuracy,
    mean_compression_ratio,
    total_bytes_on_wire,
    traffic_to_accuracy,
)

from benchmarks.common import (
    bench_overrides,
    bench_study,
    run_bench_study,
    run_once,
    smoke_mode,
)


def test_fig08_network_traffic_cifar10(benchmark):
    result = run_once(
        benchmark, figures.figure8_network_traffic, datasets=("cifar10",),
        **bench_overrides(),
    )
    rows = [
        [row["dataset"], row["approach"], row["target_accuracy"], row["traffic_mb"]]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["dataset", "approach", "target_acc", "traffic_MB"], rows,
        title="Fig. 8: traffic to reach target accuracy (CIFAR-10 analogue, non-IID)",
    ))

    histories = result["histories"]["cifar10"]
    target = min(best_accuracy(history) for history in histories.values())
    split_traffic = traffic_to_accuracy(histories["locfedmix_sl"], target)
    fedavg_traffic = traffic_to_accuracy(histories["fedavg"], target)
    # Shape check: model splitting saves traffic compared to full-model FL.
    # Meaningless at smoke scale, where runs are cut to a couple of rounds.
    if not smoke_mode():
        assert split_traffic is not None and fedavg_traffic is not None
        assert split_traffic < fedavg_traffic


def test_fig08_codec_sweep(benchmark):
    """Transport-codec extension of the traffic axis: what each codec pays
    in accuracy for its wire savings (``none`` anchors the exact run)."""
    codecs = (("none", "int8") if smoke_mode()
              else ("none", "fp16", "bf16", "int8", "topk"))
    study = bench_study(
        "fig08-codec", "cifar10", axes={"codec": codecs},
        executor="process", transport="shm",
        extras={"executor_processes": 2, "codec_topk_ratio": 0.3},
    )
    histories = run_once(benchmark, run_bench_study, study)
    rows = [
        [name.removeprefix("codec="),
         f"{final_accuracy(history):.3f}",
         f"{mean_compression_ratio(history):.2f}x",
         f"{total_bytes_on_wire(history) / 1e6:.1f}"]
        for name, history in histories.items()
    ]
    print()
    print(format_table(
        ["codec", "final_acc", "logical/wire", "wire_MB"], rows,
        title="Fig. 8 extension: codec accuracy/traffic trade-off (mergesfl)",
    ))
    anchor = histories["codec=none"]
    assert all(r.compression_ratio == 1.0 for r in anchor.records)
    lossy = histories["codec=int8"]
    assert mean_compression_ratio(lossy) > 1.3
    assert total_bytes_on_wire(lossy) < total_bytes_on_wire(anchor)
    # The accuracy column is reported, not gated: at this reduced scale a
    # few-round CNN run amplifies any perturbation, so codec accuracy
    # tolerances are pinned by the dedicated convergence regressions
    # (tests/parallel/test_codec_sessions.py) on a config where the bound
    # has measured headroom.  The wire tallies above are deterministic.
