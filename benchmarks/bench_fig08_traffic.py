"""Fig. 8: network traffic consumed to reach target accuracies.

Paper: the SFL approaches (which exchange features instead of full models)
consume far less traffic than FedAvg/PyramidFL, and MergeSFL the least.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_table
from repro.metrics.summary import best_accuracy, traffic_to_accuracy

from benchmarks.common import bench_overrides, run_once, smoke_mode


def test_fig08_network_traffic_cifar10(benchmark):
    result = run_once(
        benchmark, figures.figure8_network_traffic, datasets=("cifar10",),
        **bench_overrides(),
    )
    rows = [
        [row["dataset"], row["approach"], row["target_accuracy"], row["traffic_mb"]]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["dataset", "approach", "target_acc", "traffic_MB"], rows,
        title="Fig. 8: traffic to reach target accuracy (CIFAR-10 analogue, non-IID)",
    ))

    histories = result["histories"]["cifar10"]
    target = min(best_accuracy(history) for history in histories.values())
    split_traffic = traffic_to_accuracy(histories["locfedmix_sl"], target)
    fedavg_traffic = traffic_to_accuracy(histories["fedavg"], target)
    # Shape check: model splitting saves traffic compared to full-model FL.
    # Meaningless at smoke scale, where runs are cut to a couple of rounds.
    if not smoke_mode():
        assert split_traffic is not None and fedavg_traffic is not None
        assert split_traffic < fedavg_traffic
