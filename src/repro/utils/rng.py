"""Deterministic random number generator helpers.

All stochastic components in the package (data generation, partitioning,
device mode changes, bandwidth fluctuation, GA selection, weight
initialisation, dropout) draw from ``numpy.random.Generator`` instances
created here, so a single integer seed makes an entire experiment
reproducible.
"""

from __future__ import annotations

import numpy as np


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Create a new :class:`numpy.random.Generator`.

    Args:
        seed: Integer seed, or ``None`` for OS entropy.

    Returns:
        A ``Generator`` backed by PCG64.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so children do not
    overlap even for adjacent seeds.

    Args:
        seed: Root seed.
        count: Number of child generators.

    Returns:
        List of independent generators.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def spawned_rng(seed: int, index: int) -> np.random.Generator:
    """Lazily create the ``index``-th child generator of ``seed``.

    Bit-for-bit identical to ``spawn_rngs(seed, count)[index]`` for any
    ``count > index``, but without materialising the whole family -- the
    training engines use this to derive per-round generators for an
    unbounded, monotonically growing round index.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(index,)))


def get_rng_state(rng: np.random.Generator) -> dict:
    """JSON-serialisable snapshot of a generator's bit-generator state."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a generator to a state captured by :func:`get_rng_state`."""
    rng.bit_generator.state = state
