"""Small numeric helpers shared across subsystems."""

from __future__ import annotations

import numpy as np


def normalize_distribution(vector: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Normalise a non-negative vector so it sums to one.

    Args:
        vector: Non-negative array.
        eps: Numerical floor added when the vector sums to zero.

    Returns:
        A probability vector of the same shape.
    """
    vec = np.asarray(vector, dtype=np.float64)
    if np.any(vec < 0):
        raise ValueError("distribution entries must be non-negative")
    total = vec.sum()
    if total <= 0:
        return np.full_like(vec, 1.0 / max(vec.size, 1))
    return vec / (total + eps * 0)


def safe_divide(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Divide two scalars, returning ``default`` when the denominator is zero."""
    if denominator == 0:
        return default
    return numerator / denominator


def moving_average(previous: float, observation: float, alpha: float) -> float:
    """Exponential moving average used for worker state estimation (Eq. 5-6).

    ``alpha`` weights the previous estimate: ``alpha * previous +
    (1 - alpha) * observation``.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    return alpha * previous + (1.0 - alpha) * observation
