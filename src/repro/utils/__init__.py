"""Shared utilities: RNG handling, logging helpers, small numeric helpers."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.logging import get_logger
from repro.utils.numeric import (
    normalize_distribution,
    safe_divide,
    moving_average,
)

__all__ = [
    "new_rng",
    "spawn_rngs",
    "get_logger",
    "normalize_distribution",
    "safe_divide",
    "moving_average",
]
