"""Logging helpers.

The package logs through the standard :mod:`logging` module under the
``repro`` namespace.  Library code never configures handlers; applications
(examples, benchmarks) call :func:`configure_logging` once.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger in the package namespace.

    Args:
        name: Sub-logger name (e.g. ``"core.mergesfl"``); ``None`` returns
            the package root logger.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> None:
    """Attach a simple stream handler to the package root logger.

    Safe to call multiple times; only one handler is installed.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
