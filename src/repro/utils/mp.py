"""Shared multiprocessing helpers."""

from __future__ import annotations

import multiprocessing


def get_mp_context(start_method: str | None = None):
    """A multiprocessing context, preferring ``fork`` where available.

    Fork is the cheap option on Linux (no re-import, copy-on-write pages);
    platforms without it (Windows, and macOS defaults) fall back to their
    first supported method.  Both the intra-round
    :class:`~repro.parallel.process.ProcessExecutor` and the trial-level
    :class:`~repro.study.runner.StudyRunner` resolve their context here so
    the policy cannot diverge between the two process layers.
    """
    if start_method is None:
        available = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in available else available[0]
    return multiprocessing.get_context(start_method)
