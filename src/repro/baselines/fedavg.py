"""FedAvg baseline (McMahan et al., AISTATS'17).

Every worker trains the entire model locally with an identical, fixed batch
size; the PS averages the local models weighted by shard size.
"""

from __future__ import annotations

import numpy as np

from repro.api.algorithm import EngineBackedAlgorithm
from repro.api.registry import register_algorithm, register_policy
from repro.baselines.fl_engine import FLTrainingEngine
from repro.config import ExperimentConfig
from repro.core.worker import SplitWorker
from repro.data.dataset import TrainTestSplit
from repro.nn.module import Sequential
from repro.simulation.cluster import Cluster


class SelectAll:
    """FedAvg's trivial selection: every worker participates every round."""

    def select(
        self,
        round_index: int,
        durations: np.ndarray,
        label_distributions: np.ndarray,
        participation_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> list[int]:
        return list(range(durations.shape[0]))


class FedAvg(EngineBackedAlgorithm):
    """FedAvg facade: full-model local training + uniform participation."""

    def __init__(
        self,
        config: ExperimentConfig,
        model: Sequential,
        workers: list[SplitWorker],
        cluster: Cluster,
        data: TrainTestSplit,
        executor=None,
    ) -> None:
        self.engine = FLTrainingEngine(
            config=config,
            model=model,
            workers=workers,
            cluster=cluster,
            data=data,
            selection=SelectAll(),
            executor=executor,
        )

    @classmethod
    def from_components(cls, components) -> "FedAvg":
        """Build from :class:`~repro.api.components.ExperimentComponents`."""
        return cls(
            config=components.config,
            model=components.model,
            workers=components.worker_pool(),
            cluster=components.cluster,
            data=components.data,
            executor=components.executor,
        )


register_algorithm(
    "fedavg", FedAvg.from_components,
    description="FedAvg: full-model local training, uniform participation",
)


@register_policy("select_all", kind="fl_selection",
                 description="Every worker participates every round")
def _build_select_all(config: ExperimentConfig, **overrides) -> SelectAll:
    return SelectAll(**overrides)
