"""Control policies for the split-learning baselines.

These policies plug into :class:`repro.core.engine.SplitTrainingEngine`:

* :class:`FixedBatchPolicy` -- every worker participates with one identical
  batch size.  With ``merge_features=False`` this is typical SFL (SFL-T /
  LocFedMix-SL / SplitFed); with ``merge_features=True`` it is the SFL-FM
  motivation variant.
* :class:`RegulatedBatchPolicy` -- batch sizes follow Eq. 9 but there is no
  selection and no merging: the SFL-BR motivation variant and the AdaSFL
  baseline.

This module also registers the ``split_custom`` and ``fl_custom``
algorithms, which drive the respective engine with any policy from the
:data:`~repro.api.registry.POLICIES` registry, selected through
``extras['policy']`` (plus optional ``extras['policy_kwargs']``) -- the
config-driven way to run a registered custom policy without writing an
algorithm factory.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import POLICIES, register_algorithm, register_policy
from repro.core.batching import regulate_batch_sizes
from repro.exceptions import ConfigurationError
from repro.core.controller import ControlContext, RoundPlan
from repro.core.divergence import iid_distribution, kl_divergence, mixed_label_distribution


def _plan_from_batches(context: ControlContext, batch_sizes: np.ndarray) -> RoundPlan:
    """Build a plan selecting every worker with the given batch sizes."""
    selected = list(range(batch_sizes.shape[0]))
    target = iid_distribution(context.label_distributions)
    phi = mixed_label_distribution(context.label_distributions, batch_sizes, selected)
    return RoundPlan(
        selected=selected,
        batch_sizes={worker: int(batch_sizes[worker]) for worker in selected},
        merged_kl=kl_divergence(phi, target),
    )


class FixedBatchPolicy:
    """All workers, identical fixed batch size.

    Args:
        merge_features: Whether the PS merges features (SFL-FM) or updates
            the top model per worker (typical SFL).
        aggregate_every_iteration: ``True`` reproduces SplitFed's
            aggregation after every local update.
        batch_size: Identical batch size; defaults to the experiment's
            ``base_batch_size``.
    """

    def __init__(
        self,
        merge_features: bool = False,
        aggregate_every_iteration: bool = False,
        batch_size: int | None = None,
    ) -> None:
        self.merge_features = merge_features
        self.aggregate_every_iteration = aggregate_every_iteration
        self._batch_size = batch_size

    def plan_round(self, context: ControlContext) -> RoundPlan:
        batch = self._batch_size if self._batch_size is not None else context.base_batch_size
        num_workers = context.per_sample_durations.shape[0]
        return _plan_from_batches(
            context, np.full(num_workers, batch, dtype=np.int64)
        )


class RegulatedBatchPolicy:
    """All workers, batch sizes regulated by Eq. 9, no merging or selection."""

    def __init__(
        self,
        merge_features: bool = False,
        aggregate_every_iteration: bool = False,
    ) -> None:
        self.merge_features = merge_features
        self.aggregate_every_iteration = aggregate_every_iteration

    def plan_round(self, context: ControlContext) -> RoundPlan:
        batch_sizes = regulate_batch_sizes(
            context.per_sample_durations, context.max_batch_size
        )
        return _plan_from_batches(context, batch_sizes)


@register_policy("fixed_batch", kind="split_control",
                 description="All workers, identical fixed batch size")
def _build_fixed_batch(config, **overrides) -> FixedBatchPolicy:
    return FixedBatchPolicy(**overrides)


@register_policy("regulated_batch", kind="split_control",
                 description="All workers, Eq. 9 regulated batch sizes")
def _build_regulated_batch(config, **overrides) -> RegulatedBatchPolicy:
    return RegulatedBatchPolicy(**overrides)


def _configured_policy(config, expected_kind: str):
    """Build the policy named by ``extras['policy']`` via the registry.

    Entries registered with a ``kind`` are checked against the engine's
    expected kind upfront, so a split/FL mismatch fails with a clear
    configuration error instead of an attribute error mid-round; entries
    without a ``kind`` (duck-typed plugins) are accepted as-is.
    """
    name = config.extras.get("policy")
    if not name:
        raise ConfigurationError(
            f"algorithm {config.algorithm!r} requires extras['policy'] "
            f"naming a registered policy; known: {POLICIES.names()}"
        )
    factory = POLICIES.get(name)
    kind = POLICIES.metadata(name).get("kind")
    if kind is not None and kind != expected_kind:
        compatible = sorted(
            entry for entry in POLICIES.names()
            if POLICIES.metadata(entry).get("kind") in (None, expected_kind)
        )
        raise ConfigurationError(
            f"policy {name!r} is a {kind} policy, but algorithm "
            f"{config.algorithm!r} needs a {expected_kind} policy; "
            f"compatible: {compatible}"
        )
    return factory(config, **config.extras.get("policy_kwargs", {}))


@register_algorithm(
    "split_custom",
    description="Split engine driven by a POLICIES-registry control policy "
                "(extras['policy'])",
)
def _build_split_custom(components):
    from repro.core.engine import SplitTrainingEngine

    return SplitTrainingEngine(
        config=components.config,
        split=components.split,
        workers=components.worker_pool(),
        cluster=components.cluster,
        data=components.data,
        policy=_configured_policy(components.config, "split_control"),
        bandwidth_budget_override=components.bandwidth_budget,
        executor=components.executor,
    )


@register_algorithm(
    "fl_custom",
    description="FL engine driven by a POLICIES-registry selection strategy "
                "(extras['policy'])",
)
def _build_fl_custom(components):
    from repro.baselines.fl_engine import FLTrainingEngine

    return FLTrainingEngine(
        config=components.config,
        model=components.model,
        workers=components.worker_pool(),
        cluster=components.cluster,
        data=components.data,
        selection=_configured_policy(components.config, "fl_selection"),
        executor=components.executor,
    )
