"""Control policies for the split-learning baselines.

These policies plug into :class:`repro.core.engine.SplitTrainingEngine`:

* :class:`FixedBatchPolicy` -- every worker participates with one identical
  batch size.  With ``merge_features=False`` this is typical SFL (SFL-T /
  LocFedMix-SL / SplitFed); with ``merge_features=True`` it is the SFL-FM
  motivation variant.
* :class:`RegulatedBatchPolicy` -- batch sizes follow Eq. 9 but there is no
  selection and no merging: the SFL-BR motivation variant and the AdaSFL
  baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.batching import regulate_batch_sizes
from repro.core.controller import ControlContext, RoundPlan
from repro.core.divergence import iid_distribution, kl_divergence, mixed_label_distribution


def _plan_from_batches(context: ControlContext, batch_sizes: np.ndarray) -> RoundPlan:
    """Build a plan selecting every worker with the given batch sizes."""
    selected = list(range(batch_sizes.shape[0]))
    target = iid_distribution(context.label_distributions)
    phi = mixed_label_distribution(context.label_distributions, batch_sizes, selected)
    return RoundPlan(
        selected=selected,
        batch_sizes={worker: int(batch_sizes[worker]) for worker in selected},
        merged_kl=kl_divergence(phi, target),
    )


class FixedBatchPolicy:
    """All workers, identical fixed batch size.

    Args:
        merge_features: Whether the PS merges features (SFL-FM) or updates
            the top model per worker (typical SFL).
        aggregate_every_iteration: ``True`` reproduces SplitFed's
            aggregation after every local update.
        batch_size: Identical batch size; defaults to the experiment's
            ``base_batch_size``.
    """

    def __init__(
        self,
        merge_features: bool = False,
        aggregate_every_iteration: bool = False,
        batch_size: int | None = None,
    ) -> None:
        self.merge_features = merge_features
        self.aggregate_every_iteration = aggregate_every_iteration
        self._batch_size = batch_size

    def plan_round(self, context: ControlContext) -> RoundPlan:
        batch = self._batch_size if self._batch_size is not None else context.base_batch_size
        num_workers = context.per_sample_durations.shape[0]
        return _plan_from_batches(
            context, np.full(num_workers, batch, dtype=np.int64)
        )


class RegulatedBatchPolicy:
    """All workers, batch sizes regulated by Eq. 9, no merging or selection."""

    def __init__(
        self,
        merge_features: bool = False,
        aggregate_every_iteration: bool = False,
    ) -> None:
        self.merge_features = merge_features
        self.aggregate_every_iteration = aggregate_every_iteration

    def plan_round(self, context: ControlContext) -> RoundPlan:
        batch_sizes = regulate_batch_sizes(
            context.per_sample_durations, context.max_batch_size
        )
        return _plan_from_batches(context, batch_sizes)
