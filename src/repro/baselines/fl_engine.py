"""Federated-learning engine for the full-model baselines (FedAvg, PyramidFL).

Unlike the split engine, workers train the *entire* model locally and only
exchange model parameters with the PS, so communication consists of model
uploads/downloads and compute time is charged for the full network.

Like :class:`~repro.core.engine.SplitTrainingEngine`, this engine
implements the :class:`~repro.api.algorithm.Algorithm` interface:
steppable rounds with a monotonic index, and full ``state_dict()`` /
``load_state_dict()`` support for checkpoint/resume.  Rounds follow the
same staged structure (plan -> local-step -> aggregate), with the stage
bodies bound into :class:`~repro.parallel.pipeline.FullRoundOps` and driven
by the configured :class:`~repro.parallel.pipeline.PipelineScheduler`.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.api.algorithm import Algorithm
from repro.config import ExperimentConfig
from repro.core.elastic import (
    ElasticController,
    ElasticRound,
    build_elastic_controller,
)
from repro.core.worker import SplitWorker
from repro.data.dataset import TrainTestSplit
from repro.exceptions import ExecutorDeathError
from repro.metrics.history import History, RoundRecord, wire_round_delta
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import estimate_forward_flops
from repro.nn.module import Sequential
from repro.nn.serialization import (
    average_state_dicts,
    load_module_extra_state,
    model_size_bytes,
    module_extra_state,
)
from repro.parallel.base import Executor
from repro.parallel.pipeline import FullRoundOps, PipelineScheduler, build_pipeline
from repro.parallel.serial import SerialExecutor
from repro.population.pool import WorkerPool, as_worker_pool
from repro.simulation.cluster import Cluster, LazyCluster
from repro.simulation.timing import (
    average_waiting_time,
    elastic_round_duration,
)
from repro.simulation.traffic import TrafficMeter
from repro.utils.logging import get_logger
from repro.utils.rng import spawned_rng

logger = get_logger("baselines.fl_engine")


class FLSelectionStrategy(Protocol):
    """Per-round worker selection for FL baselines."""

    def select(
        self,
        round_index: int,
        durations: np.ndarray,
        label_distributions: np.ndarray,
        participation_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> list[int]:
        """Return the worker ids participating in the round."""
        ...  # pragma: no cover - protocol definition


class FLTrainingEngine(Algorithm):
    """FedAvg-style training with a pluggable worker-selection strategy."""

    def __init__(
        self,
        config: ExperimentConfig,
        model: Sequential,
        workers: "list[SplitWorker] | WorkerPool",
        cluster: "Cluster | LazyCluster",
        data: TrainTestSplit,
        selection: FLSelectionStrategy,
        executor: Executor | None = None,
        pipeline: PipelineScheduler | None = None,
        elastic: ElasticController | None = None,
    ) -> None:
        self.config = config
        self.model = model.clone()
        self.pool = as_worker_pool(workers)
        self.cluster = cluster
        self.data = data
        self.selection = selection
        self.executor = executor if executor is not None else SerialExecutor()
        self.pipeline = pipeline if pipeline is not None else build_pipeline(config)
        #: Round elasticity (over-selection, first-k-of-n, rejoin); ``None``
        #: keeps the historical synchronous code paths untouched.
        self._elastic = (
            elastic if elastic is not None else build_elastic_controller(config)
        )

        self.loss_fn = CrossEntropyLoss()
        self.traffic = TrafficMeter()
        self.history = History(algorithm=config.algorithm)
        self.model_bytes = model_size_bytes(self.model)
        self.full_flops = estimate_forward_flops(self.model, data.feature_shape)
        #: Root seed of the per-round RNG streams; generators are derived
        #: lazily per round index so the round count is unbounded.
        self._round_seed = config.seed + 40617
        self._round_index = 0
        self._clock = 0.0
        self._current_lr = config.learning_rate

    # -- public API -----------------------------------------------------------
    @property
    def workers(self) -> list[SplitWorker]:
        """The eager worker list (raises for lazily-materialised populations)."""
        return self.pool.eager_workers

    def step_round(self) -> RoundRecord:
        """Execute one communication round and return its record."""
        self._run_round(self._round_index)
        self._round_index += 1
        return self.history.records[-1]

    @property
    def rounds_completed(self) -> int:
        """Number of communication rounds executed so far."""
        return self._round_index

    def global_model(self) -> Sequential:
        """A copy of the current global model, in evaluation mode."""
        model = self.model.clone()
        model.eval()
        return model

    def drain(self) -> None:
        """Wait for in-flight asynchronous dispatch (pipelined rounds)."""
        self.executor.drain()

    def close(self) -> None:
        """Release executor resources (worker processes, pools)."""
        self.executor.close()

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Every mutable piece of training state, for checkpoint/resume."""
        self.drain()
        state = {
            "round_index": self._round_index,
            "clock": self._clock,
            "current_lr": self._current_lr,
            "history": self.history.to_dict(),
            "model": self.model.state_dict(),
            "model_extra": module_extra_state(self.model),
            "traffic": self.traffic.state_dict(),
            "cluster": self.cluster.state_dict(),
            "workers": self.pool.workers_state(),
            "elastic": (
                self._elastic.state_dict() if self._elastic is not None else None
            ),
            "codec": self.executor.codec_state(),
        }
        if getattr(self.selection, "stateful", False):
            # Present only for stateful selection strategies (e.g. one
            # backed by a warm-started solver), so the historical strategies
            # keep their checkpoint format byte for byte.
            state["selection"] = self.selection.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore training state captured by :meth:`state_dict`."""
        self.pool.load_workers_state(state["workers"])
        self._round_index = int(state["round_index"])
        self._clock = float(state["clock"])
        self._current_lr = float(state["current_lr"])
        self.history = History.from_dict(state["history"])
        self.model.load_state_dict(state["model"])
        load_module_extra_state(self.model, state["model_extra"])
        self.traffic.load_state_dict(state["traffic"])
        self.cluster.load_state_dict(state["cluster"])
        if self._elastic is not None and state.get("elastic") is not None:
            self._elastic.load_state_dict(state["elastic"])
        self.executor.load_codec_state(state.get("codec"))
        if (getattr(self.selection, "stateful", False)
                and state.get("selection") is not None):
            self.selection.load_state_dict(state["selection"])

    # -- internals -------------------------------------------------------------
    def _run_round(self, round_index: int) -> None:
        config = self.config
        wire_before = self.executor.transport_stats()
        selected, selected_workers = self._stage_plan(round_index)
        # Elastic rounds draw their churn once, up front, against the
        # planned cohort; a death-recovery re-run reuses the same draw.
        elastic_state: ElasticRound | None = None
        if self._elastic is not None:
            elastic_state = self._elastic.begin_round(
                round_index, selected, self._durations_for(selected)
            )
        losses: list[float] = []
        accounting: dict = {}

        def account() -> None:
            # ACCOUNT: simulated time and traffic; bound into the ops so
            # the scheduler owns the whole stage order (idempotent -- the
            # engine invokes it again defensively below).
            if accounting:
                return
            duration, waiting = self._account_time_and_traffic(
                selected, elastic_state
            )
            self._clock += duration
            accounting["duration"] = duration
            accounting["waiting"] = waiting

        def make_ops(ids: list[int], workers: list[SplitWorker]) -> FullRoundOps:
            def train() -> list[dict[str, np.ndarray]]:
                # LOCAL_STEP: full-model training on every selected worker.
                return self.executor.train_full(
                    workers,
                    self.model,
                    self.loss_fn,
                    iterations=config.local_iterations,
                    batch_size=config.base_batch_size,
                    learning_rate=self._current_lr,
                )

            def aggregate(states: list[dict[str, np.ndarray]]) -> None:
                weights = []
                for worker in workers:
                    weights.append(float(worker.num_samples))
                    worker.participation_count += 1
                if elastic_state is None:
                    for state in states:
                        losses.append(self._local_loss(state))
                    self.model.load_state_dict(
                        average_state_dicts(states, weights)
                    )
                    return
                resolved = self._elastic.apply_aggregate(
                    elastic_state, ids, states, weights, self.model.state_dict()
                )
                # A missing reply carries no loss observation either.
                completed = set(elastic_state.completed)
                for worker, state in zip(workers, states):
                    if worker.worker_id in completed:
                        losses.append(self._local_loss(state))
                if resolved is None:
                    # Below the cohort quorum: the round leaves the global
                    # model unchanged.
                    return
                final_states, final_weights = resolved
                self.model.load_state_dict(
                    average_state_dicts(final_states, final_weights)
                )

            return FullRoundOps(
                executor=self.executor,
                workers=workers,
                train=train,
                aggregate=aggregate,
                account=account,
            )

        try:
            self.pipeline.run_full_round(make_ops(selected, selected_workers))
        except ExecutorDeathError as error:
            if elastic_state is None:
                raise
            self._recover_round(
                selected, selected_workers, elastic_state, error, make_ops,
                round_index,
            )
        account()
        # Round over: fold the cohort's mutable state back into the pool
        # (a no-op for eager populations, the release point for lazy ones).
        self.pool.release(selected_workers)
        population_stats = self.pool.collect_round_stats()

        duration, waiting = accounting["duration"], accounting["waiting"]
        accuracy, test_loss = self._evaluate()
        if elastic_state is not None:
            elastic_kwargs = {
                "dropped_ids": [int(w) for w in elastic_state.dropped],
                "completed_ids": [int(w) for w in elastic_state.completed],
                "rejoined_ids": [int(w) for w in elastic_state.rejoined],
                "dropout_rate": elastic_state.dropout_rate,
                "effective_cohort": elastic_state.effective_cohort,
            }
        else:
            elastic_kwargs = {"effective_cohort": len(selected)}
        wire, logical, ratio = wire_round_delta(
            wire_before, self.executor.transport_stats()
        )
        self.history.append(
            RoundRecord(
                round_index=round_index,
                sim_time=self._clock,
                duration=duration,
                waiting_time=waiting,
                traffic_mb=self.traffic.total_megabytes,
                train_loss=float(np.mean(losses)) if losses else 0.0,
                test_loss=test_loss,
                test_accuracy=accuracy,
                num_selected=len(selected),
                total_batch=config.base_batch_size * len(selected),
                selected_ids=[int(w) for w in selected],
                cache_hits=int(population_stats.get("cache_hits", 0)),
                cache_misses=int(population_stats.get("cache_misses", 0)),
                bytes_on_wire=wire,
                logical_bytes=logical,
                compression_ratio=ratio,
                **elastic_kwargs,
            )
        )
        self._current_lr *= config.lr_decay
        logger.debug("FL round %d: acc=%.3f", round_index, accuracy)

    def _stage_plan(
        self, round_index: int
    ) -> tuple[list[int], list[SplitWorker]]:
        """PLAN: refresh durations and run the selection strategy.

        When the pool supplies a candidate subset, the strategy sees dense
        candidate-local arrays and its picks are remapped to global ids.
        """
        self.cluster.advance_round(round_index)
        candidates = self.pool.plan_candidates(round_index)
        if candidates is None:
            durations = self._per_worker_durations()
        else:
            durations = self._durations_for(candidates)
        selected = self.selection.select(
            round_index,
            durations,
            self.pool.label_distributions(candidates),
            self.pool.participation_counts(candidates),
            spawned_rng(self._round_seed, round_index),
        )
        if not selected:
            raise RuntimeError("FL selection strategy selected no workers")
        if candidates is not None:
            selected = [int(candidates[local]) for local in selected]
        if self._elastic is not None:
            selected = self._elastic.over_select_ids(
                selected, self.pool, candidates
            )
        return selected, self.pool.checkout(selected)

    def _recover_round(
        self,
        selected: list[int],
        selected_workers: list[SplitWorker],
        elastic_state: ElasticRound,
        error: ExecutorDeathError,
        make_ops,
        round_index: int,
    ) -> None:
        """Re-run a round whose executor process died, with the survivors.

        Mirrors the split engine's recovery: the dirty pool is torn down
        (a fresh one spawns lazily), the lost workers become dropouts, and
        the round restarts with the survivors when enough of the planned
        cohort remains -- otherwise it yields no update but the session
        lives on.  A second death in the re-run propagates.
        """
        lost = sorted(
            {int(worker_id) for worker_id in error.worker_ids}
            & {int(worker_id) for worker_id in selected}
        )
        if not lost:
            raise error
        logger.warning(
            "FL round %d: executor death lost workers %s; re-planning with "
            "the survivors", round_index, lost,
        )
        self.executor.close()
        self._elastic.record_death(elastic_state, lost)
        lost_set = set(lost)
        survivors = [
            int(worker_id) for worker_id in selected
            if int(worker_id) not in lost_set
        ]
        if len(survivors) < self._elastic.min_cohort(len(elastic_state.planned)):
            elastic_state.no_update = True
            elastic_state.completed = []
            return
        survivor_workers = [
            worker for worker in selected_workers
            if worker.worker_id not in lost_set
        ]
        self.pipeline.run_full_round(make_ops(survivors, survivor_workers))

    def _local_loss(self, state: dict[str, np.ndarray]) -> float:
        """Training loss of a locally updated model on a small probe batch."""
        probe = self.model.clone()
        probe.load_state_dict(state)
        probe.eval()
        size = min(64, len(self.data.train))
        logits = probe.forward(self.data.train.data[:size])
        return self.loss_fn.forward(logits, self.data.train.targets[:size])

    def _per_worker_durations(self) -> np.ndarray:
        """Per-round duration of every worker (compute + model exchange)."""
        return self._durations_for(range(len(self.pool)))

    def _durations_for(self, ids) -> np.ndarray:
        """Per-round duration of a subset of workers, in ``ids`` order."""
        config = self.config
        durations = []
        for worker_id in ids:
            device = self.cluster[int(worker_id)]
            compute = (
                config.local_iterations
                * config.base_batch_size
                * device.compute_time_per_sample(self.full_flops)
            )
            transfer = 2 * device.model_transfer_time(self.model_bytes)
            durations.append(compute + transfer)
        return np.asarray(durations)

    def _account_time_and_traffic(
        self,
        selected: list[int],
        elastic_state: "ElasticRound | None" = None,
    ) -> tuple[float, float]:
        durations = self._durations_for(selected)
        self.traffic.add_model_exchange(self.model_bytes, num_workers=len(selected))
        deadline = (
            elastic_state.churn.deadline if elastic_state is not None else None
        )
        return (
            elastic_round_duration(durations, deadline),
            average_waiting_time(durations),
        )

    def _evaluate(self) -> tuple[float, float]:
        """Accuracy and loss of the global model on the test split."""
        self.model.eval()
        data = self.data.test.data
        targets = self.data.test.targets
        correct = 0
        losses = []
        batch = self.config.eval_batch_size
        for start in range(0, data.shape[0], batch):
            stop = start + batch
            batch_data = data[start:stop]
            logits = self.model.forward(batch_data)
            losses.append(
                self.loss_fn.forward(logits, targets[start:stop]) * batch_data.shape[0]
            )
            correct += int((logits.argmax(axis=1) == targets[start:stop]).sum())
        self.model.train()
        total = data.shape[0]
        if total == 0:
            return 0.0, 0.0
        return correct / total, float(np.sum(losses) / total)
