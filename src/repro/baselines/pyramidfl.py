"""PyramidFL baseline (Li et al., MobiCom'22), simplified.

PyramidFL performs fine-grained client selection that exploits the
divergence between selected and unselected workers to use both data and
compute efficiently.  The full system tunes per-client configurations
online; this reproduction keeps the part that matters for the paper's
comparison -- utility-driven selection -- and scores each worker by

* **statistical utility**: how much the worker's label distribution
  complements the already-selected mixture (moves it towards IID), and
* **system utility**: a penalty on slow workers so the synchronous round is
  not dominated by stragglers,

with an exploration term that favours rarely selected workers.  The
simplification is recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.api.algorithm import EngineBackedAlgorithm
from repro.api.registry import register_algorithm, register_policy
from repro.baselines.fl_engine import FLTrainingEngine
from repro.config import ExperimentConfig
from repro.core.divergence import iid_distribution, kl_divergence, mixed_label_distribution
from repro.core.worker import SplitWorker
from repro.data.dataset import TrainTestSplit
from repro.nn.module import Sequential
from repro.simulation.cluster import Cluster


class PyramidSelection:
    """Utility-driven worker selection with straggler avoidance."""

    def __init__(self, participation_fraction: float = 0.6, exploration: float = 0.2) -> None:
        if not 0.0 < participation_fraction <= 1.0:
            raise ValueError("participation_fraction must be in (0, 1]")
        if exploration < 0:
            raise ValueError("exploration must be non-negative")
        self.participation_fraction = participation_fraction
        self.exploration = exploration

    def select(
        self,
        round_index: int,
        durations: np.ndarray,
        label_distributions: np.ndarray,
        participation_counts: np.ndarray,
        rng: np.random.Generator,
    ) -> list[int]:
        num_workers = durations.shape[0]
        count = max(1, int(round(self.participation_fraction * num_workers)))
        target = iid_distribution(label_distributions)
        uniform_batches = np.ones(num_workers)

        selected: list[int] = []
        candidates = set(range(num_workers))
        max_duration = float(durations.max()) if durations.size else 1.0
        while len(selected) < count and candidates:
            best_worker = None
            best_score = -np.inf
            for worker in candidates:
                trial = selected + [worker]
                phi = mixed_label_distribution(
                    label_distributions, uniform_batches, trial
                )
                statistical = -kl_divergence(phi, target)
                system = -durations[worker] / max_duration
                explore = self.exploration / (participation_counts[worker] + 1.0)
                score = statistical + 0.5 * system + explore
                if score > best_score:
                    best_score = score
                    best_worker = worker
            selected.append(int(best_worker))
            candidates.remove(best_worker)
        return sorted(selected)


class PyramidFL(EngineBackedAlgorithm):
    """PyramidFL facade: full-model training + utility-driven selection."""

    def __init__(
        self,
        config: ExperimentConfig,
        model: Sequential,
        workers: list[SplitWorker],
        cluster: Cluster,
        data: TrainTestSplit,
        participation_fraction: float = 0.6,
        executor=None,
    ) -> None:
        self.engine = FLTrainingEngine(
            config=config,
            model=model,
            workers=workers,
            cluster=cluster,
            data=data,
            selection=PyramidSelection(participation_fraction=participation_fraction),
            executor=executor,
        )

    @classmethod
    def from_components(cls, components) -> "PyramidFL":
        """Build from :class:`~repro.api.components.ExperimentComponents`."""
        return cls(
            config=components.config,
            model=components.model,
            workers=components.worker_pool(),
            cluster=components.cluster,
            data=components.data,
            executor=components.executor,
        )


register_algorithm(
    "pyramidfl", PyramidFL.from_components,
    description="PyramidFL: utility-driven selection with straggler avoidance",
)


@register_policy("pyramid", kind="fl_selection",
                 description="Utility-driven FL worker selection")
def _build_pyramid_selection(config: ExperimentConfig, **overrides) -> PyramidSelection:
    return PyramidSelection(**overrides)
