"""Baselines evaluated in the paper plus the motivation variants.

Split-learning baselines (SplitFed, LocFedMix-SL, AdaSFL and the SFL-T /
SFL-FM / SFL-BR motivation variants) reuse the shared split training engine
with simple control policies; the federated-learning baselines (FedAvg,
PyramidFL) train full models locally through a dedicated FL engine.
"""

from repro.baselines.policies import (
    FixedBatchPolicy,
    RegulatedBatchPolicy,
)
from repro.baselines.sfl import SplitFed, LocFedMixSL, AdaSFL, SFLVariant
from repro.baselines.fl_engine import FLTrainingEngine, FLSelectionStrategy
from repro.baselines.fedavg import FedAvg, SelectAll
from repro.baselines.pyramidfl import PyramidFL, PyramidSelection

__all__ = [
    "FixedBatchPolicy",
    "RegulatedBatchPolicy",
    "SplitFed",
    "LocFedMixSL",
    "AdaSFL",
    "SFLVariant",
    "FLTrainingEngine",
    "FLSelectionStrategy",
    "FedAvg",
    "SelectAll",
    "PyramidFL",
    "PyramidSelection",
]
