"""Split-learning baselines built on the shared training engine.

* **SplitFed** (Thapa et al., AAAI'22): typical SFL that aggregates bottom
  models after every local update (high traffic).
* **LocFedMix-SL** (Oh et al., WWW'22): typical SFL with ``tau`` local
  iterations between aggregations; identical fixed batch sizes.
* **AdaSFL** (Liao et al., ToN'23): SFL with adaptive, per-worker batch
  sizes (Eq. 9) but no feature merging and no IID-aware selection.
* **SFLVariant**: the three motivation variants of Section II (SFL-T,
  SFL-FM, SFL-BR) expressed through the same policies.
"""

from __future__ import annotations

from repro.api.algorithm import EngineBackedAlgorithm
from repro.api.registry import register_algorithm
from repro.baselines.policies import FixedBatchPolicy, RegulatedBatchPolicy
from repro.config import ExperimentConfig
from repro.core.engine import SplitTrainingEngine
from repro.core.worker import SplitWorker
from repro.data.dataset import TrainTestSplit
from repro.exceptions import ConfigurationError
from repro.nn.split import SplitModel
from repro.simulation.cluster import Cluster


class _SplitBaseline(EngineBackedAlgorithm):
    """Common plumbing for split-learning baselines."""

    def __init__(
        self,
        config: ExperimentConfig,
        split: SplitModel,
        workers: list[SplitWorker],
        cluster: Cluster,
        data: TrainTestSplit,
        policy,
        bandwidth_budget_override: float | None = None,
        executor=None,
    ) -> None:
        self.policy = policy
        self.engine = SplitTrainingEngine(
            config=config,
            split=split,
            workers=workers,
            cluster=cluster,
            data=data,
            policy=policy,
            bandwidth_budget_override=bandwidth_budget_override,
            executor=executor,
        )

    @classmethod
    def from_components(cls, components, **kwargs) -> "_SplitBaseline":
        """Build from :class:`~repro.api.components.ExperimentComponents`."""
        return cls(
            components.config,
            components.split,
            components.worker_pool(),
            components.cluster,
            components.data,
            bandwidth_budget_override=components.bandwidth_budget,
            executor=components.executor,
            **kwargs,
        )


class SplitFed(_SplitBaseline):
    """SplitFed: typical SFL, aggregation after every local update."""

    def __init__(self, config, split, workers, cluster, data, **kwargs) -> None:
        policy = FixedBatchPolicy(
            merge_features=False, aggregate_every_iteration=True
        )
        super().__init__(config, split, workers, cluster, data, policy, **kwargs)


class LocFedMixSL(_SplitBaseline):
    """LocFedMix-SL: typical SFL with multiple local updates per round."""

    def __init__(self, config, split, workers, cluster, data, **kwargs) -> None:
        policy = FixedBatchPolicy(
            merge_features=False, aggregate_every_iteration=False
        )
        super().__init__(config, split, workers, cluster, data, policy, **kwargs)


class AdaSFL(_SplitBaseline):
    """AdaSFL: adaptive batch sizes for heterogeneous workers, no merging."""

    def __init__(self, config, split, workers, cluster, data, **kwargs) -> None:
        policy = RegulatedBatchPolicy(
            merge_features=False, aggregate_every_iteration=False
        )
        super().__init__(config, split, workers, cluster, data, policy, **kwargs)


class SFLVariant(_SplitBaseline):
    """The motivation variants of Section II: SFL-T, SFL-FM and SFL-BR."""

    VARIANTS = ("sfl_t", "sfl_fm", "sfl_br")

    def __init__(self, variant: str, config, split, workers, cluster, data, **kwargs) -> None:
        if variant not in self.VARIANTS:
            raise ConfigurationError(
                f"unknown SFL variant {variant!r}; known: {self.VARIANTS}"
            )
        if variant == "sfl_t":
            policy = FixedBatchPolicy(merge_features=False)
        elif variant == "sfl_fm":
            policy = FixedBatchPolicy(merge_features=True)
        else:  # sfl_br
            policy = RegulatedBatchPolicy(merge_features=False)
        self.variant = variant
        super().__init__(config, split, workers, cluster, data, policy, **kwargs)

    @classmethod
    def from_components(cls, components, **kwargs) -> "SFLVariant":
        """Build from components, reading the variant from the configuration."""
        return cls(
            components.config.algorithm,
            components.config,
            components.split,
            components.worker_pool(),
            components.cluster,
            components.data,
            bandwidth_budget_override=components.bandwidth_budget,
            executor=components.executor,
            **kwargs,
        )


register_algorithm(
    "splitfed", SplitFed.from_components,
    description="SplitFed: typical SFL, aggregation after every local update",
)
register_algorithm(
    "locfedmix_sl", LocFedMixSL.from_components,
    description="LocFedMix-SL: typical SFL with tau local updates per round",
)
register_algorithm(
    "adasfl", AdaSFL.from_components,
    description="AdaSFL: adaptive per-worker batch sizes, no merging",
)
for _variant in SFLVariant.VARIANTS:
    register_algorithm(
        _variant, SFLVariant.from_components,
        description=f"Section II motivation variant {_variant}",
    )
