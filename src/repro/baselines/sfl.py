"""Split-learning baselines built on the shared training engine.

* **SplitFed** (Thapa et al., AAAI'22): typical SFL that aggregates bottom
  models after every local update (high traffic).
* **LocFedMix-SL** (Oh et al., WWW'22): typical SFL with ``tau`` local
  iterations between aggregations; identical fixed batch sizes.
* **AdaSFL** (Liao et al., ToN'23): SFL with adaptive, per-worker batch
  sizes (Eq. 9) but no feature merging and no IID-aware selection.
* **SFLVariant**: the three motivation variants of Section II (SFL-T,
  SFL-FM, SFL-BR) expressed through the same policies.
"""

from __future__ import annotations

from repro.baselines.policies import FixedBatchPolicy, RegulatedBatchPolicy
from repro.config import ExperimentConfig
from repro.core.engine import SplitTrainingEngine
from repro.core.worker import SplitWorker
from repro.data.dataset import TrainTestSplit
from repro.exceptions import ConfigurationError
from repro.metrics.history import History
from repro.nn.split import SplitModel
from repro.simulation.cluster import Cluster


class _SplitBaseline:
    """Common plumbing for split-learning baselines."""

    def __init__(
        self,
        config: ExperimentConfig,
        split: SplitModel,
        workers: list[SplitWorker],
        cluster: Cluster,
        data: TrainTestSplit,
        policy,
        bandwidth_budget_override: float | None = None,
    ) -> None:
        self.policy = policy
        self.engine = SplitTrainingEngine(
            config=config,
            split=split,
            workers=workers,
            cluster=cluster,
            data=data,
            policy=policy,
            bandwidth_budget_override=bandwidth_budget_override,
        )

    def run(self, num_rounds: int | None = None) -> History:
        """Train and return the per-round history."""
        return self.engine.run(num_rounds)


class SplitFed(_SplitBaseline):
    """SplitFed: typical SFL, aggregation after every local update."""

    def __init__(self, config, split, workers, cluster, data, **kwargs) -> None:
        policy = FixedBatchPolicy(
            merge_features=False, aggregate_every_iteration=True
        )
        super().__init__(config, split, workers, cluster, data, policy, **kwargs)


class LocFedMixSL(_SplitBaseline):
    """LocFedMix-SL: typical SFL with multiple local updates per round."""

    def __init__(self, config, split, workers, cluster, data, **kwargs) -> None:
        policy = FixedBatchPolicy(
            merge_features=False, aggregate_every_iteration=False
        )
        super().__init__(config, split, workers, cluster, data, policy, **kwargs)


class AdaSFL(_SplitBaseline):
    """AdaSFL: adaptive batch sizes for heterogeneous workers, no merging."""

    def __init__(self, config, split, workers, cluster, data, **kwargs) -> None:
        policy = RegulatedBatchPolicy(
            merge_features=False, aggregate_every_iteration=False
        )
        super().__init__(config, split, workers, cluster, data, policy, **kwargs)


class SFLVariant(_SplitBaseline):
    """The motivation variants of Section II: SFL-T, SFL-FM and SFL-BR."""

    VARIANTS = ("sfl_t", "sfl_fm", "sfl_br")

    def __init__(self, variant: str, config, split, workers, cluster, data, **kwargs) -> None:
        if variant not in self.VARIANTS:
            raise ConfigurationError(
                f"unknown SFL variant {variant!r}; known: {self.VARIANTS}"
            )
        if variant == "sfl_t":
            policy = FixedBatchPolicy(merge_features=False)
        elif variant == "sfl_fm":
            policy = FixedBatchPolicy(merge_features=True)
        else:  # sfl_br
            policy = RegulatedBatchPolicy(merge_features=False)
        self.variant = variant
        super().__init__(config, split, workers, cluster, data, policy, **kwargs)
