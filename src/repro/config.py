"""Experiment configuration.

A single :class:`ExperimentConfig` drives every algorithm (MergeSFL, the
baselines and the motivation variants) through
:func:`repro.experiments.runner.run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

from repro.exceptions import ConfigurationError

#: Built-in algorithm names.  Kept for backwards compatibility; validation
#: consults :data:`repro.api.registry.ALGORITHMS`, which additionally
#: contains any third-party registrations.
KNOWN_ALGORITHMS = (
    "mergesfl",
    "mergesfl_no_fm",
    "mergesfl_no_br",
    "fedavg",
    "splitfed",
    "locfedmix_sl",
    "adasfl",
    "pyramidfl",
    "sfl_t",
    "sfl_fm",
    "sfl_br",
)

#: Built-in dataset names (see ``KNOWN_ALGORITHMS`` on registry validation).
KNOWN_DATASETS = ("har", "speech", "cifar10", "image100", "blobs")

#: Built-in model names (see ``KNOWN_ALGORITHMS`` on registry validation).
KNOWN_MODELS = ("mlp", "cnn_h", "cnn_s", "alexnet_s", "vgg_s")


@dataclass
class ExperimentConfig:
    """Full description of one training run.

    Attributes mirror the experimental parameters of Section V-A of the
    paper; defaults are scaled down so a run finishes quickly on CPU.
    """

    # Task ----------------------------------------------------------------
    algorithm: str = "mergesfl"
    dataset: str = "cifar10"
    model: str = "alexnet_s"
    model_width: float = 1.0

    # Federation ----------------------------------------------------------
    num_workers: int = 10
    num_rounds: int = 20
    local_iterations: int = 5          # tau in the paper
    non_iid_level: float = 0.0         # p = 1/delta; 0 means IID
    max_batch_size: int = 32           # D, assigned to the fastest worker
    base_batch_size: int = 16          # identical batch size for non-regulating baselines

    # Optimisation ---------------------------------------------------------
    learning_rate: float = 0.1
    lr_decay: float = 0.993
    momentum: float = 0.0
    weight_decay: float = 0.0
    max_grad_norm: float | None = 5.0

    # Data scale -----------------------------------------------------------
    train_samples: int = 2000
    test_samples: int = 400
    eval_batch_size: int = 128

    # Simulation -----------------------------------------------------------
    bandwidth_budget_mbps: float = 120.0   # ingress bandwidth budget B^h of the PS
    mode_change_interval: int = 20         # rounds between device mode re-draws
    estimator_alpha: float = 0.8           # moving-average coefficient (Eq. 5-6)

    # MergeSFL control knobs -------------------------------------------------
    kl_threshold: float = 0.05             # epsilon in Alg. 1
    ga_population: int = 20
    ga_generations: int = 15
    selection_fraction: float = 0.5        # m = N/2 initial population seed

    # Population -------------------------------------------------------------
    #: How registered workers are held: ``"eager"`` builds one live
    #: :class:`~repro.core.worker.SplitWorker` per registered worker (the
    #: historical behaviour); ``"lazy"`` keeps compact metadata rows in a
    #: :class:`~repro.population.registry.WorkerRegistry` and materialises
    #: live workers only for each round's selected cohort.  Both modes are
    #: bit-exact with each other; ``"lazy"`` bounds resident worker state by
    #: the cohort instead of the registered population.
    population: str = "eager"
    #: Rows per registry shard -- the granularity at which the lazy
    #: registry materialises its label-distribution column.
    population_shard_size: int = 4096
    #: Candidate-pool size for per-round planning under ``population="lazy"``.
    #: ``0`` plans over the full population (bit-exact with eager); a
    #: positive value plans each round over that many deterministically
    #: sampled candidates, keeping planning cost flat as registrations grow.
    population_candidates: int = 0
    #: Capacity of the lazy pool's per-worker bottom-model
    #: :class:`~repro.population.cache.DeltaCache` (LRU over recent
    #: participants); ``0`` disables delta caching.
    population_cache: int = 64

    # Elastic rounds ---------------------------------------------------------
    #: Master switch for elastic fault-tolerant rounds (see
    #: :mod:`repro.simulation.churn` and :mod:`repro.core.elastic`).  When
    #: ``False`` (the default) every selected worker is assumed to reply and
    #: trajectories are bit-exact with historical runs; the knobs below then
    #: must stay at their neutral defaults.
    elastic: bool = False
    #: Per-worker per-round probability of dropping (never replying).
    dropout_rate: float = 0.0
    #: Over-selection factor ``f``: the engines select ``ceil(f * K)``
    #: workers so the round still meets its cohort floor under churn.
    over_select_factor: float = 1.0
    #: Minimum fraction of the selected cohort that must reply for the
    #: round's aggregate to be applied; below it the round yields no update
    #: (the session survives and continues with the next round).
    min_cohort_fraction: float = 0.5
    #: Aggregation deadline as a multiple of the cohort's median planned
    #: duration: the server aggregates first-k-of-n at the deadline instead
    #: of waiting for the slowest worker.  ``0`` disables the deadline.
    straggler_deadline: float = 0.0
    #: How many rounds a missing worker's late update may lag before it is
    #: discarded instead of folded back into the aggregate.  ``0`` discards
    #: every late update (missing workers never rejoin).
    rejoin_staleness_bound: int = 0

    # Execution --------------------------------------------------------------
    #: How the per-worker compute of each round is executed: ``"serial"``,
    #: ``"batched"`` (vectorized over the worker axis) or ``"process"``
    #: (multiprocessing pool); see :mod:`repro.parallel`.  All backends are
    #: bit-exact with each other, so this is purely a speed knob.
    executor: str = "serial"
    #: How the stages of each round are scheduled: ``"sync"`` (strict stage
    #: order), ``"pipelined"`` (double-buffered cross-iteration overlap on
    #: executors that support asynchronous dispatch) or ``"staleness"``
    #: (dependency-tracked bounded-staleness scheduling); see
    #: :mod:`repro.parallel.pipeline`.  ``sync`` and ``pipelined`` are
    #: bit-exact with each other; ``staleness`` is bit-exact at
    #: ``staleness=0`` and a measured relaxation otherwise.
    pipeline: str = "sync"
    #: Staleness bound of the ``"staleness"`` scheduler: how many local
    #: updates a bottom forward may lag behind the strict schedule.  ``0``
    #: reproduces the pipelined schedule bit-exactly; ``>= 1`` relaxes the
    #: forward/backward dependency and enables cross-round pipelining
    #: (deterministic, executor-independent, but a different -- measured --
    #: trajectory).  Ignored by the other schedulers.
    staleness: int = 0
    #: How feature/gradient/mini-batch arrays cross the process executor's
    #: process boundary: ``"pipe"`` (pickle over a pipe) or ``"shm"``
    #: (shared-memory ring buffers, headers only over the pipe); see
    #: :mod:`repro.parallel.transport`.  Ignored by in-process executors.
    transport: str = "pipe"
    #: Transport payload codec for the feature/gradient arrays crossing the
    #: process boundary: ``"none"`` (bit-exact passthrough, the default),
    #: ``"fp16"``/``"bf16"`` (half-precision casts), ``"int8"`` (per-tensor
    #: affine quantization) or ``"topk"`` (sparsification with error
    #: feedback); see :mod:`repro.parallel.codec`.
    #: ``extras["codec_policy"]`` assigns codecs per payload class
    #: (``features``/``gradients``/``weights``) and
    #: ``extras["codec_topk_ratio"]`` tunes the top-k kept fraction.
    #: Ignored by in-process executors.  Lossy codecs are deterministic,
    #: transport-independent relaxations of the exact trajectory.
    codec: str = "none"
    #: How per-worker split points (cut depths into the bottom model) are
    #: chosen each round: ``"uniform"`` (every worker cuts at the global
    #: split layer -- bit-exact with the historical behaviour), ``"profile"``
    #: (a static depth per worker from its device class's compute/bandwidth
    #: profile) or ``"adaptive"`` (depths re-selected every round from
    #: observed durations and wire traffic); see :mod:`repro.splitpoint`.
    #: ``extras["split_index"]`` overrides the global cut layer and
    #: ``extras["split_depth_min"]``/``extras["split_depth_max"]`` bound the
    #: candidate depths a policy may assign.
    split_policy: str = "uniform"
    #: Which solver runs the per-round worker selection (Eq. 10-13, Alg. 1
    #: line 5): ``"ga"`` (the paper's genetic algorithm -- bit-exact with the
    #: historical behaviour), ``"ga-warm"`` (GA warm-started from the previous
    #: round's winner, with elite variable-fixing and symmetry breaking),
    #: ``"local-search"`` (greedy construction plus incremental 1-flip/1-swap
    #: refinement), ``"greedy"`` (the construction alone, the historical
    #: ablation) or ``"exact"`` (brute force, tiny instances only); see
    #: :mod:`repro.selection`.  ``extras["depth_aware_selection"] = True``
    #: additionally prices each candidate's ingress cost at its own split
    #: depth instead of the global scalar (requires a non-uniform
    #: ``split_policy``).
    selector: str = "ga"

    # Reproducibility --------------------------------------------------------
    seed: int = 0

    # Free-form extras (kept for forward compatibility of saved configs).
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` when any field is out of range.

        Component names are checked against the :mod:`repro.api.registry`
        registries (imported lazily to avoid a circular import), so
        third-party algorithms, datasets and models registered with the
        ``@register_*`` decorators validate exactly like built-ins.
        """
        from repro.api.registry import (
            ALGORITHMS,
            CODECS,
            DATASETS,
            EXECUTORS,
            MODELS,
            PIPELINES,
            SELECTION_SOLVERS,
            SPLIT_POLICIES,
            TRANSPORTS,
        )

        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(ALGORITHMS.unknown_message(self.algorithm))
        if self.dataset not in DATASETS:
            raise ConfigurationError(DATASETS.unknown_message(self.dataset))
        if self.model not in MODELS:
            raise ConfigurationError(MODELS.unknown_message(self.model))
        if self.executor not in EXECUTORS:
            raise ConfigurationError(EXECUTORS.unknown_message(self.executor))
        if self.pipeline not in PIPELINES:
            raise ConfigurationError(PIPELINES.unknown_message(self.pipeline))
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(TRANSPORTS.unknown_message(self.transport))
        if self.codec not in CODECS:
            raise ConfigurationError(CODECS.unknown_message(self.codec))
        if self.split_policy not in SPLIT_POLICIES:
            raise ConfigurationError(
                SPLIT_POLICIES.unknown_message(self.split_policy)
            )
        if self.selector not in SELECTION_SOLVERS:
            raise ConfigurationError(
                SELECTION_SOLVERS.unknown_message(self.selector)
            )
        self._validate_split_extras()
        depth_aware = self.extras.get("depth_aware_selection")
        if depth_aware is not None:
            if not isinstance(depth_aware, bool):
                raise ConfigurationError(
                    f"extras['depth_aware_selection'] must be a bool, "
                    f"got {depth_aware!r}"
                )
            if depth_aware and self.split_policy == "uniform":
                raise ConfigurationError(
                    "extras['depth_aware_selection'] requires a non-uniform "
                    "split_policy; under the uniform global cut every worker "
                    "already shares one exchange size"
                )
        policy_overrides = self.extras.get("codec_policy")
        if policy_overrides is not None:
            from repro.parallel.codec import PAYLOAD_CLASSES

            if not isinstance(policy_overrides, dict):
                raise ConfigurationError(
                    f"extras['codec_policy'] must be a dict of payload class "
                    f"-> codec name, got {policy_overrides!r}"
                )
            for klass, name in policy_overrides.items():
                if klass not in PAYLOAD_CLASSES:
                    raise ConfigurationError(
                        f"extras['codec_policy'] has unknown payload class "
                        f"{klass!r} (known: {', '.join(PAYLOAD_CLASSES)})"
                    )
                if name not in CODECS:
                    raise ConfigurationError(CODECS.unknown_message(name))
        positive_fields = {
            "num_workers": self.num_workers,
            "num_rounds": self.num_rounds,
            "local_iterations": self.local_iterations,
            "max_batch_size": self.max_batch_size,
            "base_batch_size": self.base_batch_size,
            "learning_rate": self.learning_rate,
            "train_samples": self.train_samples,
            "test_samples": self.test_samples,
            "eval_batch_size": self.eval_batch_size,
            "bandwidth_budget_mbps": self.bandwidth_budget_mbps,
            "mode_change_interval": self.mode_change_interval,
            "ga_population": self.ga_population,
            "ga_generations": self.ga_generations,
            "model_width": self.model_width,
        }
        for name, value in positive_fields.items():
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.max_batch_size < self.base_batch_size:
            raise ConfigurationError(
                f"max_batch_size ({self.max_batch_size}) must be >= "
                f"base_batch_size ({self.base_batch_size}): the regulated "
                f"range [base, max] would be empty"
            )
        if self.staleness < 0 or self.staleness != int(self.staleness):
            raise ConfigurationError(
                f"staleness must be a non-negative integer, got {self.staleness}"
            )
        if self.momentum < 0:
            raise ConfigurationError(
                f"momentum must be non-negative, got {self.momentum}"
            )
        if self.weight_decay < 0:
            raise ConfigurationError(
                f"weight_decay must be non-negative, got {self.weight_decay}"
            )
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ConfigurationError(
                f"max_grad_norm must be positive or None, got {self.max_grad_norm}"
            )
        if self.non_iid_level < 0:
            raise ConfigurationError(
                f"non_iid_level must be non-negative, got {self.non_iid_level}"
            )
        if not 0.0 < self.lr_decay <= 1.0:
            raise ConfigurationError(
                f"lr_decay must be in (0, 1], got {self.lr_decay}"
            )
        if not 0.0 <= self.estimator_alpha <= 1.0:
            raise ConfigurationError(
                f"estimator_alpha must be in [0, 1], got {self.estimator_alpha}"
            )
        if self.kl_threshold < 0:
            raise ConfigurationError(
                f"kl_threshold must be non-negative, got {self.kl_threshold}"
            )
        if not 0.0 < self.selection_fraction <= 1.0:
            raise ConfigurationError(
                f"selection_fraction must be in (0, 1], got {self.selection_fraction}"
            )
        if self.population not in ("eager", "lazy"):
            raise ConfigurationError(
                f"population must be 'eager' or 'lazy', got {self.population!r}"
            )
        if self.population_shard_size <= 0:
            raise ConfigurationError(
                f"population_shard_size must be positive, "
                f"got {self.population_shard_size}"
            )
        if self.population_candidates < 0:
            raise ConfigurationError(
                f"population_candidates must be non-negative, "
                f"got {self.population_candidates}"
            )
        if self.population_cache < 0:
            raise ConfigurationError(
                f"population_cache must be non-negative, "
                f"got {self.population_cache}"
            )
        if not 0.0 <= self.dropout_rate <= 1.0:
            raise ConfigurationError(
                f"dropout_rate must be in [0, 1], got {self.dropout_rate}"
            )
        if self.over_select_factor < 1.0:
            raise ConfigurationError(
                f"over_select_factor must be >= 1, got {self.over_select_factor}"
            )
        if not 0.0 < self.min_cohort_fraction <= 1.0:
            raise ConfigurationError(
                f"min_cohort_fraction must be in (0, 1], "
                f"got {self.min_cohort_fraction}"
            )
        if self.straggler_deadline < 0:
            raise ConfigurationError(
                f"straggler_deadline must be non-negative, "
                f"got {self.straggler_deadline}"
            )
        if (self.rejoin_staleness_bound < 0
                or self.rejoin_staleness_bound != int(self.rejoin_staleness_bound)):
            raise ConfigurationError(
                f"rejoin_staleness_bound must be a non-negative integer, "
                f"got {self.rejoin_staleness_bound}"
            )
        if not self.elastic and (
            self.dropout_rate > 0
            or self.over_select_factor > 1.0
            or self.straggler_deadline > 0
            or self.rejoin_staleness_bound > 0
        ):
            raise ConfigurationError(
                "dropout_rate/over_select_factor/straggler_deadline/"
                "rejoin_staleness_bound require elastic=True; with "
                "elastic=False they would be silently ignored"
            )
        if self.population == "eager" and self.population_candidates > 0:
            raise ConfigurationError(
                "population_candidates requires population='lazy'; the eager "
                "population always plans over every registered worker"
            )
        class_rates = self.extras.get("device_dropout_rates")
        if class_rates is not None:
            if not self.elastic:
                raise ConfigurationError(
                    "extras['device_dropout_rates'] requires elastic=True; "
                    "with elastic=False it would be silently ignored"
                )
            if not isinstance(class_rates, dict):
                raise ConfigurationError(
                    f"extras['device_dropout_rates'] must be a dict of device "
                    f"class name -> dropout rate, got {class_rates!r}"
                )
            for name, rate in class_rates.items():
                if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                    raise ConfigurationError(
                        f"extras['device_dropout_rates'][{name!r}] must be a "
                        f"rate in [0, 1], got {rate!r}"
                    )

    def _validate_split_extras(self) -> None:
        """Config-time checks of the split-point extras.

        Bounds that need the actual model depth (e.g. ``split_index`` vs the
        bottom model's layer count) are enforced at component-build time by
        :mod:`repro.api.components`; here we reject values that can never be
        valid for any model.
        """
        split_index = self.extras.get("split_index")
        if split_index is not None:
            if not isinstance(split_index, int) or isinstance(split_index, bool):
                raise ConfigurationError(
                    f"extras['split_index'] must be an integer cut layer, "
                    f"got {split_index!r}"
                )
            if split_index <= 0:
                raise ConfigurationError(
                    f"extras['split_index'] must be positive (the cut must "
                    f"leave at least one bottom layer), got {split_index}"
                )
        bounds = {}
        for key in ("split_depth_min", "split_depth_max"):
            value = self.extras.get(key)
            if value is None:
                continue
            if (not isinstance(value, int) or isinstance(value, bool)
                    or value <= 0):
                raise ConfigurationError(
                    f"extras[{key!r}] must be a positive integer depth, "
                    f"got {value!r}"
                )
            bounds[key] = value
        if ("split_depth_min" in bounds and "split_depth_max" in bounds
                and bounds["split_depth_min"] > bounds["split_depth_max"]):
            raise ConfigurationError(
                f"extras['split_depth_min'] ({bounds['split_depth_min']}) "
                f"must be <= extras['split_depth_max'] "
                f"({bounds['split_depth_max']})"
            )

    def to_dict(self) -> dict:
        """Plain-dict representation (JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict`; unknown keys go into ``extras``."""
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {key: value for key, value in payload.items() if key in known}
        extras = {key: value for key, value in payload.items() if key not in known}
        if extras:
            merged = dict(kwargs.get("extras", {}))
            merged.update(extras)
            kwargs["extras"] = merged
        return cls(**kwargs)

    def replace(self, **changes) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        payload = self.to_dict()
        payload.update(changes)
        return ExperimentConfig.from_dict(payload)
