"""Experiment assembly, per-figure reproduction entry points and reporting."""

from repro.experiments.runner import (
    run_experiment,
    build_components,
    build_algorithm,
    build_model_for,
)
from repro.experiments.reporting import format_table, format_comparison

__all__ = [
    "run_experiment",
    "build_components",
    "build_algorithm",
    "build_model_for",
    "format_table",
    "format_comparison",
]
