"""Per-figure reproduction entry points.

Every table and figure of the paper's evaluation has a function here that
runs the corresponding experiment(s) and returns the rows/series the paper
reports.  The default parameters are scaled down (fewer workers, rounds and
samples than the 80-device testbed) so the whole benchmark suite finishes
on a CPU-only machine; pass ``overrides`` to scale up.  EXPERIMENTS.md
records the measured numbers next to the paper's.

Under the hood every multi-run figure is a :class:`repro.study.Study`
(see :func:`approaches_study`): pass ``n_jobs`` to run its trials in
parallel worker processes, and use the study builders directly with a
:class:`repro.study.StudyStore` when a sweep should be resumable.  Both
knobs leave the results bit-identical to the serial path.
"""

from __future__ import annotations

import numpy as np

from repro.config import ExperimentConfig
from repro.data.synthetic import DATASET_SPECS, make_dataset
from repro.experiments.gradients import GradientComparison, compare_gradient_directions
from repro.metrics.history import History
from repro.metrics.summary import (
    best_accuracy,
    compare_histories,
    final_accuracy,
    mean_waiting_time,
    time_to_accuracy,
    traffic_to_accuracy,
)
from repro.nn.models import build_model, default_split_layer
from repro.nn.split import split_model
from repro.simulation.device import DEVICE_PROFILES
from repro.study import Study, StudyRunner, Trial
from repro.utils.rng import new_rng

#: The five approaches compared throughout Section V-B.
FIVE_APPROACHES = ("mergesfl", "pyramidfl", "adasfl", "locfedmix_sl", "fedavg")

#: The three motivation variants of Section II.
MOTIVATION_VARIANTS = ("sfl_br", "sfl_fm", "sfl_t")

#: Scaled-down defaults shared by every figure entry point.
FAST_DEFAULTS = {
    "num_workers": 8,
    "num_rounds": 5,
    "local_iterations": 8,
    "train_samples": 640,
    "test_samples": 200,
    "max_batch_size": 16,
    "base_batch_size": 8,
    "model_width": 0.5,
    "learning_rate": 0.08,
    "seed": 7,
}


def figure_config(dataset: str, algorithm: str, non_iid_level: float = 0.0,
                  **overrides) -> ExperimentConfig:
    """Build a config for one dataset/algorithm pair with fast defaults.

    The shared base of every figure entry point (and of the benchmark
    suite's study builder): the dataset's default model plus
    :data:`FAST_DEFAULTS`, with ``overrides`` applied on top.
    """
    spec = DATASET_SPECS[dataset]
    params = dict(FAST_DEFAULTS)
    params.update(overrides)
    return ExperimentConfig(
        algorithm=algorithm,
        dataset=dataset,
        model=spec.default_model,
        non_iid_level=non_iid_level,
        **params,
    )


#: Backwards-compatible private alias (pre-Study callers used ``_config``).
_config = figure_config


def approaches_study(
    dataset: str,
    approaches: tuple[str, ...] = FIVE_APPROACHES,
    non_iid_level: float = 0.0,
    study_name: str | None = None,
    **overrides,
) -> Study:
    """Describe a set of approaches on one dataset as a :class:`Study`.

    One trial per approach, named after it and tagged with the dataset and
    non-IID level; ``overrides`` apply to every trial's config.
    """
    if study_name is None:
        study_name = f"{dataset}-p{non_iid_level:g}-approaches"
    return Study(study_name, [
        Trial(approach, _config(dataset, approach, non_iid_level, **overrides),
              {"dataset": dataset, "algorithm": approach,
               "non_iid_level": non_iid_level})
        for approach in approaches
    ])


def run_approaches(
    dataset: str,
    approaches: tuple[str, ...] = FIVE_APPROACHES,
    non_iid_level: float = 0.0,
    n_jobs: int = 1,
    store=None,
    **overrides,
) -> dict[str, History]:
    """Run a set of approaches on one dataset and return their histories.

    Executes :func:`approaches_study` through a
    :class:`~repro.study.StudyRunner`; ``n_jobs`` parallelises over the
    approaches and ``store`` (a :class:`~repro.study.StudyStore`) makes the
    sweep resumable.  Results are bit-identical to running each config
    through ``run_experiment`` serially.
    """
    study = approaches_study(dataset, approaches, non_iid_level, **overrides)
    results = StudyRunner(study, store=store, n_jobs=n_jobs).run()
    return {approach: results[approach].history for approach in approaches}


# -- Section II motivation -----------------------------------------------------

def figure2_3_motivation(dataset: str = "cifar10", n_jobs: int = 1, **overrides) -> dict:
    """Figs. 2-3: SFL-T vs SFL-FM vs SFL-BR on non-IID data.

    Returns accuracy curves, completion times and average waiting times for
    the three motivation variants.
    """
    histories = run_approaches(
        dataset, approaches=MOTIVATION_VARIANTS, non_iid_level=10.0,
        n_jobs=n_jobs, **overrides
    )
    rows = []
    for name, history in histories.items():
        rows.append({
            "variant": name,
            "final_accuracy": final_accuracy(history),
            "total_time_s": history.records[-1].sim_time,
            "mean_waiting_time_s": mean_waiting_time(history),
        })
    return {"histories": histories, "rows": rows}


def figure4_gradient_directions(
    dataset: str = "cifar10",
    num_workers: int = 4,
    batch_size: int = 16,
    model_width: float = 0.5,
    seed: int = 7,
) -> GradientComparison:
    """Fig. 4: gradient direction of SFL-FM vs SFL-T vs standalone SGD.

    Builds per-worker mini-batches that are individually label-skewed but
    jointly IID, then runs the one-iteration gradient comparison.
    """
    spec = DATASET_SPECS[dataset]
    data = make_dataset(dataset, train_samples=1200, test_samples=100, seed=seed)
    model = build_model(
        spec.default_model,
        num_classes=data.num_classes,
        in_channels=data.feature_shape[0],
        image_size=data.feature_shape[1],
        width=model_width,
        seed=seed,
    )
    split = split_model(model, default_split_layer(spec.default_model, model))

    # Build skewed per-worker mini-batches whose union covers all classes.
    rng = new_rng(seed)
    targets = data.train.targets
    classes = np.arange(data.num_classes)
    shards = np.array_split(rng.permutation(classes), num_workers)
    batches = []
    for shard in shards:
        pool = np.flatnonzero(np.isin(targets, shard))
        picked = rng.choice(pool, size=min(batch_size, pool.size), replace=False)
        batches.append((data.train.data[picked], targets[picked]))
    return compare_gradient_directions(split, batches)


# -- Table II ---------------------------------------------------------------------

def table2_device_specifications() -> list[dict]:
    """Table II: Jetson device technical specifications used by the simulator."""
    rows = []
    for profile in DEVICE_PROFILES.values():
        rows.append({
            "device": profile.name,
            "ai_performance": profile.ai_performance,
            "gpu": profile.gpu,
            "cpu": profile.cpu,
            "memory_gb": profile.memory_gb,
            "train_gflops": profile.train_gflops,
            "num_modes": profile.num_modes,
        })
    return rows


# -- Section V-B overall performance ------------------------------------------------

def figure6_iid_accuracy(datasets: tuple[str, ...] = ("har", "cifar10"),
                         n_jobs: int = 1, **overrides) -> dict:
    """Fig. 6: time-to-accuracy of the five approaches on IID data."""
    results = {}
    for dataset in datasets:
        histories = run_approaches(dataset, non_iid_level=0.0, n_jobs=n_jobs,
                                   **overrides)
        results[dataset] = {
            "histories": histories,
            "comparison": compare_histories(histories),
        }
    return results


def figure7_noniid_accuracy(datasets: tuple[str, ...] = ("har", "cifar10"),
                            n_jobs: int = 1, **overrides) -> dict:
    """Fig. 7: time-to-accuracy of the five approaches at non-IID level p=10."""
    results = {}
    for dataset in datasets:
        histories = run_approaches(dataset, non_iid_level=10.0, n_jobs=n_jobs,
                                   **overrides)
        results[dataset] = {
            "histories": histories,
            "comparison": compare_histories(histories),
        }
    return results


def figure8_network_traffic(histories_per_dataset: dict[str, dict[str, History]] | None = None,
                            datasets: tuple[str, ...] = ("cifar10",),
                            n_jobs: int = 1, **overrides) -> dict:
    """Fig. 8: network traffic consumed to reach target accuracies.

    Reuses Fig. 7-style runs (non-IID) when none are supplied.
    """
    if histories_per_dataset is None:
        histories_per_dataset = {
            dataset: run_approaches(dataset, non_iid_level=10.0, n_jobs=n_jobs,
                                    **overrides)
            for dataset in datasets
        }
    rows = []
    for dataset, histories in histories_per_dataset.items():
        ceiling = min(best_accuracy(history) for history in histories.values())
        targets = [0.5 * ceiling, 0.75 * ceiling, ceiling]
        for name, history in histories.items():
            for target in targets:
                rows.append({
                    "dataset": dataset,
                    "approach": name,
                    "target_accuracy": target,
                    "traffic_mb": traffic_to_accuracy(history, target),
                })
    return {"histories": histories_per_dataset, "rows": rows}


def figure9_waiting_time(histories_per_dataset: dict[str, dict[str, History]] | None = None,
                         datasets: tuple[str, ...] = ("cifar10",),
                         n_jobs: int = 1, **overrides) -> dict:
    """Fig. 9: average per-round waiting time of the five approaches."""
    if histories_per_dataset is None:
        histories_per_dataset = {
            dataset: run_approaches(dataset, non_iid_level=10.0, n_jobs=n_jobs,
                                    **overrides)
            for dataset in datasets
        }
    rows = []
    for dataset, histories in histories_per_dataset.items():
        for name, history in histories.items():
            rows.append({
                "dataset": dataset,
                "approach": name,
                "mean_waiting_time_s": mean_waiting_time(history),
            })
    return {"histories": histories_per_dataset, "rows": rows}


# -- Section V-C non-IID levels ---------------------------------------------------

def figure10_noniid_levels(
    dataset: str = "cifar10",
    levels: tuple[float, ...] = (0.0, 2.0, 10.0),
    approaches: tuple[str, ...] = FIVE_APPROACHES,
    n_jobs: int = 1,
    **overrides,
) -> dict:
    """Fig. 10: final accuracy of each approach as the non-IID level grows.

    One grid study (levels x approaches); ``n_jobs`` parallelises over the
    whole grid rather than one level at a time.
    """
    study = Study.grid(
        f"{dataset}-fig10-noniid-levels",
        _config(dataset, approaches[0], levels[0], **overrides),
        axes={"non_iid_level": levels, "algorithm": approaches},
    )
    results = StudyRunner(study, n_jobs=n_jobs).run()
    rows = []
    histories: dict[float, dict[str, History]] = {level: {} for level in levels}
    for trial in study:
        level = trial.tags["non_iid_level"]
        name = trial.tags["algorithm"]
        history = results[trial.name].history
        histories[level][name] = history
        rows.append({
            "dataset": dataset,
            "non_iid_level": level,
            "approach": name,
            "final_accuracy": final_accuracy(history),
            "best_accuracy": best_accuracy(history),
        })
    return {"histories": histories, "rows": rows}


# -- Section V-D ablation ------------------------------------------------------------

def figure11_ablation(dataset: str = "cifar10", n_jobs: int = 1, **overrides) -> dict:
    """Fig. 11: MergeSFL vs MergeSFL w/o FM vs MergeSFL w/o BR (IID and non-IID)."""
    variants = ("mergesfl", "mergesfl_no_fm", "mergesfl_no_br")
    results = {}
    for label, level in (("iid", 0.0), ("non_iid", 10.0)):
        histories = run_approaches(
            dataset, approaches=variants, non_iid_level=level, n_jobs=n_jobs,
            **overrides
        )
        results[label] = {
            "histories": histories,
            "comparison": compare_histories(histories),
        }
    return results


# -- Section V-E scalability -----------------------------------------------------------

def figure12_scalability(
    dataset: str | None = None,
    scales: tuple[int, ...] | None = None,
    target_fraction: float = 0.9,
    n_jobs: int = 1,
    study: Study | None = None,
    **overrides,
) -> dict:
    """Fig. 12: completion time and training process at different system scales.

    The paper simulates 100/200/300/400 workers; the scaled-down default
    (``cifar10``, scales ``(8, 16, 24)``) sweeps smaller fleets but reports
    the same quantities (time to reach a common target accuracy, plus each
    scale's accuracy trajectory).  Pass ``study`` (e.g. a
    :mod:`repro.study.presets` grid such as ``paper-scalability``) to
    report on a ready-made ``num_workers`` sweep instead of building one;
    its trials must be tagged with ``num_workers``, and the sweep-shaping
    arguments (``dataset``, ``scales``, ``overrides``) must then be left
    unset -- they cannot be retrofitted onto a prebuilt study's trials.
    """
    if study is not None and (dataset is not None or scales is not None or overrides):
        conflicting = [name for name, given in (
            ("dataset", dataset is not None),
            ("scales", scales is not None),
            *((key, True) for key in sorted(overrides)),
        ) if given]
        raise ValueError(
            "figure12_scalability received both a prebuilt study and the "
            f"sweep-shaping arguments {conflicting}; apply them when "
            "building the study instead (e.g. get_preset(name, **overrides))"
        )
    if study is None:
        dataset = "cifar10" if dataset is None else dataset
        scales = (8, 16, 24) if scales is None else scales
        base_overrides = {key: value for key, value in overrides.items()
                          if key != "num_workers"}
        study = Study.grid(
            f"{dataset}-fig12-scalability",
            _config(dataset, "mergesfl", non_iid_level=0.0,
                    num_workers=scales[0], **base_overrides),
            axes={"num_workers": scales},
        )
    results = StudyRunner(study, n_jobs=n_jobs).run()
    histories: dict[int, History] = {
        trial.tags["num_workers"]: results[trial.name].history for trial in study
    }
    ceiling = min(best_accuracy(history) for history in histories.values())
    target = target_fraction * ceiling
    rows = []
    for scale, history in histories.items():
        rows.append({
            "num_workers": scale,
            "target_accuracy": target,
            "time_to_target_s": time_to_accuracy(history, target),
            "final_accuracy": final_accuracy(history),
        })
    return {"histories": histories, "rows": rows, "target": target}
