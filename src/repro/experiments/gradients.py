"""Gradient-direction analysis (Fig. 4 of the paper).

The paper's motivation compares, for a single iteration starting from the
same model, the top-model gradient produced by

* typical SFL (SFL-T): the top model is updated per worker on its own
  non-IID mini-batch,
* SFL with feature merging (SFL-FM): the top model sees the merged,
  approximately IID mini-batch,
* standalone SGD: the whole model is trained centrally on the union of the
  mini-batches (the reference "right" direction).

Fig. 4 visualises these gradients with PCA; this module computes both the
2-D PCA projection and the cosine alignment with the standalone gradient,
which is the quantitative version of "SFL-FM is much closer to standalone
SGD than SFL-T".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Sequential
from repro.nn.split import SplitModel


@dataclass
class GradientComparison:
    """Result of the one-iteration gradient analysis.

    Attributes:
        cosine_fm: Cosine similarity between the SFL-FM top gradient and the
            standalone-SGD top gradient.
        cosine_t: Cosine similarity between the (averaged) SFL-T top
            gradients and the standalone-SGD top gradient.
        pca_points: Mapping from approach name to its 2-D PCA coordinates.
        bottom_cosines: Per-worker cosine similarity between the bottom
            gradients under SFL-FM and SFL-T.
    """

    cosine_fm: float
    cosine_t: float
    pca_points: dict[str, np.ndarray]
    bottom_cosines: list[float]


def _flat_grads(model: Sequential) -> np.ndarray:
    """Concatenate all parameter gradients of a model into one vector."""
    grads = [param.grad.reshape(-1) for param in model.parameters()]
    if not grads:
        return np.zeros(0)
    return np.concatenate(grads)


def _cosine(first: np.ndarray, second: np.ndarray) -> float:
    """Cosine similarity, 0.0 when either vector is null."""
    norm = np.linalg.norm(first) * np.linalg.norm(second)
    if norm == 0:
        return 0.0
    return float(np.dot(first, second) / norm)


def _top_gradient_merged(
    split: SplitModel, batches: list[tuple[np.ndarray, np.ndarray]]
) -> np.ndarray:
    """Top-model gradient under feature merging (one iteration, no update)."""
    bottom = split.bottom.clone()
    top = split.top.clone()
    loss_fn = CrossEntropyLoss()
    features = [bottom.forward(data) for data, __ in batches]
    labels = [labs for __, labs in batches]
    merged = np.concatenate(features, axis=0)
    merged_labels = np.concatenate(labels, axis=0)
    top.zero_grad()
    logits = top.forward(merged)
    loss_fn.forward(logits, merged_labels)
    top.backward(loss_fn.backward())
    return _flat_grads(top)


def _top_gradient_per_worker(
    split: SplitModel, batches: list[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Average per-worker top gradient under typical SFL, plus each worker's."""
    loss_fn = CrossEntropyLoss()
    per_worker = []
    for data, labels in batches:
        bottom = split.bottom.clone()
        top = split.top.clone()
        top.zero_grad()
        features = bottom.forward(data)
        logits = top.forward(features)
        loss_fn.forward(logits, labels)
        top.backward(loss_fn.backward())
        per_worker.append(_flat_grads(top))
    return np.mean(np.stack(per_worker), axis=0), per_worker


def _standalone_gradient(
    split: SplitModel, batches: list[tuple[np.ndarray, np.ndarray]]
) -> np.ndarray:
    """Top-part gradient of standalone SGD on the union mini-batch."""
    full = Sequential(list(split.bottom.clone().layers) + list(split.top.clone().layers))
    loss_fn = CrossEntropyLoss()
    data = np.concatenate([batch for batch, __ in batches], axis=0)
    labels = np.concatenate([labs for __, labs in batches], axis=0)
    full.zero_grad()
    logits = full.forward(data)
    loss_fn.forward(logits, labels)
    full.backward(loss_fn.backward())
    top_params = len(split.top.parameters())
    grads = [param.grad.reshape(-1) for param in full.parameters()[-top_params:]]
    return np.concatenate(grads) if grads else np.zeros(0)


def _bottom_gradients(
    split: SplitModel,
    batches: list[tuple[np.ndarray, np.ndarray]],
    merged: bool,
) -> list[np.ndarray]:
    """Per-worker bottom gradients with or without feature merging."""
    loss_fn = CrossEntropyLoss()
    if merged:
        bottoms = [split.bottom.clone() for __ in batches]
        top = split.top.clone()
        features = [bottom.forward(data) for bottom, (data, __) in zip(bottoms, batches)]
        labels = np.concatenate([labs for __, labs in batches], axis=0)
        merged_features = np.concatenate(features, axis=0)
        logits = top.forward(merged_features)
        loss_fn.forward(logits, labels)
        grad = top.backward(loss_fn.backward())
        results = []
        offset = 0
        for bottom, (data, __) in zip(bottoms, batches):
            size = data.shape[0]
            bottom.zero_grad()
            bottom.backward(grad[offset:offset + size])
            results.append(_flat_grads(bottom))
            offset += size
        return results
    results = []
    for data, labs in batches:
        bottom = split.bottom.clone()
        top = split.top.clone()
        features = bottom.forward(data)
        logits = top.forward(features)
        loss_fn.forward(logits, labs)
        grad = top.backward(loss_fn.backward())
        bottom.zero_grad()
        bottom.backward(grad)
        results.append(_flat_grads(bottom))
    return results


def _pca_2d(vectors: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Project named vectors onto their two leading principal components."""
    names = list(vectors)
    matrix = np.stack([vectors[name] for name in names])
    centred = matrix - matrix.mean(axis=0, keepdims=True)
    __, __, v_t = np.linalg.svd(centred, full_matrices=False)
    components = v_t[:2] if v_t.shape[0] >= 2 else np.vstack([v_t, np.zeros_like(v_t)])
    projected = centred @ components.T
    return {name: projected[index] for index, name in enumerate(names)}


def compare_gradient_directions(
    split: SplitModel, batches: list[tuple[np.ndarray, np.ndarray]]
) -> GradientComparison:
    """Run the Fig. 4 analysis for one iteration.

    Args:
        split: A split model (fresh, untrained halves are fine).
        batches: One ``(data, labels)`` non-IID mini-batch per worker; their
            union should be approximately IID.

    Returns:
        A :class:`GradientComparison` with cosine alignments and PCA points.
    """
    if len(batches) < 2:
        raise ValueError("the analysis needs at least two worker mini-batches")
    standalone = _standalone_gradient(split, batches)
    merged = _top_gradient_merged(split, batches)
    per_worker_mean, per_worker = _top_gradient_per_worker(split, batches)

    pca_inputs = {"sgd": standalone, "sfl_fm": merged, "sfl_t": per_worker_mean}
    for index, grad in enumerate(per_worker):
        pca_inputs[f"sfl_t_worker{index}"] = grad

    bottom_fm = _bottom_gradients(split, batches, merged=True)
    bottom_t = _bottom_gradients(split, batches, merged=False)
    bottom_cosines = [
        _cosine(fm, t) for fm, t in zip(bottom_fm, bottom_t)
    ]
    return GradientComparison(
        cosine_fm=_cosine(merged, standalone),
        cosine_t=_cosine(per_worker_mean, standalone),
        pca_points=_pca_2d(pca_inputs),
        bottom_cosines=bottom_cosines,
    )
