"""Backwards-compatible experiment entry point.

Historically this module owned the whole pipeline: component assembly, an
``if/elif`` chain over algorithm names and a one-shot ``run()``.  That
machinery now lives in the :mod:`repro.api` layer -- components are
assembled by :func:`repro.api.components.build_components`, algorithms are
constructed through the :data:`repro.api.registry.ALGORITHMS` registry, and
execution is driven by the steppable, checkpointable
:class:`repro.api.session.Session`.

:func:`run_experiment` remains as a thin compatibility wrapper, and the
assembly helpers are re-exported here so existing imports keep working::

    from repro.experiments.runner import build_components, build_algorithm
"""

from __future__ import annotations

from repro.api.components import (  # noqa: F401  (re-exported for compatibility)
    DEFAULT_BUDGET_UTILISATION,
    ExperimentComponents,
    build_algorithm,
    build_components,
    build_model_for,
)
from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.metrics.history import History
from repro.utils.logging import get_logger

logger = get_logger("experiments.runner")


def run_experiment(config: ExperimentConfig) -> History:
    """Run one experiment end to end and return its history.

    Equivalent to ``Session.from_config(config).run()``; use a
    :class:`~repro.api.session.Session` directly for incremental execution,
    round callbacks or checkpointing.
    """
    logger.info(
        "running %s on %s/%s (%d workers, %d rounds, non-IID p=%s)",
        config.algorithm, config.dataset, config.model,
        config.num_workers, config.num_rounds, config.non_iid_level,
    )
    with Session.from_config(config) as session:
        return session.run()
