"""Plain-text tables for benchmark and example output."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Render a fixed-width text table.

    Args:
        headers: Column headers.
        rows: Table rows; cells are converted with ``str`` (floats get 4
            significant digits).
        title: Optional title line.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        if cell is None:
            return "-"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_comparison(
    table: dict[str, dict[str, float | None]], title: str = ""
) -> str:
    """Render the output of :func:`repro.metrics.summary.compare_histories`."""
    headers = ["approach", "final_acc", "best_acc", "time_to_target_s",
               "traffic_to_target_mb", "mean_wait_s", "total_time_s"]
    rows = []
    for name, metrics in table.items():
        rows.append([
            name,
            metrics.get("final_accuracy"),
            metrics.get("best_accuracy"),
            metrics.get("time_to_target_s"),
            metrics.get("traffic_to_target_mb"),
            metrics.get("mean_waiting_time_s"),
            metrics.get("total_time_s"),
        ])
    return format_table(headers, rows, title=title)
