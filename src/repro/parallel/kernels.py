"""Vectorized (worker-stacked) counterparts of the ``nn/layers`` kernels.

The :class:`~repro.parallel.batched.BatchedExecutor` stacks the selected
workers' identically-shaped bottom models along a new leading *worker* axis
``w`` and runs a single numpy kernel per layer for all workers at once:
activations have shape ``(w, batch, ...)`` and parameters ``(w, ...)``.
Each batched layer mirrors its serial counterpart operation for operation
(the convolutions even reuse the serial ``im2col``/``col2im`` kernels on a
flattened ``(w * batch, ...)`` view), so the results are bit-identical to
running the serial layer once per worker -- the executor equivalence suite
asserts exactly that.

Why this is faster despite identical FLOPs: one einsum/matmul over the
stacked operands replaces ``w`` small kernel launches, so the Python layer
dispatch and numpy call overhead -- the dominant cost at simulation scale
-- is paid once per layer instead of once per worker per layer.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.conv import Conv1d, Conv2d, col2im, im2col
from repro.nn.layers.linear import Linear
from repro.nn.layers.pooling import AvgPool2d, MaxPool1d, MaxPool2d
from repro.nn.layers.regularization import BatchNorm1d, BatchNorm2d, Dropout
from repro.nn.layers.shape import Flatten
from repro.nn.module import Sequential


class BatchedParameter:
    """A parameter replicated along the leading worker axis."""

    def __init__(self, data: np.ndarray, name: str) -> None:
        self.data = data
        self.grad = np.zeros_like(data)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class BatchedLayer:
    """Base class: one layer vectorized over ``count`` workers."""

    def __init__(self, count: int) -> None:
        self.count = count
        self.params: list[BatchedParameter] = []

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError


def _stack(array: np.ndarray, count: int) -> np.ndarray:
    """Replicate an array ``count`` times along a new leading axis."""
    return np.repeat(array[None], count, axis=0)


class BatchedLinear(BatchedLayer):
    """``y = x W^T + b`` for a stack of per-worker weights.

    ``np.matmul`` over a stacked operand runs the same GEMM per 2-D slice
    as the serial ``inputs @ W.T``, so the results match bitwise.
    """

    def __init__(self, layer: Linear, count: int) -> None:
        super().__init__(count)
        self.weight = BatchedParameter(_stack(layer.weight.data, count), "weight")
        self.params = [self.weight]
        self.bias = None
        if layer.bias is not None:
            self.bias = BatchedParameter(_stack(layer.bias.data, count), "bias")
            self.params.append(self.bias)
        self._cache_input: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._cache_input = inputs
        out = np.matmul(inputs, self.weight.data.transpose(0, 2, 1))
        if self.bias is not None:
            out = out + self.bias.data[:, None, :]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        inputs = self._cache_input
        self.weight.grad += np.matmul(grad_output.transpose(0, 2, 1), inputs)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=1)
        return np.matmul(grad_output, self.weight.data)


class BatchedConv2d(BatchedLayer):
    """2-D convolution with per-worker weights, via the serial im2col kernels.

    The column matrices are computed by the *serial* ``im2col`` on a
    ``(w * batch, ...)`` view (pure slicing, so values are identical), and
    the GEMMs gain a leading ``w`` axis on the same einsum signatures the
    serial layer uses.
    """

    def __init__(self, layer: Conv2d, count: int) -> None:
        super().__init__(count)
        self.kernel_size = layer.kernel_size
        self.stride = layer.stride
        self.padding = layer.padding
        self.out_channels = layer.out_channels
        self.weight = BatchedParameter(_stack(layer.weight.data, count), "weight")
        self.params = [self.weight]
        self.bias = None
        if layer.bias is not None:
            self.bias = BatchedParameter(_stack(layer.bias.data, count), "bias")
            self.params.append(self.bias)
        self._cache: tuple[np.ndarray, tuple[int, ...], tuple[int, int]] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        w, batch = inputs.shape[:2]
        flat = inputs.reshape(w * batch, *inputs.shape[2:])
        cols, out_size = im2col(flat, self.kernel_size, self.stride, self.padding)
        cols = cols.reshape(w, batch, *cols.shape[1:])
        self._cache = (cols, inputs.shape, out_size)
        out = np.einsum("wof,wbfl->wbol", self.weight.data, cols)
        if self.bias is not None:
            out = out + self.bias.data[:, None, :, None]
        return out.reshape(w, batch, self.out_channels, out_size[0], out_size[1])

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        cols, input_shape, out_size = self._cache
        w, batch = input_shape[:2]
        grad = grad_output.reshape(w, batch, self.out_channels, -1)
        self.weight.grad += np.einsum("wbol,wbfl->wof", grad, cols)
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(1, 3))
        grad_cols = np.einsum("wof,wbol->wbfl", self.weight.data, grad)
        grad_flat = col2im(
            grad_cols.reshape(w * batch, *grad_cols.shape[2:]),
            (w * batch, *input_shape[2:]),
            self.kernel_size,
            self.stride,
            self.padding,
            out_size,
        )
        return grad_flat.reshape(input_shape)


class BatchedConv1d(BatchedLayer):
    """1-D convolution, delegating to the 2-D kernels like the serial layer."""

    def __init__(self, layer: Conv1d, count: int) -> None:
        super().__init__(count)
        self._conv = BatchedConv2d(layer._conv, count)
        self.params = self._conv.params

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = self._conv.forward(inputs[:, :, :, None, :])
        return out[:, :, :, 0, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self._conv.backward(grad_output[:, :, :, None, :])
        return grad[:, :, :, 0, :]


class BatchedReLU(BatchedLayer):
    def __init__(self, layer: ReLU, count: int) -> None:
        super().__init__(count)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class BatchedTanh(BatchedLayer):
    def __init__(self, layer: Tanh, count: int) -> None:
        super().__init__(count)
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._output**2)


class BatchedSigmoid(BatchedLayer):
    def __init__(self, layer: Sigmoid, count: int) -> None:
        super().__init__(count)
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-inputs))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._output * (1.0 - self._output)


class BatchedFlatten(BatchedLayer):
    def __init__(self, layer: Flatten, count: int) -> None:
        super().__init__(count)
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], inputs.shape[1], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)


class BatchedMaxPool2d(BatchedLayer):
    def __init__(self, layer: MaxPool2d, count: int) -> None:
        super().__init__(count)
        self.kernel_size = layer.kernel_size
        self._cache: tuple[np.ndarray, tuple[int, ...]] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        kh, kw = self.kernel_size
        w, batch, channels, height, width = inputs.shape
        out_h, out_w = height // kh, width // kw
        trimmed = inputs[:, :, :, : out_h * kh, : out_w * kw]
        windows = trimmed.reshape(w, batch, channels, out_h, kh, out_w, kw)
        out = windows.max(axis=(4, 6))
        expanded = out[:, :, :, :, None, :, None]
        mask = (windows == expanded).astype(np.float64)
        counts = mask.sum(axis=(4, 6), keepdims=True)
        mask = mask / counts
        self._cache = (mask, inputs.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask, input_shape = self._cache
        kh, kw = self.kernel_size
        w, batch, channels, height, width = input_shape
        out_h, out_w = height // kh, width // kw
        grad_windows = mask * grad_output[:, :, :, :, None, :, None]
        grad_trimmed = grad_windows.reshape(
            w, batch, channels, out_h * kh, out_w * kw
        )
        grad_input = np.zeros(input_shape, dtype=np.float64)
        grad_input[:, :, :, : out_h * kh, : out_w * kw] = grad_trimmed
        return grad_input


class BatchedMaxPool1d(BatchedLayer):
    def __init__(self, layer: MaxPool1d, count: int) -> None:
        super().__init__(count)
        self._pool = BatchedMaxPool2d(layer._pool, count)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = self._pool.forward(inputs[:, :, :, None, :])
        return out[:, :, :, 0, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self._pool.backward(grad_output[:, :, :, None, :])
        return grad[:, :, :, 0, :]


class BatchedAvgPool2d(BatchedLayer):
    def __init__(self, layer: AvgPool2d, count: int) -> None:
        super().__init__(count)
        self.kernel_size = layer.kernel_size
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        w, batch, channels, height, width = inputs.shape
        out_h, out_w = height // k, width // k
        self._input_shape = inputs.shape
        trimmed = inputs[:, :, :, : out_h * k, : out_w * k]
        windows = trimmed.reshape(w, batch, channels, out_h, k, out_w, k)
        return windows.mean(axis=(4, 6))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        w, batch, channels, height, width = self._input_shape
        out_h, out_w = height // k, width // k
        grad = np.repeat(np.repeat(grad_output, k, axis=3), k, axis=4) / (k * k)
        grad_input = np.zeros(self._input_shape, dtype=np.float64)
        grad_input[:, :, :, : out_h * k, : out_w * k] = grad
        return grad_input


class _BatchedBatchNormBase(BatchedLayer):
    """Shared machinery for stacked 1-D and 2-D batch normalisation.

    Normalisation runs on a ``(w, samples, features)`` view; every
    reduction is over the middle (samples) axis, which numpy evaluates as
    the same sequential row accumulation the serial layer's ``axis=0``
    reductions use -- so batch statistics, outputs and gradients are
    bit-identical per worker slice.  Each worker carries its own running
    statistics, exactly like the per-worker clones of serial execution.
    """

    def __init__(self, layer, count: int) -> None:
        super().__init__(count)
        self.num_features = layer.num_features
        self.momentum = layer.momentum
        self.eps = layer.eps
        self.training = True
        self.gamma = BatchedParameter(_stack(layer.gamma.data, count), "gamma")
        self.beta = BatchedParameter(_stack(layer.beta.data, count), "beta")
        self.params = [self.gamma, self.beta]
        self.running_mean = _stack(layer.running_mean, count).copy()
        self.running_var = _stack(layer.running_var, count).copy()
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def _normalize(self, flat: np.ndarray) -> np.ndarray:
        """Normalise a ``(w, samples, features)`` view, as the serial layer."""
        if self.training:
            mean = flat.mean(axis=1)
            var = flat.var(axis=1)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (flat - mean[:, None, :]) * inv_std[:, None, :]
        self._cache = (normalized, inv_std, flat - mean[:, None, :])
        return normalized * self.gamma.data[:, None, :] + self.beta.data[:, None, :]

    def _denormalize_grad(self, grad_flat: np.ndarray) -> np.ndarray:
        """Backward pass on the ``(w, samples, features)`` view."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, centered = self._cache
        samples = grad_flat.shape[1]
        self.gamma.grad += (grad_flat * normalized).sum(axis=1)
        self.beta.grad += grad_flat.sum(axis=1)
        if not self.training:
            return grad_flat * self.gamma.data[:, None, :] * inv_std[:, None, :]
        grad_norm = grad_flat * self.gamma.data[:, None, :]
        grad_var = (grad_norm * centered).sum(axis=1) * -0.5 * inv_std**3
        grad_mean = (-grad_norm * inv_std[:, None, :]).sum(axis=1) + grad_var * (
            -2.0 * centered.mean(axis=1)
        )
        return (
            grad_norm * inv_std[:, None, :]
            + grad_var[:, None, :] * 2.0 * centered / samples
            + grad_mean[:, None, :] / samples
        )


class BatchedBatchNorm1d(_BatchedBatchNormBase):
    """Stacked batch normalisation over ``(w, batch, features)`` inputs."""

    def __init__(self, layer: BatchNorm1d, count: int) -> None:
        super().__init__(layer, count)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self._normalize(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self._denormalize_grad(grad_output)


class BatchedBatchNorm2d(_BatchedBatchNormBase):
    """Stacked batch normalisation over ``(w, batch, C, H, W)`` inputs.

    The channels-last flattening mirrors the serial layer's
    ``transpose(0, 2, 3, 1).reshape(-1, C)`` per worker slice, so the
    per-channel sample order inside every reduction is identical.
    """

    def __init__(self, layer: BatchNorm2d, count: int) -> None:
        super().__init__(layer, count)
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        w, batch, channels, height, width = inputs.shape
        flat = inputs.transpose(0, 1, 3, 4, 2).reshape(w, -1, self.num_features)
        out = self._normalize(flat)
        return out.reshape(w, batch, height, width, channels).transpose(0, 1, 4, 2, 3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        w, batch, channels, height, width = self._input_shape
        grad_flat = grad_output.transpose(0, 1, 3, 4, 2).reshape(
            w, -1, self.num_features
        )
        grad = self._denormalize_grad(grad_flat)
        return grad.reshape(w, batch, height, width, channels).transpose(0, 1, 4, 2, 3)


class BatchedDropout(BatchedLayer):
    """Inverted dropout with one RNG clone per worker.

    Serial execution clones the template layer once per worker, so every
    worker's mask stream starts from the template's current RNG state; the
    batched layer reproduces that by deep-copying the template generator
    ``count`` times and drawing each worker's mask from its own clone.
    """

    def __init__(self, layer: Dropout, count: int) -> None:
        super().__init__(count)
        self.p = layer.p
        self._rngs = [copy.deepcopy(layer._rng) for _ in range(count)]
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.p
        self._mask = np.stack(
            [(rng.random(inputs.shape[1:]) < keep) / keep for rng in self._rngs]
        )
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


#: Serial layer type -> batched counterpart.  Layers outside this table
#: (third-party plugins) make the batched executor fall back to serial
#: execution for the whole model.
BATCHED_LAYER_TYPES: dict[type, type] = {
    Linear: BatchedLinear,
    Conv2d: BatchedConv2d,
    Conv1d: BatchedConv1d,
    ReLU: BatchedReLU,
    Tanh: BatchedTanh,
    Sigmoid: BatchedSigmoid,
    Flatten: BatchedFlatten,
    MaxPool2d: BatchedMaxPool2d,
    MaxPool1d: BatchedMaxPool1d,
    AvgPool2d: BatchedAvgPool2d,
    Dropout: BatchedDropout,
    BatchNorm1d: BatchedBatchNorm1d,
    BatchNorm2d: BatchedBatchNorm2d,
}


def unsupported_layers(model: Sequential) -> list[str]:
    """Names of layer types in ``model`` without a batched counterpart.

    The lookup is by exact type: a subclass may change ``forward`` in ways
    the batched kernel would not reproduce, so it falls back too.
    """
    return sorted(
        {
            type(layer).__name__
            for layer in model.layers
            if type(layer) not in BATCHED_LAYER_TYPES
        }
    )


class BatchedModel:
    """A Sequential vectorized over ``count`` identically-initialised workers.

    Parameters start as ``count`` copies of the template's current values;
    :meth:`state_dict_for` slices one worker's parameters back out under the
    same names ``Sequential.state_dict`` would use.
    """

    def __init__(self, template: Sequential, count: int) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        names = unsupported_layers(template)
        if names:
            raise ValueError(f"no batched kernels for layer types: {names}")
        self.count = count
        self.layers = [
            BATCHED_LAYER_TYPES[type(layer)](layer, count)
            for layer in template.layers
        ]
        self._param_names = [name for name, _ in template.named_parameters()]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = inputs
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[BatchedParameter]:
        params: list[BatchedParameter] = []
        for layer in self.layers:
            params.extend(layer.params)
        return params

    def state_dict_for(self, slot: int) -> dict[str, np.ndarray]:
        """State dict of worker ``slot``, named like the serial model's."""
        return {
            name: param.data[slot].copy()
            for name, param in zip(self._param_names, self.parameters())
        }


class BatchedSGD:
    """Per-worker SGD on stacked parameters, mirroring :class:`~repro.nn.optim.SGD`.

    Each worker has its own learning rate (batch-size-proportional scaling)
    and its own global-norm clip decision; all elementwise update arithmetic
    matches the serial optimizer operation for operation.
    """

    def __init__(
        self,
        parameters: list[BatchedParameter],
        learning_rates: np.ndarray,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = None,
    ) -> None:
        if np.any(learning_rates <= 0):
            raise ValueError("learning rates must be positive")
        self.parameters = list(parameters)
        self.learning_rates = np.asarray(learning_rates, dtype=np.float64)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def _clip_scales(self) -> np.ndarray | None:
        """Per-worker gradient scale factors, or ``None`` when disabled."""
        if self.max_grad_norm is None:
            return None
        count = self.learning_rates.shape[0]
        total = np.zeros(count)
        for param in self.parameters:
            total += np.sum(param.grad.reshape(count, -1) ** 2, axis=1)
        norm = np.sqrt(total)
        with np.errstate(divide="ignore", invalid="ignore"):
            # Multiplying unclipped workers by exactly 1.0 is a bitwise no-op,
            # matching the serial optimizer's conditional clip.
            return np.where(norm > self.max_grad_norm, self.max_grad_norm / norm, 1.0)

    def step(self) -> None:
        scales = self._clip_scales()
        for param, velocity in zip(self.parameters, self._velocity):
            tail = (1,) * (param.data.ndim - 1)
            if scales is not None:
                param.grad *= scales.reshape(-1, *tail)
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.learning_rates.reshape(-1, *tail) * update


def batched_cross_entropy_gradient(
    logits: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Per-worker gradient of the mean softmax cross-entropy.

    Matches ``CrossEntropyLoss.forward(...); CrossEntropyLoss.backward()``
    applied to each worker's ``(batch, classes)`` slice: the softmax shift,
    exponentiation and row normalisation are all per-row operations, so
    adding the leading worker axis leaves every element's arithmetic
    unchanged.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=-1, keepdims=True)
    workers, batch = labels.shape
    grad = probs.copy()
    grad[
        np.arange(workers)[:, None], np.arange(batch)[None, :], labels
    ] -= 1.0
    return grad / batch
