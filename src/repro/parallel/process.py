"""Multiprocess executor: per-worker compute fanned out to OS processes.

A small pool of persistent child processes each hosts the bottom models of
a subset of the selected workers.  Messages cross the process boundary
through a pluggable :class:`~repro.parallel.transport.Transport`: the
classic ``pipe`` transport pickles everything over a pipe, while the
``shm`` transport moves feature/gradient/mini-batch arrays through
shared-memory ring buffers and ships only headers.  The children run the
very same serial layer kernels, so the training trajectory is bit-identical
to the serial executor.

All checkpointed state stays in the parent: mini-batches are drawn from the
workers' loaders in the parent process, which keeps sampling RNG streams
out of the children entirely.  Each worker's (static) data shard is shipped
to its hosting child once per pool lifetime, so per-iteration messages
carry only the drawn shard *indices* -- 8 bytes per sample instead of the
sample itself; the child slices its shard copy, which is bit-identical to
slicing in the parent.  The flip side of that caching is residency: once
every worker has been selected at least once, the children collectively
hold a second copy of the training set for the pool's lifetime (mirroring
a real deployment, where each device stores its own data); ``close()``
releases it.

The synchronous per-round protocol mirrors
:class:`~repro.parallel.base.Executor`:

    load_shard -> ship a worker's shard arrays (once per pool)
    install  -> ship the global bottom + per-worker learning rates
    forward  -> ship drawn indices, receive split-layer features
    backward -> ship dispatched gradients (children take the SGD step)
    states   -> receive locally updated bottom state dicts
    train_full -> ship a full model + pre-drawn index sequences, receive states

On top of that, the executor implements the split-phase pipelining
capability (``supports_pipelining``; see :mod:`repro.parallel.pipeline`):

    stage_forward   -> draw + ship iteration k+1's mini-batches (no reply)
    launch_forward  -> start the bottom forward on staged data (reply later)
    collect_forward -> block for the staged forward's features
    fused_backward_forward -> one message: back-propagate iteration k,
        take the SGD step, then immediately forward iteration k+1 on the
        staged data -- halving the parent/child synchronisations per
        iteration and letting data transfer overlap child compute
    backward_step_nowait -> dispatch gradients without waiting for the ack

and the relaxed-dispatch capability the bounded-staleness scheduler
drives (``supports_staleness``; same transport requirement):

    install_nowait   -> install without waiting for the acknowledgement
    dispatch_forward -> stage + launch the next iteration's forward; it may
        be dispatched *before* a pending backward, in which case the child
        runs it on an in-flight snapshot (:mod:`repro.parallel.staleness`)
        so the delayed backward keeps its own weights and activations
    dispatch_backward -> ``backward_step_nowait`` under its protocol name
    request_states / collect_states -> split the aggregation's state
        collection so parent-side work (round accounting, the next round's
        PLAN) overlaps the children's tail compute

Reply-bearing asynchronous requests (launched forwards, state
collections) are tracked in a FIFO *completion queue*: per-child channels
are ordered, so popping the oldest entry and receiving one reply per
involved child always pairs replies with the right request, no matter how
many are in flight.  Every no-reply command additionally leaves the
channel "dirty" until the next reply from that child;
:meth:`ProcessExecutor.drain` consumes the completion queue and pings
dirty children so checkpointing never races in-flight work.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from collections import deque

import numpy as np

from repro.exceptions import ExecutorDeathError, TransportError
from repro.utils.mp import get_mp_context
from repro.parallel.base import Executor
from repro.parallel.codec import FEATURES, GRADIENTS, WEIGHTS, decode_key
from repro.parallel.transport import ChildConnector, PipeTransport, Transport
from repro.utils.logging import get_logger

logger = get_logger("parallel.process")

#: Upper bound on the default pool size; beyond this, process and transfer
#: overhead outweighs any parallelism at simulation scale.
DEFAULT_MAX_PROCESSES = 8

#: Fire-and-forget commands: the child sends no reply, and any error they
#: raise is *deferred* to the next replying command's reply slot so the
#: one-reply-per-request pairing the parent relies on is never broken.
_NO_REPLY_COMMANDS = frozenset({"stage", "backward_nowait", "install_nowait"})

#: Payload class of each parent->child command's bulk arrays, for the
#: transport codec policy.  Untagged commands (staged indices, installs,
#: shard shipping) always travel raw.
_SEND_CLASS = {
    "backward": GRADIENTS,
    "backward_nowait": GRADIENTS,
    "fused_step": GRADIENTS,
}

#: Commands whose traffic is excluded from the wire-byte counters: shard
#: shipping happens once per pool lifetime and codec-state exchanges only
#: at checkpoints, so counting either would make per-round byte deltas
#: depend on pool restarts and checkpoint cadence.
_UNCOUNTED_COMMANDS = frozenset({"load_shard", "codec_load", "codec_state"})


def _child_main(connector: ChildConnector) -> None:
    """Child process loop: host bottom models / run local training on demand."""
    from repro.nn.module import Sequential
    from repro.nn.optim import SGD
    from repro.parallel.staleness import InflightQueue

    endpoint = connector.connect()
    bottoms: dict[int, dict] = {}
    #: Worker id -> (data, targets) shard copies; shipped once per pool.
    shards: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    #: Worker id -> indices of the staged (not yet forwarded) mini-batch.
    staged: dict[int, np.ndarray] = {}

    def run_forward(worker_id: int) -> np.ndarray:
        held = bottoms[worker_id]
        indices = staged.pop(worker_id)
        data = shards[worker_id][0][indices]
        # All forwards route through the in-flight queue: with no pending
        # backward this is a plain forward on the hosted model (bit-exact
        # with the historical path); under relaxed dispatch a forward that
        # overtakes a backward runs on a snapshot so the delayed gradient
        # stays well-defined.
        return held["inflight"].forward(held["model"], data)

    def run_backward(worker_id: int, gradient: np.ndarray) -> None:
        held = bottoms[worker_id]
        held["inflight"].backward(held["model"], held["optimizer"], gradient)

    def run_install(payload) -> None:
        nonlocal bottoms
        bottom, specs = payload
        bottoms = {}
        staged.clear()
        for worker_id, spec in specs.items():
            lr, momentum, weight_decay, max_grad_norm = spec[:4]
            source = bottom
            if len(spec) == 5:
                # Heterogeneous split points: the spec's fifth element is
                # the worker's prefix depth into the shipped bottom.
                source = Sequential(bottom.layers[:spec[4]])
            model = source.clone()
            model.train()
            bottoms[worker_id] = {
                "model": model,
                "optimizer": SGD(
                    model.parameters(),
                    lr=lr,
                    momentum=momentum,
                    weight_decay=weight_decay,
                    max_grad_norm=max_grad_norm,
                ),
                "inflight": InflightQueue(),
            }

    #: Traceback of a failed no-reply command, delivered with the next
    #: replying command so reply pairing stays one-to-one.
    deferred_errors: list[str] = []
    try:
        while True:
            try:
                message = endpoint.recv()
            except (EOFError, OSError):
                break
            command, payload = message
            if (deferred_errors and command != "close"
                    and command not in _NO_REPLY_COMMANDS):
                # A fire-and-forget command failed earlier; report it in
                # this command's reply slot instead of executing (the
                # round's state is already inconsistent).
                endpoint.send(("error", "\n".join(deferred_errors)))
                deferred_errors.clear()
                continue
            try:
                if command == "close":
                    break
                elif command == "load_shard":
                    shards.update(payload)
                    endpoint.send(("ok", None))
                elif command == "install":
                    run_install(payload)
                    endpoint.send(("ok", None))
                elif command == "install_nowait":
                    # Relaxed-dispatch install: no acknowledgement; errors
                    # defer to the next replying command like every other
                    # fire-and-forget command.
                    run_install(payload)
                elif command == "forward":
                    staged.update(payload)
                    endpoint.send(
                        ("ok", {wid: run_forward(wid) for wid in payload}),
                        klass=FEATURES,
                    )
                elif command == "stage":
                    # Mini-batches for the *next* forward; no reply, the
                    # next replying command acts as the sync point.
                    staged.update(payload)
                elif command == "forward_staged":
                    endpoint.send(
                        ("ok", {wid: run_forward(wid) for wid in payload}),
                        klass=FEATURES,
                    )
                elif command == "fused_step":
                    # Backward + SGD step for the pending iteration, then
                    # forward the staged one -- a single synchronisation.
                    for worker_id, gradient in payload.items():
                        run_backward(worker_id, gradient)
                    endpoint.send(
                        ("ok", {wid: run_forward(wid) for wid in payload}),
                        klass=FEATURES,
                    )
                elif command == "backward":
                    for worker_id, gradient in payload.items():
                        run_backward(worker_id, gradient)
                    endpoint.send(("ok", None))
                elif command == "backward_nowait":
                    for worker_id, gradient in payload.items():
                        run_backward(worker_id, gradient)
                elif command == "states":
                    endpoint.send(
                        ("ok", {
                            worker_id: bottoms[worker_id]["model"].state_dict()
                            for worker_id in payload
                        }),
                        klass=WEIGHTS,
                    )
                elif command == "ping":
                    endpoint.send(("ok", None))
                elif command == "codec_state":
                    # Error-feedback residuals of this child's codecs, for
                    # checkpointing; uncounted so per-round byte deltas do
                    # not depend on checkpoint cadence.
                    endpoint.send(("ok", endpoint.codec_state_dict()),
                                  count=False)
                elif command == "codec_load":
                    endpoint.codec_load(payload)
                    endpoint.send(("ok", None))
                elif command == "train_full":
                    model, loss_fn, iterations, tasks = payload
                    states = {}
                    for worker_id, task in tasks.items():
                        index_batches, lr, momentum, weight_decay, max_grad_norm = task
                        shard_data, shard_targets = shards[worker_id]
                        local = model.clone()
                        local.train()
                        optimizer = SGD(
                            local.parameters(),
                            lr=lr,
                            momentum=momentum,
                            weight_decay=weight_decay,
                            max_grad_norm=max_grad_norm,
                        )
                        for indices in index_batches:
                            data = shard_data[indices]
                            labels = shard_targets[indices]
                            optimizer.zero_grad()
                            logits = local.forward(data)
                            loss_fn.forward(logits, labels)
                            local.backward(loss_fn.backward())
                            optimizer.step()
                        states[worker_id] = local.state_dict()
                    endpoint.send(("ok", states), klass=WEIGHTS)
                else:
                    raise RuntimeError(f"unknown executor command {command!r}")
            except Exception:  # noqa: BLE001 - forwarded to the parent
                if command in _NO_REPLY_COMMANDS:
                    deferred_errors.append(traceback.format_exc())
                else:
                    endpoint.send(("error", traceback.format_exc()))
    finally:
        endpoint.close()


class _Child:
    """Parent-side handle of one pool process.

    Tracks how many fire-and-forget commands are possibly still in flight:
    the channel is FIFO, so a reply to request R proves the child processed
    everything sent *before* R -- but not no-reply commands sent after R
    while its reply was pending.  Each replying request therefore snapshots
    the no-reply send counter, and its reply acknowledges exactly that
    prefix.
    """

    __slots__ = ("process", "endpoint", "noreply_sent", "noreply_acked",
                 "_request_snapshots", "dead")

    def __init__(self, process, endpoint) -> None:
        self.process = process
        self.endpoint = endpoint
        self.noreply_sent = 0
        self.noreply_acked = 0
        self._request_snapshots: deque[int] = deque()
        #: Set when an exchange detects the process died; a dead channel is
        #: never read again (its pending replies will not arrive) and the
        #: process is terminated instead of gracefully closed.
        self.dead = False

    def record_send(self, expects_reply: bool) -> None:
        if expects_reply:
            self._request_snapshots.append(self.noreply_sent)
        else:
            self.noreply_sent += 1

    def record_reply(self) -> None:
        if self._request_snapshots:
            self.noreply_acked = self._request_snapshots.popleft()

    @property
    def dirty(self) -> bool:
        """Whether a no-reply command may still be unprocessed."""
        return self.noreply_sent > self.noreply_acked


class ProcessExecutor(Executor):
    """Run per-worker compute on a pool of persistent child processes."""

    name = "process"

    def __init__(
        self,
        processes: int | None = None,
        start_method: str | None = None,
        transport: Transport | None = None,
    ) -> None:
        if processes is not None and processes <= 0:
            raise ValueError(f"processes must be positive, got {processes}")
        self._requested = processes
        self._start_method = start_method
        self._transport = transport if transport is not None else PipeTransport()
        self._children: list[_Child] | None = None
        self._assignment: dict[int, int] = {}
        #: Sticky worker-to-child homes: chosen least-loaded when a worker
        #: id is first seen, stable afterwards (the shard lives there).
        self._home: dict[int, int] = {}
        #: Workers whose shard the hosting child already holds.
        self._shard_shipped: set[int] = set()
        #: Completion queue: reply-bearing asynchronous requests in dispatch
        #: order, each a ``(kind, child indices)`` pair.  Channels are FIFO
        #: per child, so receiving one reply per involved child of the
        #: oldest entry always pairs replies with the right request --
        #: which is what lets several forwards (and a state collection) be
        #: in flight at once under relaxed dispatch.
        self._completions: deque[tuple[str, tuple[int, ...]]] = deque()
        #: Labels of staged mini-batches, one entry per stage_forward call.
        self._staged_labels: deque[dict[int, np.ndarray]] = deque()
        #: Wire/logical byte totals of endpoints already closed, so
        #: :meth:`transport_stats` stays monotonic across pool restarts.
        self._retired_wire = 0
        self._retired_logical = 0
        #: Codec residuals restored from a checkpoint but not yet shipped
        #: to the child that will host their worker (serialized keys; see
        #: :meth:`load_codec_state`).
        self._pending_codec: dict[str, np.ndarray] = {}

    @property
    def supports_pipelining(self) -> bool:
        """Pipelining needs out-of-band bulk transfer (see ``Transport``).

        Staging the next iteration's mini-batches while a features reply is
        still outstanding would mutually write-block parent and child over
        a plain pipe once payloads exceed the OS pipe buffer; the shared-
        memory transport moves bulk through its rings, so only it can back
        the double-buffered schedule.  With other transports the pipelined
        scheduler transparently falls back to the synchronous order.
        """
        return self._transport.supports_async_bulk

    @property
    def supports_staleness(self) -> bool:
        """Relaxed dispatch shares pipelining's transport requirement.

        Its schedule keeps a features reply outstanding while gradients
        travel the other way; only a transport with out-of-band bulk (the
        shared-memory rings) can carry that without the mutual write-block
        a plain pipe risks.  The staleness scheduler falls back to the
        exact schedule on other transports.
        """
        return self._transport.supports_async_bulk

    # -- pool lifecycle -------------------------------------------------------
    def _pool_size(self) -> int:
        if self._requested is not None:
            return self._requested
        return max(1, min(os.cpu_count() or 1, DEFAULT_MAX_PROCESSES))

    def _ensure_pool(self) -> list[_Child]:
        if self._children is None:
            context = get_mp_context(self._start_method)
            children = []
            for __ in range(self._pool_size()):
                endpoint, connector = self._transport.pair(context)
                process = context.Process(
                    target=_child_main, args=(connector,), daemon=True
                )
                process.start()
                connector.conn.close()
                endpoint.peer_check = self._make_peer_check(process)
                children.append(_Child(process, endpoint))
            self._children = children
            logger.debug(
                "started %d executor processes (start method %s, transport %s)",
                len(children), context.get_start_method(), self._transport.name,
            )
        return self._children

    @staticmethod
    def _make_peer_check(process):
        def check() -> None:
            if not process.is_alive():
                raise TransportError(
                    f"executor process (pid {process.pid}) died mid-transfer"
                )
        return check

    def close(self) -> None:
        if self._children is None:
            return
        # Once any process died, the dirty siblings' protocol state cannot
        # be trusted either: a child may be blocked mid-reply on a channel
        # nobody will read again and would never process a graceful close.
        # Terminate those promptly instead of waiting out the join timeout.
        pool_dead = any(
            child.dead or not child.process.is_alive()
            for child in self._children
        )
        for child in self._children:
            if (child.dead or not child.process.is_alive()
                    or (pool_dead and child.dirty)):
                child.process.terminate()
                continue
            try:
                child.endpoint.send(("close", None))
            except (BrokenPipeError, OSError, TransportError):
                child.process.terminate()
        for child in self._children:
            child.process.join(timeout=5.0)
            if child.process.is_alive():  # pragma: no cover - defensive cleanup
                child.process.terminate()
                child.process.join(timeout=5.0)
            self._retired_wire += child.endpoint.bytes_on_wire
            self._retired_logical += child.endpoint.logical_bytes
            child.endpoint.close(unlink=True)
        self._children = None
        self._assignment = {}
        self._home.clear()
        self._shard_shipped.clear()
        self._completions.clear()
        self._staged_labels.clear()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass

    # -- messaging ------------------------------------------------------------
    def _assign(self, workers) -> dict[int, dict]:
        """Distribute the workers over the pool; returns per-child id sets.

        A worker's home child is sticky (its shard is shipped there once)
        but chosen least-loaded *within the round that first selects it*:
        already-homed workers are placed first, then each new worker goes
        to the child with the fewest workers in this round -- so fresh
        workers fill children the current selection would otherwise leave
        idle.  A selection consisting solely of workers homed on the same
        child still serializes there; that is the price of shard residency.
        """
        children = self._ensure_pool()
        pool_size = len(children)
        self._assignment = {}
        shards: dict[int, dict] = {index: {} for index in range(pool_size)}
        loads = [0] * pool_size

        def place(worker, child: int) -> None:
            self._assignment[worker.worker_id] = child
            shards[child][worker.worker_id] = worker
            loads[child] += 1

        fresh = []
        for worker in workers:
            home = self._home.get(worker.worker_id)
            if home is None:
                fresh.append(worker)
            else:
                place(worker, home)
        for worker in fresh:
            home = loads.index(min(loads))
            self._home[worker.worker_id] = home
            place(worker, home)
        return shards

    def _ship_shards(self, shards: dict[int, dict]) -> None:
        """Send each new worker's shard arrays to its hosting child, once."""
        messages = {}
        for index, shard in shards.items():
            payload = {
                worker_id: (worker.dataset.data, worker.dataset.targets)
                for worker_id, worker in shard.items()
                if worker_id not in self._shard_shipped
            }
            if payload:
                messages[index] = ("load_shard", payload)
                self._shard_shipped.update(payload)
        if messages:
            self._broadcast(messages)

    def _workers_on(self, index: int) -> list[int]:
        """Worker ids of the current round homed on one pool process."""
        return sorted(
            worker_id for worker_id, child_index in self._assignment.items()
            if child_index == index
        )

    def _send(self, index: int, message: tuple, expects_reply: bool) -> None:
        children = self._ensure_pool()
        child = children[index]
        command = message[0]
        try:
            child.endpoint.send(
                message,
                klass=_SEND_CLASS.get(command),
                count=command not in _UNCOUNTED_COMMANDS,
            )
        except (BrokenPipeError, OSError, TransportError) as error:
            child.dead = True
            raise ExecutorDeathError(
                f"executor process {index} (pid {child.process.pid}) died",
                worker_ids=self._workers_on(index),
            ) from error
        child.record_send(expects_reply)

    def _recv(self, index: int, count: bool = True):
        children = self._ensure_pool()
        child = children[index]
        try:
            status, payload = child.endpoint.recv(count=count)
        except (EOFError, OSError, TransportError) as error:
            child.dead = True
            raise ExecutorDeathError(
                f"executor process {index} (pid {child.process.pid}) died",
                worker_ids=self._workers_on(index),
            ) from (None if isinstance(error, EOFError) else error)
        child.record_reply()
        if status == "error":
            raise RuntimeError(f"executor process {index} failed:\n{payload}")
        return payload

    def _broadcast(self, messages: dict[int, tuple]) -> dict[int, object]:
        """Send one message per child, then collect every reply."""
        for index, message in messages.items():
            self._send(index, message, expects_reply=True)
        return {index: self._recv(index) for index in messages}

    def _by_child(self, workers, values) -> dict[int, dict[int, object]]:
        """Group ``{worker_id: value}`` shards by the child hosting each worker."""
        shards: dict[int, dict[int, object]] = {}
        for worker, value in zip(workers, values):
            shards.setdefault(
                self._assignment[worker.worker_id], {}
            )[worker.worker_id] = value
        return shards

    # -- split training -------------------------------------------------------
    def _consume_abandoned_replies(self, tolerate_death: bool = False) -> None:
        """Discard replies a failed round left between dispatch and collect.

        The completion queue's replies must be consumed before any new
        request, or every later reply would pair with the wrong command.
        As in collect_forward, each entry is popped before receiving: the
        reply slots are spent even when _recv raises.

        With ``tolerate_death`` the drain keeps going past dead children
        (their channel is dirty and will never produce the reply) instead
        of re-raising: a checkpoint after a child death must not hang on
        replies that cannot arrive.  Genuine remote errors ("error"-status
        replies from live children) still raise either way.
        """
        self._staged_labels.clear()
        while self._completions:
            __, indices = self._completions.popleft()
            for index in indices:
                if tolerate_death and self._children[index].dead:
                    continue
                try:
                    self._recv(index)
                except ExecutorDeathError:
                    if not tolerate_death:
                        raise

    def _ship_codec_state(self, shards: dict[int, dict]) -> None:
        """Deliver restored codec residuals to the children hosting them.

        Residual keys carry the worker id as their second segment, so each
        pending entry is shipped exactly once, to the child its worker was
        just assigned to, before that child's first post-resume encode.
        """
        if not self._pending_codec:
            return
        messages = {}
        for index, shard in shards.items():
            payload = {}
            for key in list(self._pending_codec):
                parts = decode_key(key)
                if len(parts) > 1 and parts[1] in shard:
                    payload[key] = self._pending_codec.pop(key)
            if payload:
                messages[index] = ("codec_load", payload)
        if messages:
            self._broadcast(messages)

    def _install_messages(self, workers, learning_rates, bottom, command: str,
                          depths=None):
        """Assign workers, ship fresh shards, build per-child install messages.

        With ``depths``, every worker's spec carries its prefix depth as a
        fifth element (the child carves ``bottom.layers[:depth]`` before
        cloning); without it the specs keep their historical 4-tuple form,
        so uniform runs put identical bytes on the wire.
        """
        shards = self._assign(workers)
        self._ship_shards(shards)
        self._ship_codec_state(shards)
        lr_of = {
            worker.worker_id: lr for worker, lr in zip(workers, learning_rates)
        }
        depth_of = None
        if depths is not None:
            depth_of = {
                worker.worker_id: depth
                for worker, depth in zip(workers, depths)
            }
        messages = {}
        for index, shard in shards.items():
            if not shard:
                continue
            specs = {}
            for worker_id, worker in shard.items():
                spec = (
                    lr_of[worker_id],
                    worker.momentum,
                    worker.weight_decay,
                    worker.max_grad_norm,
                )
                if depth_of is not None:
                    spec = spec + (depth_of[worker_id],)
                specs[worker_id] = spec
            messages[index] = (command, (bottom, specs))
        return messages

    def install(self, workers, bottom, learning_rates) -> None:
        self._consume_abandoned_replies()
        self._broadcast(
            self._install_messages(workers, learning_rates, bottom, "install")
        )

    def install_multi(self, workers, bottom, learning_rates, depths) -> None:
        """Per-worker prefix install in one message per child.

        The base class's per-depth-group loop would not work here: a child
        hosting workers from two depth groups resets all its hosted bottoms
        on every install command, so the second group's install would wipe
        the first's.  One message carrying per-worker depths keeps install
        atomic per child.
        """
        self._consume_abandoned_replies()
        self._broadcast(
            self._install_messages(
                workers, learning_rates, bottom, "install", depths=depths
            )
        )

    def forward(self, workers, batch_sizes):
        drawn = {
            worker.worker_id: worker.draw_batch_indices(batch_size)
            for worker, batch_size in zip(workers, batch_sizes)
        }
        by_child = self._by_child(workers, [drawn[w.worker_id][0] for w in workers])
        replies = self._broadcast(
            {index: ("forward", shard) for index, shard in by_child.items()}
        )
        features_of: dict[int, np.ndarray] = {}
        for payload in replies.values():
            features_of.update(payload)
        features = [features_of[worker.worker_id] for worker in workers]
        labels = [drawn[worker.worker_id][1] for worker in workers]
        return features, labels

    def backward_step(self, workers, gradients) -> None:
        self._broadcast({
            index: ("backward", shard)
            for index, shard in self._by_child(workers, gradients).items()
        })

    def bottom_states(self, workers):
        by_child: dict[int, list[int]] = {}
        for worker in workers:
            by_child.setdefault(self._assignment[worker.worker_id], []).append(
                worker.worker_id
            )
        replies = self._broadcast(
            {index: ("states", ids) for index, ids in by_child.items()}
        )
        states_of: dict[int, dict] = {}
        for payload in replies.values():
            states_of.update(payload)
        return [states_of[worker.worker_id] for worker in workers]

    # -- split-phase pipelining (see repro.parallel.pipeline) -----------------
    def stage_forward(self, workers, batch_sizes) -> None:
        """Draw and ship the next iteration's mini-batch indices (no reply).

        The draw happens in the parent (sampling state stays checkpointable)
        and the transfer overlaps whatever the children are computing.
        """
        drawn = {
            worker.worker_id: worker.draw_batch_indices(batch_size)
            for worker, batch_size in zip(workers, batch_sizes)
        }
        self._staged_labels.append(
            {wid: labels for wid, (__, labels) in drawn.items()}
        )
        for index, shard in self._by_child(
            workers, [drawn[w.worker_id][0] for w in workers]
        ).items():
            self._send(index, ("stage", shard), expects_reply=False)

    def launch_forward(self, workers) -> None:
        """Start the bottom forward on staged data; reply collected later."""
        by_child = self._by_child(workers, [w.worker_id for w in workers])
        indices = tuple(sorted(by_child))
        for index in indices:
            self._send(
                index, ("forward_staged", list(by_child[index])), expects_reply=True
            )
        self._completions.append(("forward", indices))

    def collect_forward(self, workers):
        """Block for the oldest in-flight forward's features (and labels)."""
        if not any(kind == "forward" for kind, __ in self._completions):
            raise RuntimeError("collect_forward called with no forward in flight")
        kind, indices = self._completions[0]
        if kind != "forward":  # pragma: no cover - scheduler orders collects
            raise RuntimeError(f"oldest in-flight request is {kind!r}, not a forward")
        # Pop before receiving: whether the reply is features, an error, or
        # the child died, these reply slots are spent -- leaving the entry
        # queued would make install()'s recovery drain block on replies
        # that will never come.
        self._completions.popleft()
        features_of: dict[int, np.ndarray] = {}
        for index in indices:
            features_of.update(self._recv(index))
        labels_of = self._staged_labels.popleft()
        features = [features_of[worker.worker_id] for worker in workers]
        labels = [labels_of[worker.worker_id] for worker in workers]
        return features, labels

    def fused_backward_forward(self, workers, gradients) -> None:
        """One message per child: backward + step, then forward staged data."""
        by_child = self._by_child(workers, gradients)
        indices = tuple(sorted(by_child))
        for index in indices:
            self._send(index, ("fused_step", by_child[index]), expects_reply=True)
        self._completions.append(("forward", indices))

    def backward_step_nowait(self, workers, gradients) -> None:
        """Dispatch gradients without waiting for the acknowledgement."""
        for index, shard in self._by_child(workers, gradients).items():
            self._send(index, ("backward_nowait", shard), expects_reply=False)

    def drain(self) -> None:
        """Wait until every child has processed all in-flight commands.

        Replies abandoned by a failed round (the scheduler always collects
        within a healthy one) are consumed and discarded, so checkpointing
        right after a round error still works -- all checkpointable state
        lives in the parent.
        """
        if self._children is None:
            return
        self._consume_abandoned_replies(tolerate_death=True)
        for index, child in enumerate(self._children):
            if child.dirty and not child.dead:
                try:
                    self._send(index, ("ping", None), expects_reply=True)
                    self._recv(index)
                except ExecutorDeathError:
                    # The child died with commands in flight; there is
                    # nothing to wait for and all checkpointable state is
                    # parent-side, so draining the survivors suffices.
                    continue

    # -- relaxed dispatch (see repro.parallel.pipeline) -----------------------
    def install_nowait(self, workers, bottom, learning_rates) -> None:
        """Install without waiting for acknowledgements (relaxed schedules).

        Shard shipping (first selection of a worker) still synchronises --
        it happens once per pool lifetime -- but the per-round install
        itself is fire-and-forget; errors defer to the next reply.
        """
        self._consume_abandoned_replies()
        messages = self._install_messages(
            workers, learning_rates, bottom, "install_nowait"
        )
        for index, message in messages.items():
            self._send(index, message, expects_reply=False)

    def install_multi_nowait(self, workers, bottom, learning_rates, depths) -> None:
        """Fire-and-forget :meth:`install_multi` (relaxed schedules)."""
        self._consume_abandoned_replies()
        messages = self._install_messages(
            workers, learning_rates, bottom, "install_nowait", depths=depths
        )
        for index, message in messages.items():
            self._send(index, message, expects_reply=False)

    def dispatch_forward(self, workers, batch_sizes) -> None:
        """Stage and launch the next forward; may overtake pending backwards."""
        self.stage_forward(workers, batch_sizes)
        self.launch_forward(workers)

    def dispatch_backward(self, workers, gradients) -> None:
        """Gradient dispatch under the relaxed protocol (fire-and-forget)."""
        self.backward_step_nowait(workers, gradients)

    def request_states(self, workers) -> None:
        """Ask for the bottom states; the reply is collected later.

        Dispatched after the round's final backwards: per-child FIFO means
        the states the children capture include every local update, while
        the parent is free to run accounting and next-round planning before
        blocking in :meth:`collect_states`.
        """
        by_child = self._by_child(workers, [w.worker_id for w in workers])
        indices = tuple(sorted(by_child))
        for index in indices:
            self._send(index, ("states", list(by_child[index])), expects_reply=True)
        self._completions.append(("states", indices))

    def collect_states(self, workers):
        """Block for the oldest in-flight state collection."""
        if not self._completions:
            raise RuntimeError("collect_states called with no request in flight")
        kind, indices = self._completions[0]
        if kind != "states":  # pragma: no cover - scheduler orders collects
            raise RuntimeError(f"oldest in-flight request is {kind!r}, not states")
        self._completions.popleft()
        states_of: dict[int, dict] = {}
        for index in indices:
            states_of.update(self._recv(index))
        return [states_of[worker.worker_id] for worker in workers]

    # -- transport accounting and codec state ---------------------------------
    def transport_stats(self) -> dict[str, int]:
        """Cumulative array-payload bytes moved across the process boundary.

        Sums both directions over every channel of the pool, including
        channels already retired by a pool restart, so engines can take
        per-round deltas.  One-time shard shipping and checkpoint codec
        exchanges are excluded (see ``_UNCOUNTED_COMMANDS``), which keeps
        the deltas identical across pool sizes, transports and
        checkpoint/resume.
        """
        wire = self._retired_wire
        logical = self._retired_logical
        if self._children is not None:
            for child in self._children:
                wire += child.endpoint.bytes_on_wire
                logical += child.endpoint.logical_bytes
        return {"bytes_on_wire": wire, "logical_bytes": logical}

    def codec_state(self) -> dict | None:
        """Collect every error-feedback residual for checkpointing.

        Merges the parent policy's residuals (gradient-side keys), the
        children's (feature/weight-side keys, disjoint because worker
        homes are sticky) and any restored-but-unshipped entries.  Returns
        ``None`` when the transport has no stateful codec, so checkpoints
        stay unchanged for every other configuration.  Residuals held by a
        child that died are necessarily absent (reset), matching the
        engine's recovery semantics.
        """
        policy = self._transport.codec
        if policy is None or not policy.stateful:
            return None
        self.drain()
        state: dict[str, np.ndarray] = dict(self._pending_codec)
        state.update(policy.state_dict())
        if self._children is not None:
            for index, child in enumerate(self._children):
                if child.dead:
                    continue
                try:
                    self._send(index, ("codec_state", None), expects_reply=True)
                    state.update(self._recv(index, count=False))
                except ExecutorDeathError:
                    continue
        return state

    def load_codec_state(self, state: dict | None) -> None:
        """Restore checkpointed codec residuals (inverse of :meth:`codec_state`).

        Gradient-side keys go straight into the shared parent policy;
        feature/weight-side keys are parked in ``_pending_codec`` and
        shipped to each worker's hosting child at the next install, before
        that child's first post-resume encode.
        """
        policy = self._transport.codec
        if policy is None or not policy.stateful:
            return
        parent_state: dict[str, np.ndarray] = {}
        self._pending_codec = {}
        for key, value in (state or {}).items():
            if decode_key(key)[0] == GRADIENTS:
                parent_state[key] = value
            else:
                self._pending_codec[key] = value
        policy.load_state_dict(parent_state, merge=False)

    # -- full-model (FL) training ---------------------------------------------
    def train_full(self, workers, model, loss_fn, iterations, batch_size, learning_rate):
        shards = self._assign(workers)
        self._ship_shards(shards)
        messages = {}
        for index, shard in shards.items():
            if not shard:
                continue
            tasks = {}
            for worker_id, worker in shard.items():
                index_batches = [
                    worker.loader.next_indices(batch_size)
                    for __ in range(iterations)
                ]
                tasks[worker_id] = (
                    index_batches,
                    learning_rate,
                    worker.momentum,
                    worker.weight_decay,
                    worker.max_grad_norm,
                )
            messages[index] = ("train_full", (model, loss_fn, iterations, tasks))
        replies = self._broadcast(messages)
        states_of: dict[int, dict] = {}
        for payload in replies.values():
            states_of.update(payload)
        return [states_of[worker.worker_id] for worker in workers]
