"""Multiprocess executor: per-worker compute fanned out to OS processes.

A small pool of persistent child processes each hosts the bottom models of
a subset of the selected workers.  Weights, features and gradients travel
over pipes using :mod:`pickle` (numpy float64 arrays round-trip exactly),
and the children run the very same serial layer kernels -- so the training
trajectory is bit-identical to the serial executor.

All checkpointed state stays in the parent: mini-batches are drawn from the
workers' loaders in the parent process and only the raw arrays are shipped,
which keeps sampling RNG streams out of the children entirely.

The per-round protocol mirrors :class:`~repro.parallel.base.Executor`:

    install  -> ship the global bottom + per-worker learning rates
    forward  -> ship mini-batches, receive split-layer features
    backward -> ship dispatched gradients (children take the SGD step)
    states   -> receive locally updated bottom state dicts
    train_full -> ship a full model + pre-drawn batches, receive states

This backend models the deployment topology of real split federated
learning (compute happens where the data is, everything crosses a network)
rather than chasing simulation speed: for the small models of the paper's
scaled-down testbed, pickling can dominate the savings.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback

import numpy as np

from repro.parallel.base import Executor
from repro.utils.logging import get_logger

logger = get_logger("parallel.process")

#: Upper bound on the default pool size; beyond this, process and pickling
#: overhead outweighs any parallelism at simulation scale.
DEFAULT_MAX_PROCESSES = 8


def _child_main(conn) -> None:
    """Child process loop: host bottom models / run local training on demand."""
    from repro.nn.optim import SGD

    bottoms: dict[int, dict] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            command, payload = message
            try:
                if command == "close":
                    break
                elif command == "install":
                    bottom, specs = payload
                    bottoms = {}
                    for worker_id, (lr, momentum, weight_decay, max_grad_norm) in specs.items():
                        model = bottom.clone()
                        model.train()
                        bottoms[worker_id] = {
                            "model": model,
                            "optimizer": SGD(
                                model.parameters(),
                                lr=lr,
                                momentum=momentum,
                                weight_decay=weight_decay,
                                max_grad_norm=max_grad_norm,
                            ),
                            "pending": 0,
                        }
                    conn.send(("ok", None))
                elif command == "forward":
                    features = {}
                    for worker_id, data in payload.items():
                        held = bottoms[worker_id]
                        held["pending"] = data.shape[0]
                        features[worker_id] = held["model"].forward(data)
                    conn.send(("ok", features))
                elif command == "backward":
                    for worker_id, gradient in payload.items():
                        held = bottoms[worker_id]
                        if gradient.shape[0] != held["pending"]:
                            raise ValueError(
                                f"gradient batch {gradient.shape[0]} does not "
                                f"match the pending forward batch {held['pending']}"
                            )
                        held["optimizer"].zero_grad()
                        held["model"].backward(gradient)
                        held["optimizer"].step()
                    conn.send(("ok", None))
                elif command == "states":
                    conn.send(
                        ("ok", {
                            worker_id: bottoms[worker_id]["model"].state_dict()
                            for worker_id in payload
                        })
                    )
                elif command == "train_full":
                    model, loss_fn, iterations, tasks = payload
                    states = {}
                    for worker_id, task in tasks.items():
                        batches, lr, momentum, weight_decay, max_grad_norm = task
                        local = model.clone()
                        local.train()
                        optimizer = SGD(
                            local.parameters(),
                            lr=lr,
                            momentum=momentum,
                            weight_decay=weight_decay,
                            max_grad_norm=max_grad_norm,
                        )
                        for data, labels in batches:
                            optimizer.zero_grad()
                            logits = local.forward(data)
                            loss_fn.forward(logits, labels)
                            local.backward(loss_fn.backward())
                            optimizer.step()
                        states[worker_id] = local.state_dict()
                    conn.send(("ok", states))
                else:
                    raise RuntimeError(f"unknown executor command {command!r}")
            except Exception:  # noqa: BLE001 - forwarded to the parent
                conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class ProcessExecutor(Executor):
    """Run per-worker compute on a pool of persistent child processes."""

    name = "process"

    def __init__(
        self,
        processes: int | None = None,
        start_method: str | None = None,
    ) -> None:
        if processes is not None and processes <= 0:
            raise ValueError(f"processes must be positive, got {processes}")
        self._requested = processes
        self._start_method = start_method
        self._children: list[tuple[multiprocessing.Process, object]] | None = None
        self._assignment: dict[int, int] = {}

    # -- pool lifecycle -------------------------------------------------------
    def _pool_size(self) -> int:
        if self._requested is not None:
            return self._requested
        return max(1, min(os.cpu_count() or 1, DEFAULT_MAX_PROCESSES))

    def _ensure_pool(self) -> list[tuple[multiprocessing.Process, object]]:
        if self._children is None:
            method = self._start_method
            if method is None:
                available = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in available else available[0]
            context = multiprocessing.get_context(method)
            children = []
            for __ in range(self._pool_size()):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_child_main, args=(child_conn,), daemon=True
                )
                process.start()
                child_conn.close()
                children.append((process, parent_conn))
            self._children = children
            logger.debug(
                "started %d executor processes (start method %s)",
                len(children), method,
            )
        return self._children

    def close(self) -> None:
        if self._children is None:
            return
        for process, conn in self._children:
            try:
                conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process, __ in self._children:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=5.0)
        self._children = None

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass

    # -- messaging ------------------------------------------------------------
    def _assign(self, workers) -> dict[int, dict]:
        """Round-robin the workers over the pool; returns per-child id sets."""
        children = self._ensure_pool()
        self._assignment = {}
        shards: dict[int, dict] = {index: {} for index in range(len(children))}
        for position, worker in enumerate(workers):
            child = position % len(children)
            self._assignment[worker.worker_id] = child
            shards[child][worker.worker_id] = worker
        return shards

    def _broadcast(self, messages: dict[int, tuple]) -> dict[int, object]:
        """Send one message per child, then collect every reply."""
        children = self._ensure_pool()
        for index, message in messages.items():
            children[index][1].send(message)
        replies: dict[int, object] = {}
        for index in messages:
            process, conn = children[index]
            try:
                status, payload = conn.recv()
            except EOFError:
                raise RuntimeError(
                    f"executor process {index} (pid {process.pid}) died"
                ) from None
            if status == "error":
                raise RuntimeError(
                    f"executor process {index} failed:\n{payload}"
                )
            replies[index] = payload
        return replies

    # -- split training -------------------------------------------------------
    def install(self, workers, bottom, learning_rates) -> None:
        shards = self._assign(workers)
        lr_of = {
            worker.worker_id: lr for worker, lr in zip(workers, learning_rates)
        }
        messages = {}
        for index, shard in shards.items():
            if not shard:
                continue
            specs = {
                worker_id: (
                    lr_of[worker_id],
                    worker.momentum,
                    worker.weight_decay,
                    worker.max_grad_norm,
                )
                for worker_id, worker in shard.items()
            }
            messages[index] = ("install", (bottom, specs))
        self._broadcast(messages)

    def forward(self, workers, batch_sizes):
        drawn = {
            worker.worker_id: worker.draw_batch(batch_size)
            for worker, batch_size in zip(workers, batch_sizes)
        }
        messages: dict[int, tuple] = {}
        by_child: dict[int, dict[int, np.ndarray]] = {}
        for worker_id, (data, __) in drawn.items():
            by_child.setdefault(self._assignment[worker_id], {})[worker_id] = data
        for index, shard in by_child.items():
            messages[index] = ("forward", shard)
        replies = self._broadcast(messages)
        features_of: dict[int, np.ndarray] = {}
        for payload in replies.values():
            features_of.update(payload)
        features = [features_of[worker.worker_id] for worker in workers]
        labels = [drawn[worker.worker_id][1] for worker in workers]
        return features, labels

    def backward_step(self, workers, gradients) -> None:
        by_child: dict[int, dict[int, np.ndarray]] = {}
        for worker, gradient in zip(workers, gradients):
            by_child.setdefault(
                self._assignment[worker.worker_id], {}
            )[worker.worker_id] = gradient
        self._broadcast(
            {index: ("backward", shard) for index, shard in by_child.items()}
        )

    def bottom_states(self, workers):
        by_child: dict[int, list[int]] = {}
        for worker in workers:
            by_child.setdefault(self._assignment[worker.worker_id], []).append(
                worker.worker_id
            )
        replies = self._broadcast(
            {index: ("states", ids) for index, ids in by_child.items()}
        )
        states_of: dict[int, dict] = {}
        for payload in replies.values():
            states_of.update(payload)
        return [states_of[worker.worker_id] for worker in workers]

    # -- full-model (FL) training ---------------------------------------------
    def train_full(self, workers, model, loss_fn, iterations, batch_size, learning_rate):
        shards = self._assign(workers)
        messages = {}
        for index, shard in shards.items():
            if not shard:
                continue
            tasks = {}
            for worker_id, worker in shard.items():
                batches = [
                    worker.loader.next_batch(batch_size) for __ in range(iterations)
                ]
                tasks[worker_id] = (
                    batches,
                    learning_rate,
                    worker.momentum,
                    worker.weight_decay,
                    worker.max_grad_norm,
                )
            messages[index] = ("train_full", (model, loss_fn, iterations, tasks))
        replies = self._broadcast(messages)
        states_of: dict[int, dict] = {}
        for payload in replies.values():
            states_of.update(payload)
        return [states_of[worker.worker_id] for worker in workers]
