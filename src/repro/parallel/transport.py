"""Pluggable feature transports for the process executor.

The :class:`~repro.parallel.process.ProcessExecutor` exchanges messages with
its child processes through a :class:`Transport`.  A message is an arbitrary
picklable ``(command, payload)`` structure; what differs between transports
is how the *bulk* of the payload -- the feature, gradient and mini-batch
arrays -- crosses the process boundary:

* :class:`PipeTransport` pickles the whole message over a
  :func:`multiprocessing.Pipe` (the historical path).  Every array is
  serialised, copied through the OS pipe in 64 KiB chunks and deserialised
  on the far side.
* :class:`SharedMemoryTransport` moves every numpy array through a pair of
  single-producer/single-consumer ring buffers backed by
  :mod:`multiprocessing.shared_memory`; only a small control message --
  the command plus per-array headers (shape, dtype, byte count) -- crosses
  the pipe.  Arrays are written/read with two ``memcpy``-like slice
  assignments, so the per-byte cost is a fraction of pickling.

Each array in the ring is preceded by a 16-byte frame header (magic,
sequence number, byte count) that the receiver validates against the
control message, so a desynchronised or corrupted ring fails loudly with
:class:`~repro.exceptions.TransportError` instead of silently reading
garbage into the training state.

Either transport may additionally carry a
:class:`~repro.parallel.codec.CodecPolicy`: senders tag messages with a
payload class (``features`` / ``gradients`` / ``weights``) and the policy's
codec compresses each eligible array before it is framed (ring) or pickled
(pipe), with the codec name and metadata travelling in the frame header so
the receiver can decode without shared state.  Both endpoints also keep
``bytes_on_wire`` / ``logical_bytes`` counters -- on the pipe transport
too -- so pipe-vs-shm comparisons report wire volume on both backends.

Transports are registered in :data:`repro.api.registry.TRANSPORTS`
(``"pipe"`` and ``"shm"``) and selected with
``ExperimentConfig(transport=...)``; see :mod:`repro.parallel`.
"""

from __future__ import annotations

import abc
import struct
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import TransportError
from repro.parallel.codec import CodecPolicy, decode_array
from repro.utils.logging import get_logger

logger = get_logger("parallel.transport")

#: Default per-direction ring-buffer capacity (bytes).  Sized so several
#: iterations of staged mini-batches plus feature/gradient replies fit
#: without ever blocking at simulation scale.
DEFAULT_RING_CAPACITY = 1 << 24  # 16 MiB

#: Frame header: magic, monotonically increasing sequence number, payload
#: byte count.  Written before every array in the ring.
_FRAME = struct.Struct("<4sIQ")
_MAGIC = b"SFRB"

#: How long a blocked ring read/write waits before declaring the peer hung.
_RING_TIMEOUT_S = 300.0

#: Arrays at or below this size stay inline in the pickled control message:
#: for a few hundred bytes (drawn index vectors, scalars) the fixed cost of
#: ring framing exceeds the pickling it avoids.
INLINE_FLOOR_BYTES = 2048

_MASK64 = (1 << 64) - 1


class RingBuffer:
    """A single-producer/single-consumer byte ring over shared memory.

    Layout of the backing block: ``head`` (uint64, bytes ever written),
    ``tail`` (uint64, bytes ever read), then ``capacity`` data bytes.  The
    producer only writes ``head``, the consumer only writes ``tail``, so no
    lock is needed; both counters grow without bound (mod 2^64) and the
    write position is ``head % capacity``.  Writes and reads wrap around
    the end of the data region by splitting into two slice copies.  Each
    counter gets its own cache line (and the data region starts on a
    third), so the producer's head stores, the consumer's tail stores and
    the payload copies never false-share a line across the two processes.
    """

    _COUNTERS = 128
    _TAIL_OFFSET = 64

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int) -> None:
        self._shm = shm
        self.capacity = capacity
        self._head = np.frombuffer(shm.buf, dtype=np.uint64, count=1, offset=0)
        self._tail = np.frombuffer(
            shm.buf, dtype=np.uint64, count=1, offset=self._TAIL_OFFSET
        )
        self._data = np.frombuffer(
            shm.buf, dtype=np.uint8, count=capacity, offset=self._COUNTERS
        )

    # -- construction ---------------------------------------------------------
    @classmethod
    def create(cls, capacity: int) -> "RingBuffer":
        """Allocate a fresh shared-memory ring (owned by the caller)."""
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        shm = shared_memory.SharedMemory(
            create=True, size=cls._COUNTERS + capacity
        )
        shm.buf[: cls._COUNTERS] = bytes(cls._COUNTERS)
        return cls(shm, capacity)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "RingBuffer":
        """Attach to an existing ring by shared-memory name (child side).

        The creator owns the segment's lifetime, so the attachment must not
        be registered with the child's resource tracker -- otherwise the
        tracker unlinks (or warns about) the segment when the child exits.
        Python 3.13+ supports this directly via ``track=False``; earlier
        versions need the registration suppressed during construction.
        """
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13
            from multiprocessing import resource_tracker

            original = resource_tracker.register

            def _skip_tracking(res_name, rtype):
                if rtype != "shared_memory":  # pragma: no cover - other types
                    original(res_name, rtype)

            resource_tracker.register = _skip_tracking
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        return cls(shm, capacity)

    @property
    def name(self) -> str:
        """Shared-memory block name, for :meth:`attach` in the child."""
        return self._shm.name

    # -- byte I/O -------------------------------------------------------------
    def _used(self) -> int:
        return (int(self._head[0]) - int(self._tail[0])) & _MASK64

    def free(self) -> int:
        """Bytes that can be written right now without blocking."""
        return self.capacity - self._used()

    def wait_free(self, nbytes: int, poll=None) -> None:
        """Block until ``nbytes`` of contiguous ring budget are available."""
        if nbytes > self.capacity:
            raise TransportError(
                f"payload of {nbytes} bytes exceeds ring capacity {self.capacity}"
            )
        self._wait(lambda: self.free() >= nbytes, poll, "write")

    def _wait(self, ready, poll, what: str) -> None:
        deadline = time.monotonic() + _RING_TIMEOUT_S
        spins = 0
        while not ready():
            spins += 1
            if poll is not None and spins % 64 == 0:
                poll()
            if time.monotonic() > deadline:
                raise TransportError(
                    f"shared-memory ring {what} timed out after "
                    f"{_RING_TIMEOUT_S:.0f}s (peer hung?)"
                )
            time.sleep(0.0 if spins < 256 else 0.0002)

    def write(self, data: np.ndarray, poll=None) -> None:
        """Append raw bytes (a uint8 array), blocking while the ring is full.

        ``poll`` is called periodically while waiting so the caller can
        raise (e.g. when the peer process died) instead of spinning forever.
        """
        n = int(data.nbytes)
        if n > self.capacity:
            raise TransportError(
                f"payload of {n} bytes exceeds ring capacity {self.capacity}"
            )
        self._wait(lambda: self.capacity - self._used() >= n, poll, "write")
        pos = int(self._head[0]) % self.capacity
        first = min(n, self.capacity - pos)
        self._data[pos : pos + first] = data[:first]
        if n > first:
            self._data[: n - first] = data[first:]
        self._head[0] = (int(self._head[0]) + n) & _MASK64

    def read(self, n: int, poll=None) -> np.ndarray:
        """Consume exactly ``n`` bytes, blocking until they are available."""
        if n > self.capacity:
            raise TransportError(
                f"frame of {n} bytes exceeds ring capacity {self.capacity}"
            )
        self._wait(lambda: self._used() >= n, poll, "read")
        out = np.empty(n, dtype=np.uint8)
        pos = int(self._tail[0]) % self.capacity
        first = min(n, self.capacity - pos)
        out[:first] = self._data[pos : pos + first]
        if n > first:
            out[first:] = self._data[: n - first]
        self._tail[0] = (int(self._tail[0]) + n) & _MASK64
        return out

    # -- lifecycle ------------------------------------------------------------
    def close(self, unlink: bool = False) -> None:
        """Release the mapping; ``unlink`` destroys the block (owner only)."""
        # The numpy views hold buffer exports into the mapping; they must be
        # dropped before SharedMemory.close() or it raises BufferError.
        self._head = self._tail = self._data = None
        try:
            self._shm.close()
            if unlink:
                self._shm.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover - defensive
            pass


@dataclass
class _RingRef:
    """Placeholder left in the control message for an array in the ring.

    ``shape``/``dtype`` always describe the *logical* array; ``nbytes`` is
    what actually sits in the ring (the encoded payload size when ``codec``
    is set), and ``meta`` carries the codec's frame metadata (e.g. the int8
    scale/zero-point), so every frame is self-describing.
    """

    index: int
    shape: tuple
    dtype: str
    nbytes: int
    codec: str | None = None
    meta: object = None


@dataclass
class _EncodedInline:
    """A codec-encoded array small enough to stay in the control message.

    The inline-fallback threshold applies to the *encoded* size: a large
    tensor that a codec shrinks under :data:`INLINE_FLOOR_BYTES` (top-k
    typically does) takes the cheap inline path instead of burning ring
    capacity on framing.
    """

    codec: str
    payload: np.ndarray
    shape: tuple
    dtype: str
    meta: object = None


def _logical_nbytes(shape, dtype: str) -> int:
    """Byte count of the dense logical array a frame reconstructs."""
    return int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize


def _pack(obj, arrays: list, budget: list, codec=None, stats=None, key=()):
    """Replace ring-eligible arrays in ``obj`` with :class:`_RingRef` markers.

    Walks dicts/lists/tuples (the executor's payload containers); anything
    else -- arrays too small to be worth framing, arrays that no longer fit
    this message's ring ``budget`` (a single-element mutable so recursion
    can consume it), and non-numeric arrays -- stays inline in the pickled
    control message.  Capping one message's framed bytes at the ring
    capacity is what lets :meth:`Endpoint.send` always write the payload
    *before* the control message.

    When ``codec`` (a :class:`~repro.parallel.codec.Codec`) is given, each
    eligible float array is encoded first; the inline-vs-ring decision then
    applies to the encoded size, and arrays the codec shrinks below the
    inline floor travel as :class:`_EncodedInline`.  ``key`` accumulates
    the dict-key path (prefixed with the payload class) that stateful
    codecs key their error-feedback residuals by.  ``stats`` (an object
    with ``count_bytes(wire, logical)``) tallies payload bytes.
    """
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            return obj
        if codec is not None and codec.applies_to(obj):
            payload, meta = codec.encode(obj, key=key)
            if stats is not None:
                stats.count_bytes(payload.nbytes, obj.nbytes)
            framed = payload.nbytes + _FRAME.size
            if payload.nbytes <= INLINE_FLOOR_BYTES or framed > budget[0]:
                return _EncodedInline(
                    codec.name, payload, obj.shape, obj.dtype.str, meta
                )
            budget[0] -= framed
            ref = _RingRef(
                len(arrays), obj.shape, obj.dtype.str, payload.nbytes,
                codec.name, meta,
            )
            arrays.append(payload)
            return ref
        if stats is not None:
            stats.count_bytes(obj.nbytes, obj.nbytes)
        framed = obj.nbytes + _FRAME.size
        if obj.nbytes <= INLINE_FLOOR_BYTES or framed > budget[0]:
            return obj
        budget[0] -= framed
        flat = np.ascontiguousarray(obj)
        ref = _RingRef(len(arrays), obj.shape, flat.dtype.str, flat.nbytes)
        arrays.append(flat.reshape(-1).view(np.uint8))
        return ref
    if isinstance(obj, dict):
        return {
            k: _pack(v, arrays, budget, codec, stats, key + (k,))
            for k, v in obj.items()
        }
    if isinstance(obj, tuple):
        return tuple(_pack(v, arrays, budget, codec, stats, key) for v in obj)
    if isinstance(obj, list):
        return [_pack(v, arrays, budget, codec, stats, key) for v in obj]
    return obj


def _measure(obj, stats) -> None:
    """Count-only walk for paths that move the message as-is (pipe, raw)."""
    if isinstance(obj, np.ndarray):
        if not obj.dtype.hasobject:
            stats.count_bytes(obj.nbytes, obj.nbytes)
    elif isinstance(obj, dict):
        for value in obj.values():
            _measure(value, stats)
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            _measure(value, stats)


def _unpack(obj, arrays: list, stats=None):
    """Inverse of :func:`_pack`: splice ring arrays back into the payload,
    decode inline-encoded frames, and tally received payload bytes."""
    if isinstance(obj, _RingRef):
        if stats is not None:
            logical = (_logical_nbytes(obj.shape, obj.dtype)
                       if obj.codec is not None else obj.nbytes)
            stats.count_bytes(obj.nbytes, logical)
        return arrays[obj.index]
    if isinstance(obj, _EncodedInline):
        if stats is not None:
            stats.count_bytes(
                obj.payload.nbytes, _logical_nbytes(obj.shape, obj.dtype)
            )
        return decode_array(obj.codec, obj.payload, obj.shape, obj.dtype,
                            obj.meta)
    if isinstance(obj, np.ndarray):
        if stats is not None and not obj.dtype.hasobject:
            stats.count_bytes(obj.nbytes, obj.nbytes)
        return obj
    if isinstance(obj, dict):
        return {key: _unpack(value, arrays, stats) for key, value in obj.items()}
    if isinstance(obj, tuple):
        return tuple(_unpack(value, arrays, stats) for value in obj)
    if isinstance(obj, list):
        return [_unpack(value, arrays, stats) for value in obj]
    return obj


class Endpoint:
    """One side of a transport channel: a full-duplex message port.

    With no rings attached this is a plain pickle-over-pipe port.  With
    rings, :meth:`send` splits every message into a small control message
    (sent over the pipe) and framed array payloads (written to the outgoing
    ring); :meth:`recv` reassembles them.  ``peer_check`` may be set to a
    callable that raises when the peer is known dead, so blocked ring
    operations fail fast instead of timing out.

    ``codec`` attaches a :class:`~repro.parallel.codec.CodecPolicy`: senders
    tag each message with its payload class (``send(msg, klass="features")``)
    and the class's codec encodes eligible arrays before framing or
    pickling; the receiver decodes from the self-describing frames.  With no
    policy the wire format is byte-identical to the historical one.

    Every endpoint tallies ``bytes_on_wire`` / ``logical_bytes`` over the
    array payloads it sends *and* receives (``count=False`` exempts
    one-time traffic such as shard shipping, keeping per-round deltas
    comparable across pool restarts).  Pickle framing overhead of the
    control messages is not counted on either transport.
    """

    def __init__(self, conn, ring_out: RingBuffer | None = None,
                 ring_in: RingBuffer | None = None,
                 codec: CodecPolicy | None = None) -> None:
        self._conn = conn
        self._ring_out = ring_out
        self._ring_in = ring_in
        self._codec = codec
        self._seq_out = 0
        self._seq_in = 0
        #: Array payload bytes that actually crossed the process boundary.
        self.bytes_on_wire = 0
        #: Dense float/int bytes those payloads represent.
        self.logical_bytes = 0
        #: Optional liveness probe, polled while ring operations block.
        self.peer_check = None

    @property
    def codec_policy(self) -> CodecPolicy | None:
        """The negotiated codec policy (``None`` = raw passthrough)."""
        return self._codec

    def count_bytes(self, wire: int, logical: int) -> None:
        """Tally one payload (called by the pack/unpack walks)."""
        self.bytes_on_wire += int(wire)
        self.logical_bytes += int(logical)

    # -- error-feedback state --------------------------------------------------
    def codec_state_dict(self) -> dict:
        """Residual state of this endpoint's stateful codecs (may be empty)."""
        if self._codec is None:
            return {}
        return self._codec.state_dict()

    def codec_load(self, state: dict, merge: bool = True) -> None:
        """Restore codec residuals (no-op without a policy)."""
        if self._codec is not None and state:
            self._codec.load_state_dict(state, merge=merge)

    # -- messaging ------------------------------------------------------------
    def send(self, message, klass: str | None = None, count: bool = True) -> None:
        stats = self if count else None
        codec = self._codec.codec_for(klass) if self._codec is not None else None
        root_key = (klass,) if klass is not None else ()
        if self._ring_out is None:
            if codec is None:
                if stats is not None:
                    _measure(message, stats)
                self._conn.send(message)
                return
            # Encode in place: a zero ring budget routes every encoded
            # array through the inline (_EncodedInline) path.
            packed = _pack(message, [], [0], codec, stats, root_key)
            self._conn.send(packed)
            return
        arrays: list[np.ndarray] = []
        budget = [self._ring_out.capacity]
        packed = _pack(message, arrays, budget, codec, stats, root_key)
        # The payload is always written to the ring *before* the control
        # message goes through the pipe.  This is load-bearing on two
        # counts: the receiver finds the frames ready the moment the
        # control message lands (no spin-waiting on an empty ring), and --
        # since the lock-free ring itself carries no memory barriers -- the
        # producer's pipe-write syscall / consumer's pipe-read syscall pair
        # is what orders the payload stores before the reads on weakly
        # ordered CPUs.  ``_pack`` caps one message's frames at the ring
        # capacity, so waiting for that much free space cannot wedge.
        if arrays:
            total = sum(data.nbytes + _FRAME.size for data in arrays)
            self._ring_out.wait_free(total, self.peer_check)
            for data in arrays:
                self._seq_out = (self._seq_out + 1) & 0xFFFFFFFF
                header = _FRAME.pack(_MAGIC, self._seq_out, data.nbytes)
                self._ring_out.write(
                    np.frombuffer(header, dtype=np.uint8), self.peer_check
                )
                self._ring_out.write(data, self.peer_check)
        self._conn.send((packed, [data.nbytes for data in arrays]))

    def recv(self, count: bool = True):
        stats = self if count else None
        if self._ring_in is None:
            message = self._conn.recv()
            if self._codec is None:
                if stats is not None:
                    _measure(message, stats)
                return message
            # The peer may have inlined encoded frames; decode (and count)
            # them on the way out.
            return _unpack(message, [], stats)
        packed, sizes = self._conn.recv()
        arrays = []
        for expected in sizes:
            self._seq_in = (self._seq_in + 1) & 0xFFFFFFFF
            raw = self._ring_in.read(_FRAME.size, self.peer_check)
            magic, seq, nbytes = _FRAME.unpack(raw.tobytes())
            if magic != _MAGIC or seq != self._seq_in or nbytes != expected:
                raise TransportError(
                    f"corrupt ring frame: magic={magic!r} seq={seq} "
                    f"(expected {self._seq_in}) nbytes={nbytes} "
                    f"(expected {expected})"
                )
            arrays.append(self._ring_in.read(nbytes, self.peer_check))
        hydrated = [
            decode_array(ref.codec, raw, ref.shape, ref.dtype, ref.meta)
            if ref.codec is not None
            else raw.view(np.dtype(ref.dtype)).reshape(ref.shape)
            for raw, ref in zip(arrays, _iter_refs(packed))
        ]
        return _unpack(packed, hydrated, stats)

    # -- lifecycle ------------------------------------------------------------
    def close(self, unlink: bool = False) -> None:
        """Close the pipe and release the rings; idempotent."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        for ring in (self._ring_out, self._ring_in):
            if ring is not None:
                ring.close(unlink=unlink)
        self._ring_out = self._ring_in = None


def _iter_refs(packed):
    """Yield the :class:`_RingRef` markers of a packed message, in order."""
    refs: list[_RingRef] = []

    def walk(obj):
        if isinstance(obj, _RingRef):
            refs.append(obj)
        elif isinstance(obj, dict):
            for value in obj.values():
                walk(value)
        elif isinstance(obj, (list, tuple)):
            for value in obj:
                walk(value)

    walk(packed)
    refs.sort(key=lambda ref: ref.index)
    return refs


@dataclass
class ChildConnector:
    """Picklable recipe the child process uses to build its endpoint.

    Passed as a ``Process`` argument: the pipe connection is inherited by
    the multiprocessing machinery and the rings are re-attached by name.
    """

    conn: object
    ring_in_name: str | None = None
    ring_out_name: str | None = None
    capacity: int = DEFAULT_RING_CAPACITY
    codec_spec: dict | None = None

    def connect(self) -> Endpoint:
        """Open the child side of the channel (call inside the child)."""
        ring_in = ring_out = None
        if self.ring_in_name is not None:
            ring_in = RingBuffer.attach(self.ring_in_name, self.capacity)
        if self.ring_out_name is not None:
            ring_out = RingBuffer.attach(self.ring_out_name, self.capacity)
        codec = (CodecPolicy.from_spec(self.codec_spec)
                 if self.codec_spec else None)
        return Endpoint(self.conn, ring_out=ring_out, ring_in=ring_in,
                        codec=codec)


class Transport(abc.ABC):
    """Factory for parent/child endpoint pairs of one channel."""

    #: Registry name of the transport (also used in logs and errors).
    name: str = "abstract"

    #: Whether bulk array payloads travel out-of-band (rings) rather than
    #: through the pipe.  Pipelined scheduling sends bulk *while replies are
    #: outstanding*; over a plain OS pipe (64 KiB buffer) that can mutually
    #: write-block parent and child at realistic payload sizes, so the
    #: process executor only offers the pipelining capability when this is
    #: ``True``.
    supports_async_bulk: bool = False

    #: Codec policy applied to every channel this transport creates.  One
    #: policy instance is shared across all parent endpoints (so a stateful
    #: codec sees a single residual store keyed by worker id); each child
    #: rebuilds a fresh instance from the policy's spec.
    codec: CodecPolicy | None = None

    def _codec_spec(self) -> dict | None:
        """Child-side recipe of the policy (``None`` without one)."""
        return self.codec.spec() if self.codec is not None else None

    @abc.abstractmethod
    def pair(self, context) -> tuple[Endpoint, ChildConnector]:
        """Create one channel: the parent endpoint plus the child's recipe.

        Args:
            context: The multiprocessing context the executor spawns
                children with (start-method aware ``Pipe``).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class PipeTransport(Transport):
    """Pickle whole messages over a multiprocessing pipe (the classic path)."""

    name = "pipe"

    def __init__(self, codec: CodecPolicy | None = None) -> None:
        self.codec = codec

    def pair(self, context) -> tuple[Endpoint, ChildConnector]:
        parent_conn, child_conn = context.Pipe()
        parent = Endpoint(parent_conn, codec=self.codec)
        connector = ChildConnector(conn=child_conn,
                                   codec_spec=self._codec_spec())
        return parent, connector


class SharedMemoryTransport(Transport):
    """Ship arrays through shared-memory rings; only headers cross the pipe."""

    name = "shm"
    supports_async_bulk = True

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY,
                 codec: CodecPolicy | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.codec = codec

    def pair(self, context) -> tuple[Endpoint, ChildConnector]:
        parent_conn, child_conn = context.Pipe()
        to_child = RingBuffer.create(self.capacity)
        to_parent = RingBuffer.create(self.capacity)
        parent = Endpoint(parent_conn, ring_out=to_child, ring_in=to_parent,
                          codec=self.codec)
        connector = ChildConnector(
            conn=child_conn,
            ring_in_name=to_child.name,
            ring_out_name=to_parent.name,
            capacity=self.capacity,
            codec_spec=self._codec_spec(),
        )
        logger.debug(
            "shared-memory channel: rings %s/%s, %d bytes each",
            to_child.name, to_parent.name, self.capacity,
        )
        return parent, connector
