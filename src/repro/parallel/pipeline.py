"""The round pipeline: how communication rounds are scheduled.

Both training engines describe a round as a set of *stages*
(:class:`RoundStage`): plan the worker set, install the bottom models, then
for each of the ``tau`` local iterations run the bottom forward, merge the
features, update the top model and dispatch the gradients for the local SGD
steps, and finally aggregate the bottom models.  A
:class:`PipelineScheduler` owns the execution order of those stages; the
engines only provide the stage bodies through :class:`SplitRoundOps` /
:class:`FullRoundOps`.

Stages are not merely a sequence: each stage instance reads and writes
*versioned artifacts* -- the bottom weights after ``v`` local updates, the
merged features of iteration ``k``, the dispatched top gradients of
iteration ``k``, the global model before/after aggregation.  The
declarative dependency graph lives in :func:`round_stage_specs`; every
legal schedule is an order that respects those edges, and the one edge the
paper-relevant relaxations bend is the bottom-forward's read of the bottom
weights (see :class:`ArtifactRef.relaxed`).

Three schedulers are registered (``ExperimentConfig(pipeline=...)``):

* ``sync`` -- :class:`PipelineScheduler`: every stage runs to completion
  before the next starts.  This is the reference order; its behaviour
  *defines* what the exact schedulers must reproduce bit-exactly.
* ``pipelined`` -- :class:`PipelinedScheduler`: when the executor supports
  asynchronous dispatch (``Executor.supports_pipelining``), iteration
  ``k+1``'s bottom-forward work is double-buffered against iteration
  ``k``'s top update; the staleness bound is 0, so histories stay
  bit-exact with ``sync``.
* ``staleness`` -- :class:`BoundedStalenessScheduler`: dispatches any stage
  whose declared inputs are within ``config.staleness`` versions of fresh.
  At ``staleness=0`` it *is* the pipelined schedule (bit-exact, pinned in
  the equivalence suite).  At ``staleness >= 1`` the bottom forward of
  iteration ``k`` may run on weights that miss up to ``staleness`` of the
  latest local updates, and the round tail relaxes too: the aggregate's
  state collection is dispatched asynchronously so parent-side accounting
  and the *next* round's PLAN/GA overlap the children's tail compute
  (cross-round pipelining -- the round-end drain disappears).  The
  trajectory is no longer bit-exact with ``sync``; it is deterministic
  (the relaxed order is a pure function of the dependency graph and the
  staleness bound) and identical across capable executors, and the history
  records its realized per-round staleness so the relaxation is
  measurable.

Schedulers hold no cross-round *executor* state, so switching them never
invalidates a checkpoint; ``Session.save_checkpoint`` still drains the
executor first, and the one cross-round artifact the staleness scheduler
creates -- the prefetched next-round plan -- is serialized by the engine's
``state_dict`` so resume stays exact at any staleness.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.worker import SplitWorker
    from repro.parallel.base import Executor

logger = get_logger("parallel.pipeline")


class RoundStage(enum.Enum):
    """The stages of one communication round, in reference order."""

    PLAN = "plan"
    INSTALL = "install"
    BOTTOM_FORWARD = "bottom_forward"
    MERGE = "merge"
    TOP_UPDATE = "top_update"
    BACKWARD_DISPATCH = "backward_dispatch"
    LOCAL_STEP = "local_step"
    AGGREGATE = "aggregate"


class ArtifactKind(enum.Enum):
    """The versioned artifacts stages exchange within (and across) rounds."""

    #: Bottom-model weights; version = number of local updates applied
    #: since the round's install.
    BOTTOM_WEIGHTS = "bottom_weights"
    #: Split-layer features (merged by the PS); version = iteration index.
    FEATURES = "features"
    #: Dispatched top gradients; version = iteration index.
    TOP_GRADIENTS = "top_gradients"
    #: The aggregated global model; version 0 = start of round, 1 = after
    #: this round's aggregation.
    GLOBAL_MODEL = "global_model"


@dataclass(frozen=True)
class ArtifactRef:
    """A read/write of one artifact at one version.

    ``relaxed`` marks the dependency a bounded-staleness schedule may bend:
    the read is satisfied by any version within ``staleness`` of the
    requested one.  Exact schedulers treat every read as strict.
    """

    kind: ArtifactKind
    version: int
    relaxed: bool = False


@dataclass(frozen=True)
class StageSpec:
    """One stage instance of a round and its declared data dependencies."""

    stage: RoundStage
    iteration: int | None
    reads: tuple[ArtifactRef, ...]
    writes: tuple[ArtifactRef, ...]


def round_stage_specs(local_iterations: int) -> list[StageSpec]:
    """The dependency graph of one end-aggregating split round.

    Per-iteration aggregation (SplitFed) re-installs after every iteration,
    which serialises the round by construction; relaxed schedulers fall
    back to the exact order there, so only the end-aggregate form needs a
    declarative graph.
    """
    specs = [
        StageSpec(
            RoundStage.INSTALL, None,
            reads=(ArtifactRef(ArtifactKind.GLOBAL_MODEL, 0),),
            writes=(ArtifactRef(ArtifactKind.BOTTOM_WEIGHTS, 0),),
        )
    ]
    for k in range(local_iterations):
        specs.append(StageSpec(
            RoundStage.BOTTOM_FORWARD, k,
            # THE relaxable edge: forward k wants the weights after k local
            # updates but may run up to `staleness` updates behind.
            reads=(ArtifactRef(ArtifactKind.BOTTOM_WEIGHTS, k, relaxed=True),),
            writes=(ArtifactRef(ArtifactKind.FEATURES, k),),
        ))
        specs.append(StageSpec(
            RoundStage.TOP_UPDATE, k,
            reads=(ArtifactRef(ArtifactKind.FEATURES, k),),
            writes=(ArtifactRef(ArtifactKind.TOP_GRADIENTS, k),),
        ))
        specs.append(StageSpec(
            RoundStage.BACKWARD_DISPATCH, k,
            reads=(
                ArtifactRef(ArtifactKind.TOP_GRADIENTS, k),
                ArtifactRef(ArtifactKind.BOTTOM_WEIGHTS, k),
            ),
            writes=(ArtifactRef(ArtifactKind.BOTTOM_WEIGHTS, k + 1),),
        ))
    specs.append(StageSpec(
        RoundStage.AGGREGATE, None,
        reads=(ArtifactRef(ArtifactKind.BOTTOM_WEIGHTS, local_iterations),),
        writes=(ArtifactRef(ArtifactKind.GLOBAL_MODEL, 1),),
    ))
    return specs


@dataclass(frozen=True)
class ScheduledStage:
    """One dispatch slot of a derived schedule.

    ``lag`` is the realized staleness of the stage's relaxed reads: how
    many versions behind the strict requirement its input was when the
    stage became dispatchable (always 0 for exact schedules).
    """

    spec: StageSpec
    lag: int = 0


def relaxed_dispatch_order(
    specs: list[StageSpec], staleness: int
) -> list[ScheduledStage]:
    """Derive a dispatch order from the dependency graph.

    Walks the specs with a readiness rule -- a stage is dispatchable when
    every read is satisfied, where a relaxed read tolerates inputs up to
    ``staleness`` versions old -- and greedily dispatches bottom-forwards
    as early as their (relaxed) dependencies allow, which is what lets
    iteration ``k``'s forward overtake up to ``staleness`` pending local
    updates.  All other stages dispatch in graph order.  ``staleness=0``
    therefore reproduces the strict stage sequence.
    """
    if staleness < 0:
        raise ValueError(f"staleness must be non-negative, got {staleness}")
    published: dict[ArtifactKind, int] = {ArtifactKind.GLOBAL_MODEL: 0}

    def ready(spec: StageSpec) -> int | None:
        """Worst relaxed lag if dispatchable, else None."""
        lag = 0
        for read in spec.reads:
            have = published.get(read.kind, -1)
            need = read.version - (staleness if read.relaxed else 0)
            if read.relaxed:
                # Relaxation never reaches before the artifact exists.
                need = max(0, need)
            if have < need:
                return None
            if read.relaxed:
                lag = max(lag, max(0, read.version - have))
        return lag

    order: list[ScheduledStage] = []
    pending = list(specs)
    while pending:
        chosen = None
        # Forwards are dispatched as eagerly as the graph allows ...
        for index, spec in enumerate(pending):
            if spec.stage is not RoundStage.BOTTOM_FORWARD:
                continue
            lag = ready(spec)
            if lag is not None:
                chosen = (index, spec, lag)
            break  # only the earliest pending forward is a candidate
        if chosen is None:
            # ... every other stage in graph order.
            for index, spec in enumerate(pending):
                lag = ready(spec)
                if lag is not None:
                    chosen = (index, spec, lag)
                    break
        if chosen is None:  # pragma: no cover - the graph is always feasible
            raise RuntimeError("dependency graph deadlocked; no stage ready")
        index, spec, lag = chosen
        del pending[index]
        for write in spec.writes:
            published[write.kind] = max(
                published.get(write.kind, -1), write.version
            )
        order.append(ScheduledStage(spec, lag))
    return order


#: Stage observer signature: ``(stage, iteration)``; iteration is ``None``
#: for the per-round stages (install/aggregate).
StageHook = Callable[[RoundStage, "int | None"], None]


@dataclass
class RoundReport:
    """What a scheduler measured about the round it just ran.

    Attributes:
        sync_points: Blocking scheduler/executor barriers the schedule
            required (installs with acknowledgement, forward collections,
            per-stage waits, state collections).  Smaller means less time
            the parent spends stalled on the executor.
        effective_staleness: Mean realized staleness of the round's bottom
            forwards (0.0 under any exact schedule).
    """

    sync_points: int = 0
    effective_staleness: float = 0.0


@dataclass
class SplitRoundOps:
    """Stage bodies of one split-training round, supplied by the engine.

    The scheduler decides *when* each runs; the engine decides *what* they
    do.  ``update_top`` covers the MERGE and TOP_UPDATE stages and returns
    ``(loss, gradients)`` with the gradient segments aligned with
    ``workers``; the executor's ``backward_step`` covers BACKWARD_DISPATCH
    and LOCAL_STEP.

    The optional bindings exist for relaxed schedulers: ``install_nowait``
    installs without waiting for the acknowledgement,
    ``finish_aggregate`` consumes executor-collected bottom states (so the
    collection can be dispatched asynchronously), ``account`` performs the
    engine's parent-side round accounting (idempotent), and
    ``prefetch_plan`` computes the *next* round's plan -- both may be
    invoked inside the aggregate window to overlap the executor's tail
    compute.  Schedulers that never relax ignore all four.
    """

    executor: "Executor"
    workers: "list[SplitWorker]"
    batch_sizes: list[int]
    install: Callable[[], None]
    update_top: Callable[[list, list], tuple[float, list[np.ndarray]]]
    aggregate: Callable[[], None]
    on_stage: StageHook | None = None
    install_nowait: Callable[[], None] | None = None
    finish_aggregate: Callable[[list], None] | None = None
    account: Callable[[], None] | None = None
    prefetch_plan: Callable[[], None] | None = None
    #: Per-worker cut depths (aligned with ``workers``) when a split-point
    #: policy is active; ``None`` under the uniform global cut.  Purely
    #: informational for schedulers -- the install/update closures already
    #: bind the depths -- but it makes per-worker stage shapes visible to
    #: stage hooks and diagnostics.
    depths: list[int] | None = None

    def note(self, stage: RoundStage, iteration: int | None = None) -> None:
        if self.on_stage is not None:
            self.on_stage(stage, iteration)


@dataclass
class FullRoundOps:
    """Stage bodies of one full-model (FL) round.

    ``train`` runs every selected worker's local iterations (LOCAL_STEP)
    and returns the locally updated state dicts; ``aggregate`` consumes
    them.  ``account`` optionally binds the engine's parent-side round
    accounting so the scheduler owns the whole stage order.
    """

    executor: "Executor"
    workers: "list[SplitWorker]"
    train: Callable[[], list]
    aggregate: Callable[[list], None]
    on_stage: StageHook | None = None
    account: Callable[[], None] | None = None

    def note(self, stage: RoundStage, iteration: int | None = None) -> None:
        if self.on_stage is not None:
            self.on_stage(stage, iteration)


class PipelineScheduler:
    """Reference scheduler: stages run strictly one after another."""

    name = "sync"

    def __init__(self) -> None:
        #: Blocking barriers across the scheduler's lifetime (cumulative).
        self.sync_points = 0
        #: Measurements of the most recently completed round.
        self.last_report = RoundReport()

    def _report(self, sync_points: int, effective_staleness: float = 0.0) -> None:
        self.sync_points += sync_points
        self.last_report = RoundReport(sync_points, effective_staleness)

    def run_split_round(
        self,
        ops: SplitRoundOps,
        local_iterations: int,
        aggregate_every_iteration: bool,
    ) -> list[float]:
        """Execute INSTALL .. AGGREGATE and return the per-iteration losses."""
        syncs = 1
        ops.note(RoundStage.INSTALL)
        ops.install()
        losses: list[float] = []
        for iteration in range(local_iterations):
            ops.note(RoundStage.BOTTOM_FORWARD, iteration)
            features, labels = ops.executor.forward(ops.workers, ops.batch_sizes)
            ops.note(RoundStage.TOP_UPDATE, iteration)
            loss, gradients = ops.update_top(features, labels)
            ops.note(RoundStage.BACKWARD_DISPATCH, iteration)
            ops.executor.backward_step(ops.workers, gradients)
            losses.append(loss)
            syncs += 2
            if aggregate_every_iteration:
                ops.note(RoundStage.AGGREGATE, iteration)
                ops.aggregate()
                ops.note(RoundStage.INSTALL, iteration)
                ops.install()
                syncs += 2
        if not aggregate_every_iteration:
            ops.note(RoundStage.AGGREGATE)
            ops.aggregate()
            syncs += 1
        self._report(syncs)
        return losses

    def run_full_round(self, ops: FullRoundOps) -> list:
        """Execute the FL round stages and return the local state dicts."""
        ops.note(RoundStage.LOCAL_STEP)
        states = ops.train()
        ops.note(RoundStage.AGGREGATE)
        ops.aggregate(states)
        if ops.account is not None:
            ops.account()
        self._report(2)
        return states

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class PipelinedScheduler(PipelineScheduler):
    """Double-buffered scheduler: overlap transfer/dispatch across iterations.

    Requires the split-phase executor capability (``stage_forward`` /
    ``launch_forward`` / ``collect_forward`` / ``fused_backward_forward`` /
    ``backward_step_nowait``); falls back to the synchronous order when the
    executor lacks it or the round re-installs after every iteration.
    """

    name = "pipelined"

    def __init__(self) -> None:
        super().__init__()
        self._warned_fallback = False

    def run_split_round(
        self,
        ops: SplitRoundOps,
        local_iterations: int,
        aggregate_every_iteration: bool,
    ) -> list[float]:
        executor = ops.executor
        if local_iterations <= 0:
            # Nothing to double-buffer; the pre-loop launch would leave an
            # uncollected forward behind.  The sync order handles zero
            # iterations gracefully.
            return PipelineScheduler.run_split_round(
                self, ops, local_iterations, aggregate_every_iteration
            )
        if not getattr(executor, "supports_pipelining", False) or aggregate_every_iteration:
            if not self._warned_fallback:
                self._warned_fallback = True
                reason = (
                    "the round re-installs after every iteration"
                    if aggregate_every_iteration
                    else f"executor {executor.name!r} has no asynchronous dispatch"
                )
                logger.warning(
                    "pipelined scheduler falling back to synchronous stage "
                    "order: %s", reason,
                )
            return PipelineScheduler.run_split_round(
                self, ops, local_iterations, aggregate_every_iteration
            )
        syncs = 1
        ops.note(RoundStage.INSTALL)
        ops.install()
        losses: list[float] = []
        # Double buffer: iteration 0's batches are staged and its forward
        # launched before the loop; inside the loop, iteration k+1's batches
        # ship while the children still compute forward k.
        ops.note(RoundStage.BOTTOM_FORWARD, 0)
        executor.stage_forward(ops.workers, ops.batch_sizes)
        executor.launch_forward(ops.workers)
        for iteration in range(local_iterations):
            if iteration + 1 < local_iterations:
                ops.note(RoundStage.BOTTOM_FORWARD, iteration + 1)
                executor.stage_forward(ops.workers, ops.batch_sizes)
            features, labels = executor.collect_forward(ops.workers)
            syncs += 1
            ops.note(RoundStage.TOP_UPDATE, iteration)
            loss, gradients = ops.update_top(features, labels)
            ops.note(RoundStage.BACKWARD_DISPATCH, iteration)
            if iteration + 1 < local_iterations:
                # One synchronisation: backward k + step + forward k+1.
                executor.fused_backward_forward(ops.workers, gradients)
            else:
                executor.backward_step_nowait(ops.workers, gradients)
            losses.append(loss)
        ops.note(RoundStage.AGGREGATE)
        ops.aggregate()
        syncs += 1
        self._report(syncs)
        return losses


class BoundedStalenessScheduler(PipelinedScheduler):
    """Dependency-tracked scheduler with a bounded-staleness relaxation.

    The round's stages are taken from the declarative graph of
    :func:`round_stage_specs` and dispatched by
    :func:`relaxed_dispatch_order`: any stage whose declared inputs are
    within ``staleness`` versions of fresh may run.  ``staleness=0``
    reproduces the pipelined (hence the synchronous) trajectory bit for
    bit.  ``staleness>=1`` needs the executor's relaxed-dispatch
    capability (``Executor.supports_staleness``): bottom forwards overtake
    up to ``staleness`` pending local updates (the executor's in-flight
    snapshots keep delayed backwards well-defined; see
    :mod:`repro.parallel.staleness`), installs stop waiting for
    acknowledgements, and the aggregate's state collection is dispatched
    asynchronously so the engine's accounting and the next round's PLAN
    overlap the executor's tail compute.  Executors without the capability
    (and SplitFed-style per-iteration aggregation) fall back to the exact
    pipelined/synchronous order with a warning -- the fallback changes the
    *semantics* back to exact, not just the speed.
    """

    name = "staleness"

    def __init__(self, staleness: int = 0) -> None:
        super().__init__()
        if staleness < 0:
            raise ValueError(f"staleness must be non-negative, got {staleness}")
        self.staleness = int(staleness)
        self._warned_relaxation_fallback = False
        self._pending_gradients: list | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(staleness={self.staleness})"

    def run_split_round(
        self,
        ops: SplitRoundOps,
        local_iterations: int,
        aggregate_every_iteration: bool,
    ) -> list[float]:
        if self.staleness == 0 or local_iterations <= 0:
            # Exact schedule, pinned bit-identical to the pipelined one.
            return super().run_split_round(
                ops, local_iterations, aggregate_every_iteration
            )
        executor = ops.executor
        if not getattr(executor, "supports_staleness", False) or aggregate_every_iteration:
            if not self._warned_relaxation_fallback:
                self._warned_relaxation_fallback = True
                reason = (
                    "the round re-installs after every iteration"
                    if aggregate_every_iteration
                    else f"executor {executor.name!r} has no relaxed dispatch"
                )
                logger.warning(
                    "staleness=%d requested but falling back to the EXACT "
                    "schedule (%s); the run behaves as staleness=0",
                    self.staleness, reason,
                )
            return super().run_split_round(
                ops, local_iterations, aggregate_every_iteration
            )
        return self._run_relaxed(ops, local_iterations)

    def _run_relaxed(self, ops: SplitRoundOps, local_iterations: int) -> list[float]:
        """Execute the relaxed schedule derived from the dependency graph."""
        executor = ops.executor
        order = relaxed_dispatch_order(
            round_stage_specs(local_iterations), self.staleness
        )
        syncs = 0
        lags: list[int] = []
        losses: list[float] = []
        #: Features collected ahead of their top update, keyed by iteration.
        collected: dict[int, tuple[list, list]] = {}
        outstanding = 0      # dispatched-but-uncollected forwards
        next_collect = 0     # iteration index the next collection yields

        def collect_one() -> None:
            nonlocal outstanding, next_collect, syncs
            collected[next_collect] = executor.collect_forward(ops.workers)
            outstanding -= 1
            next_collect += 1
            syncs += 1

        for slot in order:
            spec = slot.spec
            if spec.stage is RoundStage.INSTALL:
                ops.note(RoundStage.INSTALL)
                if ops.install_nowait is not None:
                    ops.install_nowait()
                else:
                    ops.install()
                    syncs += 1
            elif spec.stage is RoundStage.BOTTOM_FORWARD:
                ops.note(RoundStage.BOTTOM_FORWARD, spec.iteration)
                executor.dispatch_forward(ops.workers, ops.batch_sizes)
                outstanding += 1
                lags.append(slot.lag)
            elif spec.stage is RoundStage.TOP_UPDATE:
                while spec.iteration not in collected:
                    collect_one()
                features, labels = collected.pop(spec.iteration)
                ops.note(RoundStage.TOP_UPDATE, spec.iteration)
                loss, gradients = ops.update_top(features, labels)
                losses.append(loss)
                self._pending_gradients = gradients
            elif spec.stage is RoundStage.BACKWARD_DISPATCH:
                # Bulk safety: gradients only travel while no bulk reply is
                # mid-flight the other way, so every outstanding forward is
                # collected first (the children computed them already).
                while outstanding:
                    collect_one()
                ops.note(RoundStage.BACKWARD_DISPATCH, spec.iteration)
                executor.dispatch_backward(ops.workers, self._pending_gradients)
                self._pending_gradients = None
            elif spec.stage is RoundStage.AGGREGATE:
                syncs += self._relaxed_aggregate(ops)
        self._report(syncs, float(np.mean(lags)) if lags else 0.0)
        return losses

    def _relaxed_aggregate(self, ops: SplitRoundOps) -> int:
        """Aggregate with the cross-round overlap window; returns syncs used.

        The state collection is dispatched first; while the executor's tail
        compute (the final local updates and the state capture) proceeds,
        the parent runs its round accounting and -- the cross-round part --
        the *next* round's PLAN/GA.  Only then does the scheduler block for
        the states.  Requires the engine to have split its aggregate into
        collect + ``finish_aggregate``; ops without the split keep the
        blocking aggregate.
        """
        executor = ops.executor
        if ops.finish_aggregate is None:
            ops.note(RoundStage.AGGREGATE)
            if ops.account is not None:
                ops.account()
            if ops.prefetch_plan is not None:
                ops.prefetch_plan()
            ops.aggregate()
            return 1
        executor.request_states(ops.workers)
        # Account *before* prefetch: planning round r+1 advances the
        # simulated cluster, which accounting for round r must not see.
        if ops.account is not None:
            ops.account()
        if ops.prefetch_plan is not None:
            ops.note(RoundStage.PLAN)
            ops.prefetch_plan()
        ops.note(RoundStage.AGGREGATE)
        states = executor.collect_states(ops.workers)
        ops.finish_aggregate(states)
        return 1


def build_pipeline(config) -> PipelineScheduler:
    """Instantiate the scheduler named in ``config.pipeline`` via the registry."""
    from repro.api.registry import PIPELINES

    return PIPELINES.get(config.pipeline)(config)
