"""The staged round pipeline: how one communication round is scheduled.

Both training engines describe a round as a fixed sequence of *stages*
(:class:`RoundStage`): plan the worker set, install the bottom models, then
for each of the ``tau`` local iterations run the bottom forward, merge the
features, update the top model and dispatch the gradients for the local SGD
steps, and finally aggregate the bottom models.  A
:class:`PipelineScheduler` owns the execution order of those stages; the
engines only provide the stage bodies through :class:`SplitRoundOps` /
:class:`FullRoundOps`.

Two schedulers are registered (``ExperimentConfig(pipeline=...)``):

* ``sync`` -- :class:`PipelineScheduler`: every stage runs to completion
  before the next starts.  This is the reference order; its behaviour
  *defines* what the pipelined scheduler must reproduce bit-exactly.
* ``pipelined`` -- :class:`PipelinedScheduler`: when the executor supports
  asynchronous dispatch (``Executor.supports_pipelining``), iteration
  ``k+1``'s bottom-forward work is double-buffered against iteration
  ``k``'s top update: the mini-batches for ``k+1`` are drawn and shipped
  while the children still compute forward ``k``, and the gradient
  dispatch of ``k`` is fused with the forward launch of ``k+1`` into a
  single synchronisation.  The data dependency (forward ``k+1`` runs on
  weights updated by backward ``k``) is never broken -- the staleness
  bound is 0 -- so histories stay bit-exact with the ``sync`` scheduler.
  Executors without the capability (and SplitFed-style rounds that
  aggregate after every iteration) transparently fall back to the
  synchronous order.

Schedulers hold no cross-round state, so switching them never invalidates
a checkpoint; ``Session.save_checkpoint`` still drains the executor first
so no in-flight asynchronous dispatch can race the state capture.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.worker import SplitWorker
    from repro.parallel.base import Executor

logger = get_logger("parallel.pipeline")


class RoundStage(enum.Enum):
    """The stages of one communication round, in reference order."""

    PLAN = "plan"
    INSTALL = "install"
    BOTTOM_FORWARD = "bottom_forward"
    MERGE = "merge"
    TOP_UPDATE = "top_update"
    BACKWARD_DISPATCH = "backward_dispatch"
    LOCAL_STEP = "local_step"
    AGGREGATE = "aggregate"


#: Stage observer signature: ``(stage, iteration)``; iteration is ``None``
#: for the per-round stages (install/aggregate).
StageHook = Callable[[RoundStage, "int | None"], None]


@dataclass
class SplitRoundOps:
    """Stage bodies of one split-training round, supplied by the engine.

    The scheduler decides *when* each runs; the engine decides *what* they
    do.  ``update_top`` covers the MERGE and TOP_UPDATE stages and returns
    ``(loss, gradients)`` with the gradient segments aligned with
    ``workers``; the executor's ``backward_step`` covers BACKWARD_DISPATCH
    and LOCAL_STEP.
    """

    executor: "Executor"
    workers: "list[SplitWorker]"
    batch_sizes: list[int]
    install: Callable[[], None]
    update_top: Callable[[list, list], tuple[float, list[np.ndarray]]]
    aggregate: Callable[[], None]
    on_stage: StageHook | None = None

    def note(self, stage: RoundStage, iteration: int | None = None) -> None:
        if self.on_stage is not None:
            self.on_stage(stage, iteration)


@dataclass
class FullRoundOps:
    """Stage bodies of one full-model (FL) round.

    ``train`` runs every selected worker's local iterations (LOCAL_STEP)
    and returns the locally updated state dicts; ``aggregate`` consumes
    them.
    """

    executor: "Executor"
    workers: "list[SplitWorker]"
    train: Callable[[], list]
    aggregate: Callable[[list], None]
    on_stage: StageHook | None = None

    def note(self, stage: RoundStage, iteration: int | None = None) -> None:
        if self.on_stage is not None:
            self.on_stage(stage, iteration)


class PipelineScheduler:
    """Reference scheduler: stages run strictly one after another."""

    name = "sync"

    def run_split_round(
        self,
        ops: SplitRoundOps,
        local_iterations: int,
        aggregate_every_iteration: bool,
    ) -> list[float]:
        """Execute INSTALL .. AGGREGATE and return the per-iteration losses."""
        ops.note(RoundStage.INSTALL)
        ops.install()
        losses: list[float] = []
        for iteration in range(local_iterations):
            ops.note(RoundStage.BOTTOM_FORWARD, iteration)
            features, labels = ops.executor.forward(ops.workers, ops.batch_sizes)
            ops.note(RoundStage.TOP_UPDATE, iteration)
            loss, gradients = ops.update_top(features, labels)
            ops.note(RoundStage.BACKWARD_DISPATCH, iteration)
            ops.executor.backward_step(ops.workers, gradients)
            losses.append(loss)
            if aggregate_every_iteration:
                ops.note(RoundStage.AGGREGATE, iteration)
                ops.aggregate()
                ops.note(RoundStage.INSTALL, iteration)
                ops.install()
        if not aggregate_every_iteration:
            ops.note(RoundStage.AGGREGATE)
            ops.aggregate()
        return losses

    def run_full_round(self, ops: FullRoundOps) -> list:
        """Execute the FL round stages and return the local state dicts."""
        ops.note(RoundStage.LOCAL_STEP)
        states = ops.train()
        ops.note(RoundStage.AGGREGATE)
        ops.aggregate(states)
        return states

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class PipelinedScheduler(PipelineScheduler):
    """Double-buffered scheduler: overlap transfer/dispatch across iterations.

    Requires the split-phase executor capability (``stage_forward`` /
    ``launch_forward`` / ``collect_forward`` / ``fused_backward_forward`` /
    ``backward_step_nowait``); falls back to the synchronous order when the
    executor lacks it or the round re-installs after every iteration.
    """

    name = "pipelined"

    def __init__(self) -> None:
        self._warned_fallback = False

    def run_split_round(
        self,
        ops: SplitRoundOps,
        local_iterations: int,
        aggregate_every_iteration: bool,
    ) -> list[float]:
        executor = ops.executor
        if local_iterations <= 0:
            # Nothing to double-buffer; the pre-loop launch would leave an
            # uncollected forward behind.  The sync order handles zero
            # iterations gracefully.
            return super().run_split_round(
                ops, local_iterations, aggregate_every_iteration
            )
        if not getattr(executor, "supports_pipelining", False) or aggregate_every_iteration:
            if not self._warned_fallback:
                self._warned_fallback = True
                reason = (
                    "the round re-installs after every iteration"
                    if aggregate_every_iteration
                    else f"executor {executor.name!r} has no asynchronous dispatch"
                )
                logger.warning(
                    "pipelined scheduler falling back to synchronous stage "
                    "order: %s", reason,
                )
            return super().run_split_round(
                ops, local_iterations, aggregate_every_iteration
            )
        ops.note(RoundStage.INSTALL)
        ops.install()
        losses: list[float] = []
        # Double buffer: iteration 0's batches are staged and its forward
        # launched before the loop; inside the loop, iteration k+1's batches
        # ship while the children still compute forward k.
        ops.note(RoundStage.BOTTOM_FORWARD, 0)
        executor.stage_forward(ops.workers, ops.batch_sizes)
        executor.launch_forward(ops.workers)
        for iteration in range(local_iterations):
            if iteration + 1 < local_iterations:
                ops.note(RoundStage.BOTTOM_FORWARD, iteration + 1)
                executor.stage_forward(ops.workers, ops.batch_sizes)
            features, labels = executor.collect_forward(ops.workers)
            ops.note(RoundStage.TOP_UPDATE, iteration)
            loss, gradients = ops.update_top(features, labels)
            ops.note(RoundStage.BACKWARD_DISPATCH, iteration)
            if iteration + 1 < local_iterations:
                # One synchronisation: backward k + step + forward k+1.
                executor.fused_backward_forward(ops.workers, gradients)
            else:
                executor.backward_step_nowait(ops.workers, gradients)
            losses.append(loss)
        ops.note(RoundStage.AGGREGATE)
        ops.aggregate()
        return losses


def build_pipeline(config) -> PipelineScheduler:
    """Instantiate the scheduler named in ``config.pipeline`` via the registry."""
    from repro.api.registry import PIPELINES

    return PIPELINES.get(config.pipeline)(config)
