"""The executor interface: how engines run per-worker computation.

MergeSFL models workers as physically distinct devices whose bottom-model
computation happens concurrently; the training engines, however, only
describe *what* every selected worker must compute each iteration.  An
:class:`Executor` decides *how* that per-worker computation is carried
out -- one worker after another in the calling thread
(:class:`~repro.parallel.serial.SerialExecutor`), vectorized across the
worker axis in single numpy kernels
(:class:`~repro.parallel.batched.BatchedExecutor`), or fanned out to a pool
of OS processes (:class:`~repro.parallel.process.ProcessExecutor`).

All executors are *semantically interchangeable*: for a fixed seed they
must produce bit-identical training trajectories.  The contract keeps every
piece of checkpointed state (data loaders, participation counters, RNG
streams) inside the engine/worker objects; executors only hold per-round
scratch state that is rebuilt by :meth:`Executor.install`, which is why
switching executors never invalidates a checkpoint.

Split-training call sequence, per round (mirrors ``SplitTrainingEngine``)::

    install(workers, bottom, lrs)          # distribute the global bottom
    repeat tau times:
        forward(workers, batch_sizes)      # features for the PS
        ... top-model update on the PS ...
        backward_step(workers, gradients)  # dispatched gradients + SGD step
    bottom_states(workers)                 # collect for aggregation

Full-model (FL) call sequence, per round::

    train_full(workers, model, loss_fn, iterations, batch_size, lr)
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.worker import SplitWorker
    from repro.nn.module import Sequential


class Executor(abc.ABC):
    """Execution backend for the per-worker compute of one training round."""

    #: Registry name of the backend (also used in logs and error messages).
    name: str = "abstract"

    #: Whether the backend implements the split-phase pipelining protocol
    #: (``stage_forward`` / ``launch_forward`` / ``collect_forward`` /
    #: ``fused_backward_forward`` / ``backward_step_nowait``) that the
    #: pipelined scheduler (:mod:`repro.parallel.pipeline`) drives.  In-
    #: process backends gain nothing from it and leave this ``False``; the
    #: scheduler then falls back to the synchronous stage order.
    supports_pipelining: bool = False

    #: Whether the backend implements the *relaxed dispatch* protocol the
    #: bounded-staleness scheduler drives (``install_nowait`` /
    #: ``dispatch_forward`` / ``collect_forward`` / ``dispatch_backward`` /
    #: ``request_states`` / ``collect_states``).  The contract is ordering,
    #: not timing: commands execute per-worker in dispatch order, so a
    #: forward dispatched before a pending backward runs on weights that
    #: miss that update -- the backend keeps delayed backwards well-defined
    #: with in-flight snapshots (:mod:`repro.parallel.staleness`) and the
    #: relaxed trajectory stays deterministic and backend-independent.
    #: Backends without the capability leave this ``False``; the staleness
    #: scheduler then falls back to the *exact* schedule (a semantic
    #: fallback, logged loudly).
    supports_staleness: bool = False

    # -- split training -------------------------------------------------------
    @abc.abstractmethod
    def install(
        self,
        workers: "list[SplitWorker]",
        bottom: "Sequential",
        learning_rates: list[float],
    ) -> None:
        """Distribute a fresh copy of the global bottom model to ``workers``.

        Equivalent to ``worker.receive_bottom_model(bottom, lr)`` for every
        worker: each worker starts the round from identical parameters and a
        freshly zeroed optimizer, with its own (batch-size-scaled) learning
        rate.
        """

    def install_multi(
        self,
        workers: "list[SplitWorker]",
        bottom: "Sequential",
        learning_rates: list[float],
        depths: list[int],
    ) -> None:
        """Distribute per-worker *prefixes* of the bottom model.

        Worker ``i`` receives ``bottom.layers[:depths[i]]`` -- the
        heterogeneous-split-point generalization of :meth:`install`.  The
        default groups workers by depth and issues one ordinary
        :meth:`install` per group, which is correct for any backend whose
        install state is per-worker; backends with cohort-level install
        state (the batched executor's stacked snapshot) override this.
        Uniform runs never call it, so the single-depth path is untouched.
        """
        from repro.nn.module import Sequential

        for depth in sorted(set(depths)):
            subset = [w for w, d in zip(workers, depths) if d == depth]
            subset_lrs = [
                lr for lr, d in zip(learning_rates, depths) if d == depth
            ]
            prefix = (
                bottom if depth == len(bottom)
                else Sequential(bottom.layers[:depth])
            )
            self.install(subset, prefix, subset_lrs)

    def install_multi_nowait(
        self,
        workers: "list[SplitWorker]",
        bottom: "Sequential",
        learning_rates: list[float],
        depths: list[int],
    ) -> None:
        """Asynchronous :meth:`install_multi` for relaxed-dispatch backends.

        Groups by depth like the synchronous variant but dispatches each
        group through ``install_nowait`` so the staleness scheduler keeps
        its ordering semantics.  Only meaningful on backends advertising
        :attr:`supports_staleness`.
        """
        from repro.nn.module import Sequential

        for depth in sorted(set(depths)):
            subset = [w for w, d in zip(workers, depths) if d == depth]
            subset_lrs = [
                lr for lr, d in zip(learning_rates, depths) if d == depth
            ]
            prefix = (
                bottom if depth == len(bottom)
                else Sequential(bottom.layers[:depth])
            )
            self.install_nowait(subset, prefix, subset_lrs)

    @abc.abstractmethod
    def forward(
        self, workers: "list[SplitWorker]", batch_sizes: list[int]
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Run every worker's bottom model on its next local mini-batch.

        Returns:
            ``(features, labels)`` lists aligned with ``workers``; the
            features are the split-layer activations sent to the PS.
        """

    @abc.abstractmethod
    def backward_step(
        self, workers: "list[SplitWorker]", gradients: list[np.ndarray]
    ) -> None:
        """Back-propagate dispatched gradients and take the local SGD steps."""

    @abc.abstractmethod
    def bottom_states(
        self, workers: "list[SplitWorker]"
    ) -> list[dict[str, np.ndarray]]:
        """State dicts of the locally updated bottom models, for aggregation."""

    # -- full-model (FL) training ---------------------------------------------
    @abc.abstractmethod
    def train_full(
        self,
        workers: "list[SplitWorker]",
        model: "Sequential",
        loss_fn,
        iterations: int,
        batch_size: int,
        learning_rate: float,
    ) -> list[dict[str, np.ndarray]]:
        """Train the full ``model`` locally on every worker (FedAvg-style).

        Returns the locally updated state dicts, aligned with ``workers``;
        the caller owns aggregation.
        """

    # -- lifecycle ------------------------------------------------------------
    def drain(self) -> None:
        """Block until no asynchronously dispatched work is in flight.

        Engines call this before capturing checkpoint state so a pipelined
        round can never race the state capture.  Backends without
        asynchronous dispatch have nothing to wait for.
        """

    def close(self) -> None:
        """Release backend resources (worker processes, pools); idempotent."""

    # -- transport accounting and codec state ---------------------------------
    def transport_stats(self) -> dict[str, int] | None:
        """Cumulative wire traffic, or ``None`` for in-process backends.

        Backends that move payloads across a process boundary return
        ``{"bytes_on_wire": ..., "logical_bytes": ...}`` monotonic
        counters; engines record per-round deltas in
        :class:`~repro.metrics.history.RoundRecord`.
        """
        return None

    def codec_state(self) -> dict | None:
        """Checkpointable codec state (error-feedback residuals), if any.

        ``None`` means the backend carries no stateful transport codec and
        the engine checkpoint stays unchanged.
        """
        return None

    def load_codec_state(self, state: dict | None) -> None:
        """Restore :meth:`codec_state`; a no-op for backends without one."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
