"""Parallel execution backends for the training engines.

Every engine describes *what* each selected worker computes per round; an
:class:`~repro.parallel.base.Executor` decides *how*:

* ``serial`` -- one worker after another (the reference semantics).
* ``batched`` -- all workers vectorized into stacked numpy kernels.
* ``process`` -- workers fanned out to a pool of OS processes.

All three produce bit-identical training trajectories for a fixed seed;
pick one with ``ExperimentConfig(executor="batched")`` or register your own
with :func:`~repro.api.registry.register_executor`.  Executor factories
receive the full :class:`~repro.config.ExperimentConfig` so backends can
read tuning knobs from ``config.extras`` (the process pool size, for
example, comes from ``extras["executor_processes"]``).
"""

from repro.api.registry import register_executor
from repro.parallel.base import Executor
from repro.parallel.batched import BatchedExecutor
from repro.parallel.process import ProcessExecutor
from repro.parallel.serial import SerialExecutor

__all__ = [
    "BatchedExecutor",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "build_executor",
]


@register_executor("serial", description="one worker after another, in-thread")
def _build_serial(config) -> SerialExecutor:
    return SerialExecutor()


@register_executor("batched", description="workers stacked into vectorized numpy kernels")
def _build_batched(config) -> BatchedExecutor:
    return BatchedExecutor()


@register_executor("process", description="workers fanned out to a process pool")
def _build_process(config) -> ProcessExecutor:
    processes = config.extras.get("executor_processes")
    return ProcessExecutor(
        processes=int(processes) if processes is not None else None,
        start_method=config.extras.get("executor_start_method"),
    )


def build_executor(config) -> Executor:
    """Instantiate the executor named in ``config.executor`` via the registry."""
    from repro.api.registry import EXECUTORS

    return EXECUTORS.get(config.executor)(config)
