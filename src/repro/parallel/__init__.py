"""Parallel execution backends for the training engines.

Every engine describes *what* each selected worker computes per round; an
:class:`~repro.parallel.base.Executor` decides *how*:

* ``serial`` -- one worker after another (the reference semantics).
* ``batched`` -- all workers vectorized into stacked numpy kernels.
* ``process`` -- workers fanned out to a pool of OS processes.

All three produce bit-identical training trajectories for a fixed seed;
pick one with ``ExperimentConfig(executor="batched")`` or register your own
with :func:`~repro.api.registry.register_executor`.  Executor factories
receive the full :class:`~repro.config.ExperimentConfig` so backends can
read tuning knobs from ``config.extras`` (the process pool size, for
example, comes from ``extras["executor_processes"]``).

Two further axes compose with the executor choice:

* the **round pipeline** (``config.pipeline``, :mod:`repro.parallel.pipeline`)
  schedules the stages of each round -- ``sync`` runs them strictly in
  order, ``pipelined`` double-buffers iteration ``k+1``'s bottom-forward
  work against iteration ``k``'s top update on capable executors, and
  ``staleness`` schedules by declared artifact dependencies with a bounded
  staleness (``config.staleness``; 0 is bit-exact, ``>= 1`` is a
  deterministic measured relaxation with cross-round pipelining);
* the **feature transport** (``config.transport``,
  :mod:`repro.parallel.transport`) moves tensors across the process
  executor's process boundary -- ``pipe`` pickles them, ``shm`` ships them
  through shared-memory ring buffers (``extras["transport_capacity"]``
  tunes the per-direction ring size);
* the **transport codec** (``config.codec``, :mod:`repro.parallel.codec`)
  compresses the feature/gradient arrays crossing either transport --
  ``none`` (the default) is a bit-exact passthrough, ``fp16``/``bf16``/
  ``int8``/``topk`` trade precision for wire bytes, with
  ``extras["codec_policy"]`` assigning different codecs per payload class
  and ``extras["codec_topk_ratio"]`` tuning sparsification.

Every combination at ``codec="none"`` is bit-exact with every other; lossy
codecs are deterministic, transport-independent relaxations pinned by
convergence-tolerance regressions.
"""

from repro.api.registry import (
    register_executor,
    register_pipeline,
    register_transport,
)
from repro.parallel.base import Executor
from repro.parallel.batched import BatchedExecutor
from repro.parallel.codec import (
    CODECS,
    Codec,
    CodecPolicy,
    build_codec_policy,
)
from repro.parallel.pipeline import (
    ArtifactKind,
    ArtifactRef,
    BoundedStalenessScheduler,
    FullRoundOps,
    PipelinedScheduler,
    PipelineScheduler,
    RoundReport,
    RoundStage,
    SplitRoundOps,
    StageSpec,
    build_pipeline,
    relaxed_dispatch_order,
    round_stage_specs,
)
from repro.parallel.process import ProcessExecutor
from repro.parallel.serial import SerialExecutor
from repro.parallel.staleness import InflightQueue
from repro.parallel.transport import (
    DEFAULT_RING_CAPACITY,
    PipeTransport,
    SharedMemoryTransport,
    Transport,
)

__all__ = [
    "ArtifactKind",
    "ArtifactRef",
    "BatchedExecutor",
    "BoundedStalenessScheduler",
    "CODECS",
    "Codec",
    "CodecPolicy",
    "Executor",
    "FullRoundOps",
    "InflightQueue",
    "PipeTransport",
    "PipelineScheduler",
    "PipelinedScheduler",
    "ProcessExecutor",
    "RoundReport",
    "RoundStage",
    "SerialExecutor",
    "SharedMemoryTransport",
    "SplitRoundOps",
    "StageSpec",
    "Transport",
    "build_codec_policy",
    "build_executor",
    "build_pipeline",
    "build_transport",
    "relaxed_dispatch_order",
    "round_stage_specs",
]


@register_executor("serial", description="one worker after another, in-thread")
def _build_serial(config) -> SerialExecutor:
    return SerialExecutor()


@register_executor("batched", description="workers stacked into vectorized numpy kernels")
def _build_batched(config) -> BatchedExecutor:
    return BatchedExecutor()


@register_executor("process", description="workers fanned out to a process pool")
def _build_process(config) -> ProcessExecutor:
    processes = config.extras.get("executor_processes")
    return ProcessExecutor(
        processes=int(processes) if processes is not None else None,
        start_method=config.extras.get("executor_start_method"),
        transport=build_transport(config),
    )


@register_transport("pipe", description="pickle whole messages over a pipe")
def _build_pipe_transport(config) -> PipeTransport:
    return PipeTransport(codec=build_codec_policy(config))


@register_transport("shm", description="arrays via shared-memory ring buffers")
def _build_shm_transport(config) -> SharedMemoryTransport:
    capacity = config.extras.get("transport_capacity")
    return SharedMemoryTransport(
        capacity=int(capacity) if capacity is not None else DEFAULT_RING_CAPACITY,
        codec=build_codec_policy(config),
    )


@register_pipeline("sync", description="stages run strictly in order")
def _build_sync_pipeline(config) -> PipelineScheduler:
    return PipelineScheduler()


@register_pipeline("pipelined", description="double-buffered cross-iteration overlap")
def _build_pipelined_pipeline(config) -> PipelinedScheduler:
    return PipelinedScheduler()


@register_pipeline(
    "staleness",
    description="dependency-tracked bounded-staleness scheduling "
                "(config.staleness; 0 = exact)",
)
def _build_staleness_pipeline(config) -> BoundedStalenessScheduler:
    return BoundedStalenessScheduler(staleness=int(getattr(config, "staleness", 0)))


def build_executor(config) -> Executor:
    """Instantiate the executor named in ``config.executor`` via the registry."""
    from repro.api.registry import EXECUTORS

    return EXECUTORS.get(config.executor)(config)


def build_transport(config) -> Transport:
    """Instantiate the transport named in ``config.transport`` via the registry."""
    from repro.api.registry import TRANSPORTS

    return TRANSPORTS.get(config.transport)(config)
