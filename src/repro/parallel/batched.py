"""Vectorized executor: all selected workers in one stacked numpy kernel.

The batched executor removes the per-worker Python loop from the hot path:
the selected workers' bottom models are stacked along a leading worker axis
and each local iteration runs one vectorized forward/backward (see
:mod:`repro.parallel.kernels`) instead of one per worker.  Because batch
size regulation assigns *different* batch sizes per worker, workers are
grouped by their drawn mini-batch shape and each shape group is stacked
into its own rectangular tensor.

Sampling state never leaves the workers: mini-batches are drawn from every
worker's own :class:`~repro.data.loader.BatchLoader` in the main process,
so checkpoints are identical to serial execution.

Models containing layers without a batched kernel (third-party plugins;
every built-in layer, including BatchNorm1d/2d, has one) transparently
fall back to serial execution, with a one-time warning per layer-type set.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Sequential
from repro.parallel.base import Executor
from repro.parallel.kernels import (
    BatchedModel,
    BatchedSGD,
    batched_cross_entropy_gradient,
    unsupported_layers,
)
from repro.parallel.serial import SerialExecutor
from repro.utils.logging import get_logger

logger = get_logger("parallel.batched")


class _Group:
    """One shape group: a stacked model + optimizer for a subset of workers."""

    def __init__(self, slots: list[int], model: BatchedModel, sgd: BatchedSGD) -> None:
        self.slots = slots
        self.model = model
        self.sgd = sgd
        self.pending_batches: list[int] = [0] * len(slots)


class _RoundState:
    """Everything installed for the current round's selected workers."""

    def __init__(self, snapshot, worker_ids, learning_rates, momentum,
                 weight_decay, max_grad_norm) -> None:
        self.snapshot = snapshot
        self.worker_ids = list(worker_ids)
        self.learning_rates = np.asarray(learning_rates, dtype=np.float64)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self.groups: list[_Group] | None = None
        self.group_of: dict[int, tuple[_Group, int]] = {}

    def build_groups(self, shapes: list[tuple[int, ...]]) -> None:
        """Partition worker slots by mini-batch shape and stack each group."""
        by_shape: dict[tuple[int, ...], list[int]] = {}
        for slot, shape in enumerate(shapes):
            by_shape.setdefault(shape, []).append(slot)
        self.groups = []
        for slots in by_shape.values():
            model = BatchedModel(self.snapshot, len(slots))
            sgd = BatchedSGD(
                model.parameters(),
                self.learning_rates[slots],
                momentum=self.momentum,
                weight_decay=self.weight_decay,
                max_grad_norm=self.max_grad_norm,
            )
            group = _Group(slots, model, sgd)
            self.groups.append(group)
            for position, slot in enumerate(slots):
                self.group_of[slot] = (group, position)


class _MultiRoundState:
    """Per-depth sub-rounds of a heterogeneous-split install.

    Workers sharing a cut depth stack into one (or more, by mini-batch
    shape) vectorized kernels exactly like a uniform round; ``slots`` maps
    each sub-round's local worker positions back to the cohort order.
    """

    def __init__(
        self, worker_ids: list[int],
        subrounds: list[tuple[list[int], _RoundState]],
    ) -> None:
        self.worker_ids = list(worker_ids)
        self.subrounds = subrounds


def _uniform_worker_hyperparams(workers) -> tuple | None:
    """The shared ``(momentum, weight_decay, max_grad_norm)``, or ``None``.

    The stacked optimizer shares scalar hyper-parameters across the group;
    heterogeneous settings (possible for hand-wired workers) use the serial
    fallback instead.
    """
    settings = {
        (worker.momentum, worker.weight_decay, worker.max_grad_norm)
        for worker in workers
    }
    if len(settings) != 1:
        return None
    return next(iter(settings))


class BatchedExecutor(Executor):
    """Vectorize the per-worker compute across the worker axis."""

    name = "batched"

    def __init__(self) -> None:
        self._serial = SerialExecutor()
        self._round: _RoundState | None = None
        self._multi: _MultiRoundState | None = None
        self._fallback_active = False
        self._warned: set[tuple[str, ...]] = set()

    # -- fallback -------------------------------------------------------------
    def _fallback_reason(self, workers, model) -> str | None:
        unsupported = unsupported_layers(model)
        if unsupported:
            return f"no batched kernels for layer types: {unsupported}"
        if _uniform_worker_hyperparams(workers) is None:
            return "workers have heterogeneous optimizer hyper-parameters"
        return None

    def _warn_fallback(self, reason: str) -> None:
        key = (reason,)
        if key not in self._warned:
            self._warned.add(key)
            logger.warning("batched executor falling back to serial: %s", reason)

    # -- split training -------------------------------------------------------
    def install(self, workers, bottom, learning_rates) -> None:
        self._multi = None
        reason = self._fallback_reason(workers, bottom)
        if reason is not None:
            self._warn_fallback(reason)
            self._round = None
            self._fallback_active = True
            self._serial.install(workers, bottom, learning_rates)
            return
        self._fallback_active = False
        momentum, weight_decay, max_grad_norm = _uniform_worker_hyperparams(workers)
        # Snapshot the global bottom now (one clone instead of one per
        # worker), so later mutation of the server's model cannot leak into
        # this round's stacked parameters.
        self._round = _RoundState(
            snapshot=bottom.clone().train(),
            worker_ids=[worker.worker_id for worker in workers],
            learning_rates=learning_rates,
            momentum=momentum,
            weight_decay=weight_decay,
            max_grad_norm=max_grad_norm,
        )

    def install_multi(self, workers, bottom, learning_rates, depths) -> None:
        """Stack workers *within* each cut-depth group (heterogeneous splits)."""
        self._round = None
        self._multi = None
        reason = self._fallback_reason(workers, bottom)
        if reason is not None:
            self._warn_fallback(reason)
            self._fallback_active = True
            self._serial.install_multi(workers, bottom, learning_rates, depths)
            return
        if len(set(depths)) == 1 and depths[0] == len(bottom):
            self.install(workers, bottom, learning_rates)
            return
        self._fallback_active = False
        momentum, weight_decay, max_grad_norm = _uniform_worker_hyperparams(workers)
        subrounds = []
        for depth in sorted(set(depths)):
            slots = [slot for slot, d in enumerate(depths) if d == depth]
            prefix = Sequential(bottom.layers[:depth]).clone().train()
            subrounds.append((slots, _RoundState(
                snapshot=prefix,
                worker_ids=[workers[slot].worker_id for slot in slots],
                learning_rates=[learning_rates[slot] for slot in slots],
                momentum=momentum,
                weight_decay=weight_decay,
                max_grad_norm=max_grad_norm,
            )))
        self._multi = _MultiRoundState(
            worker_ids=[worker.worker_id for worker in workers],
            subrounds=subrounds,
        )

    def _require_round(self, workers) -> _RoundState:
        state = self._round
        if state is None:
            raise RuntimeError("no bottom model installed on the batched executor")
        if [worker.worker_id for worker in workers] != state.worker_ids:
            raise RuntimeError(
                "worker set changed since install(); re-install the bottom model"
            )
        return state

    def _require_multi(self, workers) -> _MultiRoundState:
        state = self._multi
        assert state is not None
        if [worker.worker_id for worker in workers] != state.worker_ids:
            raise RuntimeError(
                "worker set changed since install_multi(); re-install"
            )
        return state

    def _multi_forward(self, workers, batch_sizes):
        state = self._require_multi(workers)
        # Draw in cohort order, exactly like the serial loop, so sampling
        # RNG streams stay bit-identical across executors.
        drawn = [
            worker.draw_batch(batch_size)
            for worker, batch_size in zip(workers, batch_sizes)
        ]
        features: list[np.ndarray | None] = [None] * len(workers)
        for slots, sub in state.subrounds:
            if sub.groups is None:
                sub.build_groups([drawn[slot][0].shape for slot in slots])
            for group in sub.groups:
                stacked = np.stack(
                    [drawn[slots[local]][0] for local in group.slots]
                )
                out = group.model.forward(stacked)
                for position, local in enumerate(group.slots):
                    features[slots[local]] = out[position]
                    group.pending_batches[position] = stacked.shape[1]
        labels = [labs for __, labs in drawn]
        return features, labels

    def _multi_backward_step(self, workers, gradients) -> None:
        state = self._require_multi(workers)
        for slots, sub in state.subrounds:
            if sub.groups is None:
                raise RuntimeError("backward_step called before forward")
            for group in sub.groups:
                for position, local in enumerate(group.slots):
                    got = gradients[slots[local]].shape[0]
                    expected = group.pending_batches[position]
                    if got != expected:
                        raise ValueError(
                            f"gradient batch {got} does not match the pending "
                            f"forward batch {expected}"
                        )
                stacked = np.stack(
                    [gradients[slots[local]] for local in group.slots]
                )
                group.sgd.zero_grad()
                group.model.backward(stacked)
                group.sgd.step()

    def _multi_bottom_states(self, workers):
        state = self._require_multi(workers)
        states: list[dict[str, np.ndarray] | None] = [None] * len(workers)
        for slots, sub in state.subrounds:
            if sub.groups is None:
                raise RuntimeError("bottom_states called before any forward pass")
            for local, slot in enumerate(slots):
                group, position = sub.group_of[local]
                states[slot] = group.model.state_dict_for(position)
        return states

    def forward(self, workers, batch_sizes):
        if self._fallback_active:
            return self._serial.forward(workers, batch_sizes)
        if self._multi is not None:
            return self._multi_forward(workers, batch_sizes)
        state = self._require_round(workers)
        drawn = [
            worker.draw_batch(batch_size)
            for worker, batch_size in zip(workers, batch_sizes)
        ]
        if state.groups is None:
            state.build_groups([data.shape for data, __ in drawn])
        features: list[np.ndarray | None] = [None] * len(workers)
        for group in state.groups:
            stacked = np.stack([drawn[slot][0] for slot in group.slots])
            out = group.model.forward(stacked)
            for position, slot in enumerate(group.slots):
                features[slot] = out[position]
                group.pending_batches[position] = stacked.shape[1]
        labels = [labs for __, labs in drawn]
        return features, labels

    def backward_step(self, workers, gradients) -> None:
        if self._fallback_active:
            self._serial.backward_step(workers, gradients)
            return
        if self._multi is not None:
            self._multi_backward_step(workers, gradients)
            return
        state = self._require_round(workers)
        if state.groups is None:
            raise RuntimeError("backward_step called before forward")
        for group in state.groups:
            for position, slot in enumerate(group.slots):
                got = gradients[slot].shape[0]
                expected = group.pending_batches[position]
                if got != expected:
                    raise ValueError(
                        f"gradient batch {got} does not match the pending "
                        f"forward batch {expected}"
                    )
            stacked = np.stack([gradients[slot] for slot in group.slots])
            group.sgd.zero_grad()
            group.model.backward(stacked)
            group.sgd.step()

    def bottom_states(self, workers):
        if self._fallback_active:
            return self._serial.bottom_states(workers)
        if self._multi is not None:
            return self._multi_bottom_states(workers)
        state = self._require_round(workers)
        if state.groups is None:
            raise RuntimeError("bottom_states called before any forward pass")
        states = []
        for slot, __ in enumerate(workers):
            group, position = state.group_of[slot]
            states.append(group.model.state_dict_for(position))
        return states

    # -- full-model (FL) training ---------------------------------------------
    def train_full(self, workers, model, loss_fn, iterations, batch_size, learning_rate):
        reason = self._fallback_reason(workers, model)
        if reason is None and type(loss_fn) is not CrossEntropyLoss:
            reason = f"no batched gradient for loss {type(loss_fn).__name__}"
        if reason is not None:
            self._warn_fallback(reason)
            return self._serial.train_full(
                workers, model, loss_fn, iterations, batch_size, learning_rate
            )
        momentum, weight_decay, max_grad_norm = _uniform_worker_hyperparams(workers)
        # Pre-draw every worker's mini-batch sequence (worker-major, exactly
        # the per-loader draw order of the serial loop).
        batches = [
            [worker.loader.next_batch(batch_size) for __ in range(iterations)]
            for worker in workers
        ]
        by_shape: dict[tuple[int, ...], list[int]] = {}
        for slot, worker_batches in enumerate(batches):
            shapes = {data.shape for data, __ in worker_batches}
            if len(shapes) != 1:
                raise RuntimeError(
                    f"worker {workers[slot].worker_id} drew mini-batches of "
                    f"varying shapes: {sorted(map(str, shapes))}"
                )
            by_shape.setdefault(next(iter(shapes)), []).append(slot)

        states: list[dict[str, np.ndarray] | None] = [None] * len(workers)
        for slots in by_shape.values():
            stacked_model = BatchedModel(model, len(slots))
            sgd = BatchedSGD(
                stacked_model.parameters(),
                np.full(len(slots), learning_rate, dtype=np.float64),
                momentum=momentum,
                weight_decay=weight_decay,
                max_grad_norm=max_grad_norm,
            )
            for iteration in range(iterations):
                data = np.stack([batches[slot][iteration][0] for slot in slots])
                labels = np.stack(
                    [np.asarray(batches[slot][iteration][1], dtype=np.int64)
                     for slot in slots]
                )
                sgd.zero_grad()
                logits = stacked_model.forward(data)
                grad = batched_cross_entropy_gradient(logits, labels)
                stacked_model.backward(grad)
                sgd.step()
            for position, slot in enumerate(slots):
                states[slot] = stacked_model.state_dict_for(position)
        return states
