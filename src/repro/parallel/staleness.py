"""Worker-local mechanics of bounded-staleness execution.

Under a relaxed schedule (see
:class:`~repro.parallel.pipeline.BoundedStalenessScheduler`) the bottom
forward of iteration ``k+1`` may execute *before* the backward of
iteration ``k`` has been applied.  That breaks the invariant the plain
``forward -> backward -> step`` path relies on: a layer's ``backward``
consumes the activation caches of its matching ``forward``, and a newer
forward overwrites them.

:class:`InflightQueue` restores well-defined semantics with per-iteration
snapshots, the worker-side equivalent of activation stashing in
asynchronous pipeline training:

* A forward that runs while an older forward still awaits its backward is
  executed on a *snapshot* (a clone) of the current weights.  The snapshot
  keeps both the weights the forward used and its activation caches alive
  until the delayed gradient arrives.  Stateful forward effects -- RNG
  streams, BatchNorm running statistics -- are mirrored back onto the
  master model, so they advance exactly once per forward in execution
  order regardless of snapshotting.
* A delayed backward back-propagates through its own snapshot (consistent
  weights and caches), then applies the resulting gradient to the *master*
  weights through the master optimizer -- classic delayed-gradient
  semantics: a gradient computed at version ``k - s`` updates version
  ``k`` (clipping, weight decay and momentum all act on the master).

When no forward is in flight, both paths collapse to the ordinary direct
``forward``/``backward`` on the master model, bit-identical to the
synchronous executors -- which is why the process executor can route *all*
its traffic through this queue without perturbing exact schedules.

Everything here is deterministic: the numbers depend only on the dispatch
order, never on timing, so a serial and a process run of the same relaxed
schedule stay bit-identical.  The queue holds only intra-round scratch
state; every relaxed schedule drains it before aggregation, so checkpoints
(taken at round boundaries) never see an in-flight snapshot.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.nn.module import Sequential
from repro.nn.optim import SGD
from repro.nn.serialization import load_module_extra_state, module_extra_state


@dataclass
class InflightForward:
    """One forward awaiting its (possibly delayed) backward.

    ``snapshot`` is ``None`` when the forward ran directly on the master
    model (no older forward was pending); otherwise it is the clone that
    holds the forward's weights and activation caches.
    """

    snapshot: Sequential | None
    batch_size: int


class InflightQueue:
    """FIFO of forwards whose backwards have not been applied yet."""

    def __init__(self) -> None:
        self._entries: deque[InflightForward] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all in-flight snapshots (fresh install / recovery)."""
        self._entries.clear()

    def forward(self, master: Sequential, data: np.ndarray) -> np.ndarray:
        """Run one bottom forward, snapshotting when it overtakes a backward."""
        if not self._entries:
            features = master.forward(data)
            self._entries.append(InflightForward(None, data.shape[0]))
            return features
        snapshot = master.clone()
        features = snapshot.forward(data)
        # Stateful forward effects advance on the master exactly once per
        # forward; only the *weights* the forward saw are stale.
        load_module_extra_state(master, module_extra_state(snapshot))
        self._entries.append(InflightForward(snapshot, data.shape[0]))
        return features

    def backward(
        self, master: Sequential, optimizer: SGD, gradient: np.ndarray
    ) -> None:
        """Apply the oldest pending forward's backward and step the master."""
        if not self._entries:
            raise RuntimeError("no forward is pending a backward")
        entry = self._entries.popleft()
        if gradient.shape[0] != entry.batch_size:
            raise ValueError(
                f"gradient batch {gradient.shape[0]} does not "
                f"match the pending forward batch {entry.batch_size}"
            )
        if entry.snapshot is None:
            optimizer.zero_grad()
            master.backward(gradient)
            optimizer.step()
            return
        snapshot = entry.snapshot
        snapshot.zero_grad()
        snapshot.backward(gradient)
        # Delayed gradient: computed on the snapshot's (stale) weights,
        # applied to the master's current ones.  Clone preserves parameter
        # order, so a positional transfer is exact.
        for target, source in zip(master.parameters(), snapshot.parameters()):
            target.grad = source.grad
        optimizer.step()
