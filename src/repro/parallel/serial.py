"""Sequential executor: one worker after another in the calling thread.

This is the reference backend.  It delegates straight to the
:class:`~repro.core.worker.SplitWorker` methods, so its behaviour *defines*
what the other executors must reproduce bit-exactly.

The backend also implements the relaxed-dispatch protocol of the
bounded-staleness scheduler (``supports_staleness``): dispatches execute
immediately in call order, which is exactly the per-worker ordering the
protocol promises, and forwards that overtake pending backwards go through
the shared in-flight snapshot mechanics
(:mod:`repro.parallel.staleness`).  A relaxed serial run is therefore the
*reference semantics* for relaxed process runs, just as the plain serial
run is for exact ones.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.parallel.base import Executor
from repro.parallel.staleness import InflightQueue


class SerialExecutor(Executor):
    """Run every worker's computation sequentially (the historical semantics)."""

    name = "serial"
    supports_staleness = True

    def __init__(self) -> None:
        #: Per-worker in-flight forwards of the relaxed protocol.
        self._inflight: dict[int, InflightQueue] = {}
        #: Completed-but-uncollected forward results, oldest first.
        self._features: deque[tuple[list, list]] = deque()
        #: Completed-but-uncollected state collections, oldest first.
        self._states: deque[list] = deque()

    def install(self, workers, bottom, learning_rates) -> None:
        # A failed relaxed round may leave uncollected results behind;
        # installing starts the round from a clean slate, mirroring the
        # process executor's recovery drain.
        self._features.clear()
        self._states.clear()
        for worker, lr in zip(workers, learning_rates):
            worker.receive_bottom_model(bottom, lr)
            self._inflight[worker.worker_id] = InflightQueue()

    def forward(self, workers, batch_sizes):
        features: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for worker, batch_size in zip(workers, batch_sizes):
            feats, labs = worker.forward_batch(batch_size)
            features.append(feats)
            labels.append(labs)
        return features, labels

    def backward_step(self, workers, gradients) -> None:
        for worker, gradient in zip(workers, gradients):
            worker.backward_and_step(gradient)

    def bottom_states(self, workers):
        return [worker.bottom_state() for worker in workers]

    def train_full(self, workers, model, loss_fn, iterations, batch_size, learning_rate):
        return [
            worker.train_full_model(
                model, loss_fn, iterations, batch_size, learning_rate
            )
            for worker in workers
        ]

    # -- relaxed dispatch (see repro.parallel.pipeline) -----------------------
    def install_nowait(self, workers, bottom, learning_rates) -> None:
        """Install immediately; in-process there is no ack to skip."""
        self.install(workers, bottom, learning_rates)

    def dispatch_forward(self, workers, batch_sizes) -> None:
        """Run the next forward now; it may overtake pending backwards."""
        features: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for worker, batch_size in zip(workers, batch_sizes):
            data, labs = worker.draw_batch(batch_size)
            queue = self._inflight[worker.worker_id]
            features.append(queue.forward(worker.bottom, data))
            labels.append(labs)
        self._features.append((features, labels))

    def collect_forward(self, workers):
        """Oldest dispatched-but-uncollected forward's results."""
        if not self._features:
            raise RuntimeError("collect_forward called with no forward in flight")
        return self._features.popleft()

    def dispatch_backward(self, workers, gradients) -> None:
        """Apply the oldest pending forward's (possibly delayed) backward."""
        for worker, gradient in zip(workers, gradients):
            self._inflight[worker.worker_id].backward(
                worker.bottom, worker.optimizer, gradient
            )

    def request_states(self, workers) -> None:
        """Capture the bottom states now; collected by ``collect_states``."""
        self._states.append(self.bottom_states(workers))

    def collect_states(self, workers):
        if not self._states:
            raise RuntimeError("collect_states called with no request in flight")
        return self._states.popleft()
