"""Sequential executor: one worker after another in the calling thread.

This is the reference backend.  It delegates straight to the
:class:`~repro.core.worker.SplitWorker` methods, so its behaviour *defines*
what the other executors must reproduce bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.base import Executor


class SerialExecutor(Executor):
    """Run every worker's computation sequentially (the historical semantics)."""

    name = "serial"

    def install(self, workers, bottom, learning_rates) -> None:
        for worker, lr in zip(workers, learning_rates):
            worker.receive_bottom_model(bottom, lr)

    def forward(self, workers, batch_sizes):
        features: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for worker, batch_size in zip(workers, batch_sizes):
            feats, labs = worker.forward_batch(batch_size)
            features.append(feats)
            labels.append(labs)
        return features, labels

    def backward_step(self, workers, gradients) -> None:
        for worker, gradient in zip(workers, gradients):
            worker.backward_and_step(gradient)

    def bottom_states(self, workers):
        return [worker.bottom_state() for worker in workers]

    def train_full(self, workers, model, loss_fn, iterations, batch_size, learning_rate):
        return [
            worker.train_full_model(
                model, loss_fn, iterations, batch_size, learning_rate
            )
            for worker in workers
        ]
