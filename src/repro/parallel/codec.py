"""Payload codecs for the feature transport.

MergeSFL's workers ship split-layer features up and gradients down on
every iteration, so in a real deployment the link -- not compute -- is the
bottleneck.  A :class:`Codec` compresses the float arrays crossing a
:class:`~repro.parallel.transport.Endpoint` before they are framed into
the shared-memory rings (or pickled over the pipe) and decompresses them
on the far side, trading numerical precision for wire bytes:

========  ============  ========================================================
codec     bits/value    semantics
========  ============  ========================================================
``none``  64            bit-exact passthrough (the default; no codec object is
                        even constructed, so the hot path is untouched)
``fp16``  16            IEEE half-precision cast; exact for fp16-representable
                        values, relative error <= 2^-11 inside +/-65504
``bf16``  16            bfloat16 emulation (upper half of float32 with
                        round-to-nearest-even); fp32's range at ~3 significant
                        digits
``int8``  8             per-tensor affine quantization; minimum and scale
                        travel in the frame metadata, absolute error <=
                        (max-min)/510 per tensor
``topk``  ~1.2 at 10%   magnitude top-k sparsification (int32 indices +
                        float64 values) with per-key error-feedback residual
                        accumulators, so dropped mass re-enters later messages
========  ============  ========================================================

Codecs only touch floating-point arrays; integer payloads (drawn shard
indices, worker ids) always pass through raw, as do the dataset shards
shipped once per pool lifetime.  Which codec applies to which message is
decided per *payload class* -- ``features`` (child -> parent activations),
``gradients`` (parent -> child split-layer gradients) and ``weights``
(collected bottom/full state dicts) -- by a :class:`CodecPolicy` negotiated
per :data:`~repro.api.registry.TRANSPORTS` endpoint: ``config.codec`` sets
the default for features and gradients (weights stay ``none`` unless asked)
and ``config.extras["codec_policy"]`` overrides individual classes, e.g.
``{"features": "topk", "weights": "fp16"}``.

The ``topk`` codec is *stateful*: every encoded tensor keeps a residual of
the mass it dropped, keyed by payload class and worker id, and adds it back
before the next top-k selection (error feedback).  Residuals serialize
through ``state_dict()`` / ``load_state_dict()`` -- the process executor
collects them from its children at checkpoint time and re-ships them on
resume -- so a checkpoint/resume cycle reproduces the lossy trajectory
bit-exactly.  Residuals held by a child that dies are reset (the lossy
trajectory after an executor death is deterministic given the death).

Register additional codecs with
:func:`~repro.api.registry.register_codec`; entries are :class:`Codec`
subclasses, looked up both to build policies and to decode self-describing
frames on the receiving side.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.api.registry import CODECS, register_codec
from repro.exceptions import ConfigurationError

#: Payload classes a :class:`CodecPolicy` can target.
FEATURES = "features"
GRADIENTS = "gradients"
WEIGHTS = "weights"
PAYLOAD_CLASSES = (FEATURES, GRADIENTS, WEIGHTS)

#: Classes ``config.codec`` applies to by default.  Weight state dicts are
#: aggregated into the global model, so they stay exact unless a policy
#: override asks for compression explicitly.
DEFAULT_CODEC_CLASSES = (FEATURES, GRADIENTS)

#: Default kept-coefficient fraction of the ``topk`` codec
#: (``extras["codec_topk_ratio"]`` overrides it).
DEFAULT_TOPK_RATIO = 0.1

#: Separator of the serialized residual-key segments (JSON checkpoints need
#: string keys).  Key segments are payload classes, worker ids and state-
#: dict parameter names, none of which contain it.
_KEY_SEP = "|"


def encode_key(key: tuple) -> str:
    """Serialize a residual key (tuple of str/int segments) to a string."""
    return _KEY_SEP.join(str(part) for part in key)


def decode_key(text: str) -> tuple:
    """Inverse of :func:`encode_key`; numeric segments become ints again."""
    return tuple(
        int(part) if part.lstrip("-").isdigit() and part.lstrip("-") else part
        for part in text.split(_KEY_SEP)
    )


class Codec(abc.ABC):
    """One compression scheme for float arrays crossing a transport.

    ``encode`` turns an array into a flat ``uint8`` payload plus a small
    picklable ``meta`` object that travels in the frame header (the control
    message); ``decode`` is a *static* inverse so the receiving side can
    reconstruct any frame from its codec name alone -- frames are
    self-describing and no receiver-side state is needed.
    """

    #: Registry name (also stamped into every encoded frame).
    name: str = "abstract"
    #: Whether ``decode(encode(x)) == x`` bit for bit.
    lossless: bool = False
    #: Nominal payload bits per encoded value (documentation/benchmarks).
    bits_per_value: float = 64.0
    #: Whether the codec carries cross-message state (error feedback).
    stateful: bool = False

    def applies_to(self, array: np.ndarray) -> bool:
        """Whether this codec should encode ``array`` (floats only)."""
        return array.dtype.kind == "f" and array.size > 0

    def params(self) -> dict:
        """Constructor kwargs that rebuild this codec in a child process."""
        return {}

    @abc.abstractmethod
    def encode(self, array: np.ndarray, key: tuple | None = None
               ) -> tuple[np.ndarray, object]:
        """Compress ``array`` into ``(uint8 payload, meta)``.

        ``key`` identifies the tensor's slot in the protocol (payload
        class, worker id, parameter name); stateful codecs key their
        residual accumulators by it.
        """

    @staticmethod
    @abc.abstractmethod
    def decode(payload: np.ndarray, shape: tuple, dtype: str, meta
               ) -> np.ndarray:
        """Reconstruct the (possibly approximated) array from a payload."""

    # -- error-feedback state (stateless codecs keep the defaults) -----------
    def state_dict(self) -> dict:
        """Residual accumulators keyed by raw tuple keys (empty if stateless)."""
        return {}

    def load_state_dict(self, state: dict, merge: bool = False) -> None:
        """Restore residuals; ``merge`` keeps accumulators not in ``state``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@register_codec("none", description="bit-exact passthrough (no codec)",
                bits_per_value=64, lossless=True)
class NoneCodec(Codec):
    """Identity codec.

    Registered so ``codec="none"`` validates and lists like every other
    name, but :func:`build_codec_policy` resolves ``"none"`` to *no codec
    at all* -- the transport's historical raw-array path -- so this class
    never runs in the hot path.  It still round-trips correctly for
    uniformity in property tests.
    """

    name = "none"
    lossless = True
    bits_per_value = 64.0

    def encode(self, array, key=None):
        flat = np.ascontiguousarray(array)
        return flat.reshape(-1).view(np.uint8), None

    @staticmethod
    def decode(payload, shape, dtype, meta):
        return payload.view(np.dtype(dtype)).reshape(shape).copy()


@register_codec("fp16", description="IEEE half-precision cast",
                bits_per_value=16, lossless=False)
class Fp16Codec(Codec):
    """Cast to float16 on the wire; exact for fp16-representable inputs."""

    name = "fp16"
    bits_per_value = 16.0

    def encode(self, array, key=None):
        half = np.ascontiguousarray(array, dtype=np.float16)
        return half.reshape(-1).view(np.uint8), None

    @staticmethod
    def decode(payload, shape, dtype, meta):
        half = payload.view(np.float16).reshape(shape)
        return half.astype(np.dtype(dtype))


@register_codec("bf16", description="bfloat16 (upper half of float32), "
                                    "round-to-nearest-even",
                bits_per_value=16, lossless=False)
class Bf16Codec(Codec):
    """bfloat16 emulation: float32's exponent range at 8 significand bits.

    numpy has no native bfloat16, so the cast keeps the upper 16 bits of
    the float32 representation with round-to-nearest-even on the dropped
    half -- the same rounding hardware bf16 units apply.
    """

    name = "bf16"
    bits_per_value = 16.0

    def encode(self, array, key=None):
        bits = np.ascontiguousarray(array, dtype=np.float32).view(np.uint32)
        rounded = (bits.astype(np.uint64) + 0x7FFF + ((bits >> 16) & 1)) >> 16
        upper = (rounded & 0xFFFF).astype(np.uint16)
        return upper.reshape(-1).view(np.uint8), None

    @staticmethod
    def decode(payload, shape, dtype, meta):
        bits = payload.view(np.uint16).astype(np.uint32) << 16
        return bits.view(np.float32).reshape(shape).astype(np.dtype(dtype))


@register_codec("int8", description="per-tensor affine uint8 quantization",
                bits_per_value=8, lossless=False)
class Int8Codec(Codec):
    """Per-tensor affine quantization to 256 levels.

    The tensor's minimum and scale ``(max - min) / 255`` travel in the
    frame metadata; absolute reconstruction error is at most half a
    quantization step, i.e. ``(max - min) / 510``.
    """

    name = "int8"
    bits_per_value = 8.0

    def encode(self, array, key=None):
        values = np.ascontiguousarray(array, dtype=np.float64)
        lo = float(values.min())
        hi = float(values.max())
        scale = (hi - lo) / 255.0
        if scale == 0.0 or not np.isfinite(scale):
            # Constant (or degenerate) tensors quantize to a single level.
            scale = 1.0
        levels = np.clip(np.rint((values - lo) / scale), 0.0, 255.0)
        return levels.astype(np.uint8).reshape(-1), (lo, scale)

    @staticmethod
    def decode(payload, shape, dtype, meta):
        lo, scale = meta
        values = payload.astype(np.float64) * scale + lo
        return values.reshape(shape).astype(np.dtype(dtype))


@register_codec("topk", description="top-k magnitude sparsification with "
                                    "error-feedback residuals",
                bits_per_value=1.2, lossless=False)
class TopKCodec(Codec):
    """Keep the ``ratio`` largest-magnitude coefficients of each tensor.

    The payload is ``k`` int32 flat indices followed by ``k`` float64
    values (~12 bytes per kept coefficient, i.e. ~1.2 bits/value at the
    default 10% ratio on float64 tensors).  With ``error_feedback`` (the
    default, EF-SGD style) the dropped mass accumulates in a per-key
    residual that is added back before the next selection, so no signal is
    permanently lost -- only delayed.  Residuals are the codec's
    checkpointable state; see :meth:`state_dict`.
    """

    name = "topk"
    bits_per_value = 1.2
    stateful = True

    def __init__(self, ratio: float = DEFAULT_TOPK_RATIO,
                 error_feedback: bool = True) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigurationError(
                f"topk codec ratio must be in (0, 1], got {ratio}"
            )
        self.ratio = float(ratio)
        self.error_feedback = bool(error_feedback)
        self._residuals: dict[tuple, np.ndarray] = {}

    def params(self) -> dict:
        return {"ratio": self.ratio, "error_feedback": self.error_feedback}

    def encode(self, array, key=None):
        flat = np.ascontiguousarray(array, dtype=np.float64).reshape(-1)
        if self.error_feedback and key is not None:
            residual = self._residuals.get(key)
            if residual is not None and residual.shape == flat.shape:
                flat = flat + residual
        k = max(1, int(np.ceil(self.ratio * flat.size)))
        if k >= flat.size:
            top = np.arange(flat.size, dtype=np.int32)
        else:
            top = np.argpartition(np.abs(flat), flat.size - k)[flat.size - k:]
            top = np.sort(top).astype(np.int32)
        values = flat[top]
        if self.error_feedback and key is not None:
            residual = flat.copy()
            residual[top] = 0.0
            self._residuals[key] = residual
        payload = np.frombuffer(
            top.astype("<i4").tobytes() + values.astype("<f8").tobytes(),
            dtype=np.uint8,
        )
        return payload, (int(k),)

    @staticmethod
    def decode(payload, shape, dtype, meta):
        (k,) = meta
        raw = payload.tobytes()
        top = np.frombuffer(raw, dtype="<i4", count=k)
        values = np.frombuffer(raw, dtype="<f8", count=k, offset=4 * k)
        dense = np.zeros(int(np.prod(shape, dtype=np.int64)), dtype=np.float64)
        dense[top] = values
        return dense.reshape(shape).astype(np.dtype(dtype))

    def state_dict(self) -> dict:
        return {key: value.copy() for key, value in self._residuals.items()}

    def load_state_dict(self, state: dict, merge: bool = False) -> None:
        if not merge:
            self._residuals.clear()
        for key, value in state.items():
            self._residuals[tuple(key)] = np.asarray(value, dtype=np.float64)


def decode_array(name: str, payload: np.ndarray, shape: tuple, dtype: str,
                 meta) -> np.ndarray:
    """Decode one self-describing frame via the codec registry."""
    return CODECS.get(name).decode(payload, shape, dtype, meta)


class CodecPolicy:
    """Which codec (if any) encodes each payload class of one transport.

    One policy instance is shared by every parent-side endpoint of an
    executor (so a stateful codec keys residuals across all children) and
    one fresh instance is rebuilt from :meth:`spec` inside each child.
    Classes without an entry pass through raw.
    """

    def __init__(self, codecs: dict[str, Codec]) -> None:
        for klass in codecs:
            if klass not in PAYLOAD_CLASSES:
                raise ConfigurationError(
                    f"unknown payload class {klass!r} "
                    f"(known: {', '.join(PAYLOAD_CLASSES)})"
                )
        self._codecs = dict(codecs)

    def codec_for(self, klass: str | None) -> Codec | None:
        """The codec encoding one payload class (``None`` = raw)."""
        if klass is None:
            return None
        return self._codecs.get(klass)

    @property
    def stateful(self) -> bool:
        """Whether any class's codec carries checkpointable state."""
        return any(codec.stateful for codec in self._codecs.values())

    def spec(self) -> dict:
        """Picklable recipe a child process rebuilds the policy from."""
        return {
            klass: (codec.name, codec.params())
            for klass, codec in self._codecs.items()
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "CodecPolicy":
        """Inverse of :meth:`spec` (fresh codec instances, empty state)."""
        return cls({
            klass: CODECS.get(name)(**params)
            for klass, (name, params) in spec.items()
        })

    def describe(self) -> dict[str, str]:
        """Class -> codec-name mapping, for logs and round metadata."""
        return {klass: codec.name for klass, codec in self._codecs.items()}

    # -- error-feedback state --------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat ``{serialized key: residual}`` over every stateful codec.

        Keys start with the payload class (see :func:`encode_key`), so the
        merged dict is collision-free and JSON-checkpoint friendly.
        """
        state: dict[str, np.ndarray] = {}
        for codec in self._codecs.values():
            for key, value in codec.state_dict().items():
                state[encode_key(key)] = value
        return state

    def load_state_dict(self, state: dict, merge: bool = False) -> None:
        """Route serialized residuals back to each class's codec.

        Keys whose class has no stateful codec here (the policy changed
        between checkpoint and resume) are dropped silently -- a different
        codec has no use for another codec's residuals.
        """
        grouped: dict[str, dict[tuple, np.ndarray]] = {}
        for text, value in state.items():
            key = decode_key(text)
            grouped.setdefault(str(key[0]), {})[key] = value
        for klass, codec in self._codecs.items():
            if codec.stateful:
                codec.load_state_dict(grouped.get(klass, {}), merge=merge)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={c.name}" for k, c in self._codecs.items())
        return f"CodecPolicy({inner})"


def build_codec_policy(config) -> CodecPolicy | None:
    """Build the transport codec policy an ``ExperimentConfig`` describes.

    ``config.codec`` applies to features and gradients; weight state dicts
    default to ``none``.  ``extras["codec_policy"]`` overrides individual
    classes and ``extras["codec_topk_ratio"]`` tunes the ``topk`` codec.
    Returns ``None`` when every class resolves to ``"none"``, so the
    default configuration constructs no codec machinery at all.
    """
    extras = getattr(config, "extras", None) or {}
    default = getattr(config, "codec", "none") or "none"
    names = {klass: "none" for klass in PAYLOAD_CLASSES}
    for klass in DEFAULT_CODEC_CLASSES:
        names[klass] = default
    overrides = extras.get("codec_policy") or {}
    if not isinstance(overrides, dict):
        raise ConfigurationError(
            f"extras['codec_policy'] must be a dict of payload class -> "
            f"codec name, got {overrides!r}"
        )
    names.update(overrides)
    codecs: dict[str, Codec] = {}
    for klass, name in names.items():
        if name == "none":
            continue
        cls = CODECS.get(name)
        params = {}
        if name == "topk":
            ratio = extras.get("codec_topk_ratio")
            if ratio is not None:
                params["ratio"] = float(ratio)
        codecs[klass] = cls(**params)
    if not codecs:
        return None
    return CodecPolicy(codecs)
