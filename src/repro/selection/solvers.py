"""Pluggable worker-selection solvers (the Eq. 10-13 combinatorial step).

Every solver sees the same :class:`SelectionProblem` -- the dense per-worker
metadata arrays the control module plans over -- and returns a
:class:`~repro.core.selection.SelectionResult`.  Solvers are registered in
:data:`repro.api.registry.SELECTION_SOLVERS` and picked by
``config.selector``:

* ``ga`` -- the paper's genetic algorithm (Alg. 1 line 5), the default.  It
  delegates to :func:`~repro.core.selection.genetic_select` verbatim, so the
  default path is bit-exact with the pre-registry code by construction.
* ``ga-warm`` -- the GA warm-started from the previous round's winning
  worker set (translated through the candidate pool via global worker ids),
  with elite-consensus variable fixing and symmetry breaking across
  interchangeable workers; runs a fraction of the cold generation budget.
* ``greedy`` -- the priority-ordered greedy constructor (the ablation
  baseline).
* ``local-search`` -- deterministic greedy construction followed by
  first-improvement 1-flip / 1-swap hill climbing on the incremental
  fitness (O(classes) per candidate move).
* ``exact`` -- brute-force enumeration of every non-empty mask, feasible
  only for N <= :attr:`ExactSolver.max_workers`; a test oracle, not a
  production solver.

The warm-start tricks mirror what the districting literature applies to
graph-partition search (see ROADMAP): a previous solution seeds the
population, bits unanimous across the elite set are frozen in offspring,
and workers with identical ``(batch_size, label_row, bandwidth_cost)``
signatures -- interchangeable w.r.t. the fitness, e.g. same-class devices
holding same-distribution shards -- are canonicalised so the search never
distinguishes permutations of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.api.registry import SELECTION_SOLVERS, register_selection_solver
from repro.core.batching import occupied_bandwidth
from repro.core.divergence import kl_divergence, mixed_label_distribution
from repro.core.selection import (
    PopulationFitness,
    SelectionResult,
    genetic_select,
    greedy_select,
)
from repro.exceptions import SelectionError
from repro.utils.rng import new_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ExperimentConfig


@dataclass
class SelectionProblem:
    """One round's selection instance, on dense candidate-local arrays.

    Attributes:
        batch_sizes: Regulated per-worker batch sizes ``d_i``.
        label_distributions: ``(num_workers, num_classes)`` matrix of V_i.
        target_distribution: The reference IID distribution ``Phi_0``.
        bandwidth_per_sample: ``c`` -- scalar, or a per-worker vector when
            split depths give workers different exchange sizes.
        bandwidth_budget: ``B^h``.
        priorities: Eq. 13 priorities (``None`` means uniform).
        rng: Round-specific generator for stochastic solvers.
        worker_ids: Global worker id of every candidate row, ascending
            (``None`` when candidate-local indices *are* the global ids).
            Stateful solvers key their cross-round state on these so lazy
            candidate pools remap correctly between rounds.
    """

    batch_sizes: np.ndarray
    label_distributions: np.ndarray
    target_distribution: np.ndarray
    bandwidth_per_sample: "float | np.ndarray"
    bandwidth_budget: float
    priorities: np.ndarray | None = None
    rng: np.random.Generator | None = None
    worker_ids: np.ndarray | None = None

    @property
    def num_workers(self) -> int:
        return int(np.asarray(self.batch_sizes).shape[0])

    def global_ids(self) -> np.ndarray:
        """Global worker id per candidate row (identity when unset)."""
        if self.worker_ids is None:
            return np.arange(self.num_workers, dtype=np.int64)
        return np.asarray(self.worker_ids, dtype=np.int64)

    def resolved_priorities(self) -> np.ndarray:
        if self.priorities is None:
            return np.ones(self.num_workers)
        return np.asarray(self.priorities, dtype=np.float64)

    def fitness(self) -> PopulationFitness:
        """A fresh vectorized fitness for this instance."""
        return PopulationFitness(
            self.batch_sizes,
            self.label_distributions,
            self.target_distribution,
            self.bandwidth_per_sample,
            self.bandwidth_budget,
        )

    def decode(self, selected: np.ndarray) -> SelectionResult:
        """Turn candidate-local indices into a :class:`SelectionResult`."""
        phi = mixed_label_distribution(
            self.label_distributions, self.batch_sizes, selected
        )
        used = occupied_bandwidth(
            self.batch_sizes, selected, self.bandwidth_per_sample
        )
        return SelectionResult(
            selected=np.sort(np.asarray(selected)),
            kl=kl_divergence(phi, self.target_distribution),
            feasible=used <= self.bandwidth_budget * (1.0 + 1e-9),
        )


class SelectionSolver:
    """Interface for worker-selection solvers."""

    #: Registry name (also used in logs and checkpoints).
    name: str = "abstract"

    #: Stateful solvers carry cross-round state (e.g. the previous winning
    #: mask) that the engines serialise through ``state_dict`` so
    #: checkpoint/resume stays bit-exact.  Stateless solvers keep the
    #: historical checkpoint format untouched.
    stateful: bool = False

    def __init__(self, config: "ExperimentConfig | None" = None) -> None:
        self.config = config

    def solve(self, problem: SelectionProblem) -> SelectionResult:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """JSON-serialisable solver state; ``{}`` for stateless solvers."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _knob(value, config, attr, default):
    """Explicit knob > config field > module default."""
    if value is not None:
        return value
    if config is not None:
        return getattr(config, attr, default)
    return default


@register_selection_solver(
    "ga", description="the paper's genetic algorithm (default, bit-exact)"
)
class GASolver(SelectionSolver):
    """Alg. 1 line 5 verbatim: delegates to :func:`genetic_select`."""

    name = "ga"

    def __init__(
        self,
        config: "ExperimentConfig | None" = None,
        *,
        population_size: int | None = None,
        generations: int | None = None,
        seed_fraction: float | None = None,
        mutation_rate: float = 0.05,
    ) -> None:
        super().__init__(config)
        self.population_size = int(_knob(population_size, config, "ga_population", 20))
        self.generations = int(_knob(generations, config, "ga_generations", 15))
        self.seed_fraction = float(
            _knob(seed_fraction, config, "selection_fraction", 0.5)
        )
        self.mutation_rate = float(mutation_rate)

    def solve(self, problem: SelectionProblem) -> SelectionResult:
        return genetic_select(
            problem.batch_sizes,
            problem.label_distributions,
            problem.target_distribution,
            problem.bandwidth_per_sample,
            problem.bandwidth_budget,
            priorities=problem.priorities,
            population_size=self.population_size,
            generations=self.generations,
            mutation_rate=self.mutation_rate,
            seed_fraction=self.seed_fraction,
            rng=problem.rng,
        )


@register_selection_solver(
    "greedy", description="priority-ordered greedy construction (ablation baseline)"
)
class GreedySolver(SelectionSolver):
    """The vectorized greedy constructor, as a registry entry."""

    name = "greedy"

    def solve(self, problem: SelectionProblem) -> SelectionResult:
        return greedy_select(
            problem.batch_sizes,
            problem.label_distributions,
            problem.target_distribution,
            problem.bandwidth_per_sample,
            problem.bandwidth_budget,
            priorities=problem.priorities,
        )


def _signature_groups(
    batch_sizes: np.ndarray,
    label_distributions: np.ndarray,
    bandwidth_per_sample: "float | np.ndarray",
    priorities: np.ndarray,
) -> list[np.ndarray]:
    """Groups of >= 2 workers interchangeable w.r.t. the fitness.

    Two workers with identical ``(d_i, V_i, c_i)`` contribute identically to
    the merged mixture and the bandwidth constraint (the device class enters
    through the regulated batch size), so any individual selecting one of
    them has a fitness-equal twin selecting the other.  Members are ordered
    by descending priority (ties by index) -- the canonical representative
    order.
    """
    batch_sizes = np.asarray(batch_sizes, dtype=np.int64)
    matrix = np.atleast_2d(np.asarray(label_distributions, dtype=np.float64))
    num_workers = batch_sizes.shape[0]
    if np.ndim(bandwidth_per_sample) > 0:
        costs = np.asarray(bandwidth_per_sample, dtype=np.float64)
    else:
        costs = np.zeros(num_workers)
    buckets: dict[tuple, list[int]] = {}
    for worker in range(num_workers):
        key = (int(batch_sizes[worker]), float(costs[worker]),
               matrix[worker].tobytes())
        buckets.setdefault(key, []).append(worker)
    groups = []
    for members in buckets.values():
        if len(members) >= 2:
            members.sort(key=lambda w: (-float(priorities[w]), w))
            groups.append(np.asarray(members, dtype=np.int64))
    return groups


def _canonicalize(mask: np.ndarray, groups: list[np.ndarray]) -> np.ndarray:
    """Break symmetry: within each group keep the k canonical members.

    Fitness-preserving by construction (group members are interchangeable),
    so distinct individuals that are permutations of each other collapse to
    one representative and the population's diversity budget is spent on
    genuinely different worker sets.
    """
    for members in groups:
        count = int(mask[members].sum())
        if 0 < count < members.shape[0]:
            mask[members] = False
            mask[members[:count]] = True
    return mask


def _polish(
    fitness: PopulationFitness,
    mask: np.ndarray,
    score: float,
    max_passes: int = 2,
) -> tuple[np.ndarray, float]:
    """First-improvement 1-flip hill climbing via the incremental fitness."""
    inc = fitness.incremental(mask)
    current = float(score)
    for _ in range(max_passes):
        current, improved = _flip_sweep(inc, current)
        if not improved:
            break
    return inc.mask, current


def _flip_sweep(inc, current: float) -> tuple[float, bool]:
    """One first-improvement 1-flip pass, batched.

    Semantically identical to scanning ``flip_score(0..N-1)`` in order and
    committing every strict improvement as it is found: each committed flip
    re-anchors the incremental terms, so the batch of neighbour scores is
    recomputed and the scan resumes at the next index.  The number of
    vectorized evaluations is ``1 + commits`` instead of N scalar ones.
    """
    improved = False
    index = 0
    num_workers = inc.mask.shape[0]
    while index < num_workers:
        trials = inc.flip_scores()
        better = np.flatnonzero(trials[index:] < current)
        if better.size == 0:
            break
        chosen = index + int(better[0])
        inc.flip(chosen)
        current = float(trials[chosen])
        improved = True
        index = chosen + 1
    return current, improved


@register_selection_solver(
    "ga-warm",
    description="GA warm-started from the previous round's winning set",
)
class WarmGASolver(GASolver):
    """GA seeded from the previous round's winner, at a reduced budget.

    Cold rounds (no usable previous winner -- the first round, or none of
    the previous winners are in this round's candidate pool) fall back to
    the full cold GA.  Warm rounds seed the population with the translated
    previous mask plus light perturbations of it, run
    ``max(2, generations // 3)`` generations with elite-consensus variable
    fixing and symmetry canonicalisation, and finish with a 1-flip polish
    of the winner on the incremental fitness.

    State is the previous winning *global* worker ids, so a lazy
    population's per-round candidate pools remap correctly:
    ``np.isin(candidate_ids, previous)`` rebuilds the candidate-local mask
    whatever subset of the fleet is in this round's pool.
    """

    name = "ga-warm"
    stateful = True

    #: Probability that a warm seed perturbation flips a bit (the cold
    #: seed uses 0.25; warm perturbations stay closer to the incumbent).
    warm_flip_rate: float = 0.1

    def __init__(self, config=None, **knobs) -> None:
        super().__init__(config, **knobs)
        self._previous: list[int] | None = None

    def state_dict(self) -> dict:
        return {
            "previous": None if self._previous is None
            else [int(worker) for worker in self._previous],
        }

    def load_state_dict(self, state: dict) -> None:
        previous = state.get("previous")
        self._previous = (
            None if previous is None else [int(worker) for worker in previous]
        )

    def solve(self, problem: SelectionProblem) -> SelectionResult:
        ids = problem.global_ids()
        warm_mask = None
        if self._previous:
            warm_mask = np.isin(ids, np.asarray(self._previous, dtype=np.int64))
            if not warm_mask.any():
                warm_mask = None
        if warm_mask is None:
            result = super().solve(problem)
        else:
            result = self._warm_solve(problem, warm_mask)
        self._previous = [int(ids[local]) for local in result.selected]
        return result

    def _warm_solve(
        self, problem: SelectionProblem, warm_mask: np.ndarray
    ) -> SelectionResult:
        rng = problem.rng if problem.rng is not None else new_rng()
        batch_sizes = np.asarray(problem.batch_sizes, dtype=np.int64)
        num_workers = batch_sizes.shape[0]
        if num_workers == 0:
            raise SelectionError("cannot select from zero workers")
        priorities = problem.resolved_priorities()
        fitness = problem.fitness()
        groups = _signature_groups(
            batch_sizes, problem.label_distributions,
            problem.bandwidth_per_sample, priorities,
        )

        seed_count = max(1, int(round(self.seed_fraction * num_workers)))
        priority_order = np.argsort(-priorities)
        seed_mask = np.zeros(num_workers, dtype=bool)
        seed_mask[priority_order[:seed_count]] = True

        population = [
            _canonicalize(warm_mask.copy(), groups),
            _canonicalize(seed_mask, groups),
        ][: self.population_size]
        while len(population) < self.population_size:
            individual = warm_mask.copy()
            flips = rng.random(num_workers) < self.warm_flip_rate
            individual[flips] = ~individual[flips]
            if not individual.any():
                individual[int(rng.integers(num_workers))] = True
            population.append(_canonicalize(individual, groups))
        scores = fitness.evaluate(np.stack(population))

        population_size = len(population)
        for __ in range(max(2, self.generations // 3)):
            # Safe variable fixing: bits unanimous across the elite quartile
            # are frozen in this generation's offspring (the elite itself is
            # carried over unmodified, so the freeze can always be undone by
            # a later generation's different elite set).
            elite_count = max(2, population_size // 4)
            if elite_count <= population_size:
                elite_rows = np.argsort(scores, kind="stable")[:elite_count]
                elites = np.stack([population[int(row)] for row in elite_rows])
                fixed_on = elites.all(axis=0)
                fixed_off = ~elites.any(axis=0)
            else:
                fixed_on = np.zeros(num_workers, dtype=bool)
                fixed_off = np.zeros(num_workers, dtype=bool)
            new_population = [population[int(np.argmin(scores))].copy()]
            while len(new_population) < population_size:
                contenders = rng.integers(0, population_size, size=4)
                head, tail = contenders[:2], contenders[2:]
                parent_a = population[int(head[np.argmin(scores[head])])]
                parent_b = population[int(tail[np.argmin(scores[tail])])]
                crossover = rng.random(num_workers) < 0.5
                child = np.where(crossover, parent_a, parent_b)
                flips = rng.random(num_workers) < self.mutation_rate
                child = np.where(flips, ~child, child)
                child[fixed_on] = True
                child[fixed_off] = False
                if not child.any():
                    child[int(rng.integers(num_workers))] = True
                new_population.append(_canonicalize(child, groups))
            population = new_population
            scores = fitness.evaluate(np.stack(population))

        best_row = int(np.argmin(scores))
        best, __ = _polish(fitness, population[best_row], float(scores[best_row]))
        return problem.decode(np.flatnonzero(best))


@register_selection_solver(
    "local-search",
    description="greedy construction + 1-flip/1-swap hill climbing",
)
class LocalSearchSolver(SelectionSolver):
    """Deterministic greedy construction plus first-improvement refinement.

    The refinement alternates a 1-flip sweep (every worker toggled) and a
    1-swap sweep (selected worker exchanged for an unselected one) on the
    :class:`~repro.core.selection.IncrementalFitness`, committing the first
    strict improvement found, until a full pass yields none (or the pass
    budget runs out).  No RNG anywhere: rerunning on the same problem gives
    the same answer.
    """

    name = "local-search"

    def __init__(
        self,
        config: "ExperimentConfig | None" = None,
        *,
        max_passes: int | None = None,
    ) -> None:
        super().__init__(config)
        self.max_passes = int(max_passes if max_passes is not None else 10)

    def solve(self, problem: SelectionProblem) -> SelectionResult:
        start = greedy_select(
            problem.batch_sizes,
            problem.label_distributions,
            problem.target_distribution,
            problem.bandwidth_per_sample,
            problem.bandwidth_budget,
            priorities=problem.priorities,
        )
        num_workers = problem.num_workers
        mask = np.zeros(num_workers, dtype=bool)
        mask[np.asarray(start.selected, dtype=np.int64)] = True
        inc = problem.fitness().incremental(mask)
        current = inc.score()
        for __ in range(self.max_passes):
            current, improved = _flip_sweep(inc, current)
            # Swap sweep: for each selected worker, the first unselected
            # replacement (ascending index) that strictly improves -- all
            # candidate replacements scored in one vectorized call.
            state = inc.mask
            for remove in np.flatnonzero(state):
                if not state[remove]:
                    continue
                candidates = np.flatnonzero(~state)
                if candidates.size == 0:
                    continue
                trials = inc.swap_scores(candidates, int(remove))
                better = np.flatnonzero(trials < current)
                if better.size == 0:
                    continue
                add = int(candidates[int(better[0])])
                inc.swap(add, int(remove))
                current = float(trials[int(better[0])])
                state[add] = True
                state[remove] = False
                improved = True
            if not improved:
                break
        return problem.decode(np.flatnonzero(inc.mask))


@register_selection_solver(
    "exact", description="brute-force oracle for tiny instances (tests only)"
)
class ExactSolver(SelectionSolver):
    """Enumerates every non-empty mask; the global fitness optimum.

    Cost is ``2^N`` fitness rows, so instances are capped at
    :attr:`max_workers` workers.  Used as the agreement oracle for the
    other solvers in tests and ``bench_selection.py``; never wire it into a
    production config.
    """

    name = "exact"

    #: Enumerating beyond this many workers is refused outright.
    max_workers: int = 12

    def solve(self, problem: SelectionProblem) -> SelectionResult:
        num_workers = problem.num_workers
        if num_workers == 0:
            raise SelectionError("cannot select from zero workers")
        if num_workers > self.max_workers:
            raise SelectionError(
                f"exact solver enumerates 2^N masks and is capped at "
                f"N <= {self.max_workers}, got N = {num_workers}"
            )
        codes = np.arange(1, 2 ** num_workers, dtype=np.int64)
        masks = ((codes[:, None] >> np.arange(num_workers)) & 1).astype(bool)
        scores = problem.fitness().evaluate(masks)
        best = masks[int(np.argmin(scores))]
        return problem.decode(np.flatnonzero(best))


def build_selection_solver(
    config: "ExperimentConfig",
    name: str | None = None,
    **overrides,
) -> SelectionSolver:
    """Resolve ``config.selector`` (or ``name``) from the registry."""
    solver_name = name if name is not None else getattr(config, "selector", "ga")
    return SELECTION_SOLVERS.get(solver_name)(config, **overrides)
