"""Pluggable worker-selection solvers.

MergeSFL's per-round worker selection (Eq. 10-13 + Alg. 1 line 5) is a
combinatorial optimisation; this package makes the solver a pluggable
component behind :data:`repro.api.registry.SELECTION_SOLVERS`, picked by
``config.selector``.  The default ``ga`` delegates to the paper's genetic
algorithm verbatim and is bit-exact by construction; ``ga-warm`` and
``local-search`` trade search budget for warm starts and incremental
refinement; ``exact`` is a tiny-instance brute-force oracle for tests.
"""

from repro.selection.solvers import (
    ExactSolver,
    GASolver,
    GreedySolver,
    LocalSearchSolver,
    SelectionProblem,
    SelectionSolver,
    WarmGASolver,
    build_selection_solver,
)

__all__ = [
    "ExactSolver",
    "GASolver",
    "GreedySolver",
    "LocalSearchSolver",
    "SelectionProblem",
    "SelectionSolver",
    "WarmGASolver",
    "build_selection_solver",
]
