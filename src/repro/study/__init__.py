"""Declarative experiment sweeps: Study, StudyRunner, StudyStore.

The paper's evaluation is a collection of sweeps (algorithms x datasets x
non-IID levels x scales).  This package turns such sweeps into first-class
objects::

    from repro.study import Study, StudyRunner, StudyStore

    study = Study.grid("fig10", base_config, axes={
        "non_iid_level": (0.0, 2.0, 10.0),
        "algorithm": ("mergesfl", "fedavg"),
    })
    runner = StudyRunner(study, store=StudyStore("results"),
                         n_jobs=4, checkpoint_every=1)
    results = runner.run()        # or runner.resume() after an interruption
    results["non_iid_level=10,algorithm=mergesfl"].history.accuracies

* :mod:`repro.study.study` -- :class:`Study`/:class:`Trial`, the
  declarative sweep descriptions (explicit lists, grid products,
  ``config.replace``-style variations, seed replication).
* :mod:`repro.study.runner` -- :class:`StudyRunner`, parallel (``n_jobs``)
  and resumable execution; every trial is bit-identical to
  ``run_experiment`` on its config.
* :mod:`repro.study.store` -- :class:`StudyStore`/:class:`TrialResult`,
  JSONL persistence of completed trials plus per-trial session
  checkpoints.
* :mod:`repro.study.callbacks` -- shipped callbacks (:class:`EarlyStopping`,
  :class:`PeriodicCheckpoint`, :class:`JSONLLogger`, :class:`Timing`).
* :mod:`repro.study.presets` -- ready-made paper-scale sweeps (the
  100/200/400-worker scalability grids of Fig. 12).

``StudyRunner(max_processes=...)`` caps the *product* of trial-level
parallelism and each trial's intra-round executor pool, so nested pools
never oversubscribe the host.
"""

from repro.study.callbacks import EarlyStopping, JSONLLogger, PeriodicCheckpoint, Timing
from repro.study.presets import (
    PRESETS,
    codec_study,
    get_preset,
    preset_scales,
    scalability_study,
)
from repro.study.runner import StudyRunner, trial_process_footprint
from repro.study.store import StudyStore, TrialResult
from repro.study.study import Study, Trial

__all__ = [
    "Study",
    "Trial",
    "StudyRunner",
    "StudyStore",
    "TrialResult",
    "EarlyStopping",
    "PeriodicCheckpoint",
    "JSONLLogger",
    "Timing",
    "PRESETS",
    "get_preset",
    "preset_scales",
    "scalability_study",
    "codec_study",
    "trial_process_footprint",
    "run_study",
]


def run_study(study: Study, **runner_kwargs) -> dict[str, TrialResult]:
    """One-call convenience: ``StudyRunner(study, **kwargs).run()``."""
    return StudyRunner(study, **runner_kwargs).run()
