"""Parallel, resumable execution of studies.

A :class:`StudyRunner` executes every trial of a
:class:`~repro.study.study.Study`, either in-process (``n_jobs=1``) or
across worker processes (``n_jobs>1``).  Trial-level parallelism is
embarrassingly parallel and complements the intra-round executors of
:mod:`repro.parallel`: each trial is an ordinary
:class:`~repro.api.session.Session` run, so every backend/transport/
pipeline combination works unchanged inside a trial worker process.

With a :class:`~repro.study.store.StudyStore` attached, each completed
trial is persisted the moment it finishes and :meth:`StudyRunner.resume`
(or simply calling :meth:`StudyRunner.run` again) skips recorded trials.
With ``checkpoint_every`` set, in-flight trials additionally checkpoint
every N rounds, so a killed sweep continues interrupted trials bit-exactly
from their last checkpoint instead of restarting them::

    store = StudyStore("results")
    runner = StudyRunner(study, store=store, n_jobs=4, checkpoint_every=1)
    try:
        results = runner.run()
    except KeyboardInterrupt:
        ...                      # later, possibly in a fresh process:
    results = runner.resume()    # finishes only what is missing

All executed trials are bit-identical to ``run_experiment(trial.config)``:
the runner adds no hidden config mutation, and per-trial RNG streams are
fully determined by each trial's config.
"""

from __future__ import annotations

import copy
import os
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from repro.api.checkpoint import encode_state, load_checkpoint_payload
from repro.api.events import Callback
from repro.api.session import Session
from repro.config import ExperimentConfig
from repro.exceptions import StudyError
from repro.metrics.history import History
from repro.parallel.process import DEFAULT_MAX_PROCESSES
from repro.study.callbacks import PeriodicCheckpoint
from repro.study.store import StudyStore, TrialResult
from repro.study.study import Study, Trial
from repro.utils.logging import get_logger
from repro.utils.mp import get_mp_context

logger = get_logger("study.runner")


def trial_process_footprint(config: ExperimentConfig) -> int:
    """Worker processes one trial of ``config`` occupies.

    Trials on in-process executors cost one process (the trial worker
    itself); trials on the ``process`` executor additionally fan out to the
    executor's pool, sized by ``extras["executor_processes"]`` or its
    host-dependent default -- so their footprint is ``1 + pool size``.
    """
    if config.executor != "process":
        return 1
    requested = config.extras.get("executor_processes")
    if requested is not None:
        return 1 + max(1, int(requested))
    return 1 + max(1, min(os.cpu_count() or 1, DEFAULT_MAX_PROCESSES))

#: Either a list of callbacks cloned into every trial, or a factory
#: ``(trial) -> sequence of callbacks`` for per-trial wiring (e.g. per-trial
#: log paths).  The factory runs in the parent process; only the returned
#: callbacks cross the process boundary.
TrialCallbacks = Sequence[Callback] | Callable[[Trial], Sequence[Callback]]


def _execute_trial(payload: dict) -> dict:
    """Run one trial to completion; the unit shipped to worker processes.

    Resumes from the trial's session checkpoint when one exists (a sweep
    interrupted mid-trial), otherwise starts fresh.  Returns the history as
    a plain dict so the result pickles compactly.
    """
    config = ExperimentConfig.from_dict(payload["config"])
    session = Session.from_config(config)
    checkpoint_path = payload.get("checkpoint_path")
    # Callbacks attach before any restore so the checkpoint's callback
    # state (early-stopping bests, log line counts) lands back in them;
    # the periodic checkpointer goes last so its saves capture the other
    # callbacks' post-round updates.
    for callback in payload.get("callbacks", ()):
        session.add_callback(callback)
    if checkpoint_path is not None:
        if payload.get("checkpoint_every"):
            session.add_callback(
                PeriodicCheckpoint(checkpoint_path, every=payload["checkpoint_every"])
            )
        if os.path.exists(checkpoint_path):
            # load_state_dict cross-checks the saved config, so a stale
            # checkpoint from an edited study fails loudly instead of
            # silently resuming the wrong run.
            session.load_state_dict(load_checkpoint_payload(checkpoint_path))
    with session:
        history = session.run()
    return history.to_dict()


class StudyRunner:
    """Executes a study's trials, optionally in parallel and resumably.

    Args:
        study: The study to execute.
        store: Persists completed trials and in-flight checkpoints; without
            it every :meth:`run` starts from scratch and :meth:`resume` is
            unavailable.
        n_jobs: Number of concurrent trial worker processes; ``1`` runs
            in-process (no multiprocessing involved at the trial level).
        callbacks: Callbacks wired into every trial -- a sequence (cloned
            per trial so state never leaks across trials) or a per-trial
            factory.  With ``n_jobs > 1`` the callbacks must pickle.
        checkpoint_every: When set (requires ``store``), every trial saves
            a session checkpoint each N rounds, making in-flight trials
            resumable mid-run.
        start_method: Multiprocessing start method for ``n_jobs > 1``;
            defaults to ``fork`` where available (cheap on Linux), matching
            :class:`repro.parallel.process.ProcessExecutor`.
        max_processes: Study-level worker budget.  Trial-level parallelism
            multiplies with each trial's intra-round executor pool: a
            process-executor trial occupies its trial worker *plus* its
            executor children (``1 + executor_processes``).  When
            ``n_jobs`` times that footprint would exceed this budget the
            runner clamps ``n_jobs`` (with a warning) so the two pool
            layers never oversubscribe the host.  ``None`` leaves
            ``n_jobs`` untouched.
    """

    def __init__(
        self,
        study: Study,
        store: StudyStore | None = None,
        n_jobs: int = 1,
        callbacks: TrialCallbacks = (),
        checkpoint_every: int | None = None,
        start_method: str | None = None,
        max_processes: int | None = None,
    ) -> None:
        if n_jobs < 1:
            raise StudyError(f"n_jobs must be >= 1, got {n_jobs}")
        if max_processes is not None and max_processes < 1:
            raise StudyError(f"max_processes must be >= 1, got {max_processes}")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise StudyError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if store is None:
                raise StudyError("checkpoint_every requires a store")
        self.study = study
        self.store = store
        self.n_jobs = n_jobs
        self.callbacks = callbacks
        self.checkpoint_every = checkpoint_every
        self.start_method = start_method
        self.max_processes = max_processes

    def effective_n_jobs(self) -> int:
        """``n_jobs`` after applying the study-level worker budget.

        The budget divides by the *largest* trial footprint in the study:
        trials run in arbitrary interleavings, so any concurrent pair must
        fit, and sizing for the worst keeps the bound sound.
        """
        if self.max_processes is None or self.n_jobs == 1:
            return self.n_jobs
        footprint = max(
            trial_process_footprint(trial.config) for trial in self.study
        )
        allowed = max(1, self.max_processes // footprint)
        if allowed < self.n_jobs:
            logger.warning(
                "study %r: clamping n_jobs %d -> %d (largest trial occupies "
                "%d process(es) incl. its executor pool; budget "
                "max_processes=%d)",
                self.study.name, self.n_jobs, allowed, footprint,
                self.max_processes,
            )
        return min(self.n_jobs, allowed)

    # -- public API ----------------------------------------------------------
    def run(self, max_trials: int | None = None) -> dict[str, TrialResult]:
        """Execute the study and return ``{trial name: TrialResult}``.

        Trials already recorded in the store are returned without
        re-running (their stored config must still match the study's --
        a stale store fails loudly).  ``max_trials`` bounds how many *new*
        trials execute before returning, leaving the rest for a later
        :meth:`resume`; the returned mapping is then partial.
        """
        results = self._completed_results()
        pending = [t for t in self.study if t.name not in results]
        if max_trials is not None:
            if max_trials < 0:
                raise StudyError(f"max_trials must be >= 0, got {max_trials}")
            pending = pending[:max_trials]
        n_jobs = self.effective_n_jobs()
        if pending:
            logger.info(
                "study %r: running %d trial(s) (%d already recorded, n_jobs=%d)",
                self.study.name, len(pending),
                len(results), n_jobs,
            )
        if n_jobs == 1 or len(pending) <= 1:
            for trial in pending:
                history = _execute_trial(self._payload(trial))
                results[trial.name] = self._record(trial, history)
        else:
            self._run_parallel(pending, results, n_jobs)
        # Definition order, independent of completion order.
        return {
            trial.name: results[trial.name]
            for trial in self.study
            if trial.name in results
        }

    def resume(self) -> dict[str, TrialResult]:
        """Finish an interrupted sweep: run only what the store is missing.

        Completed trials are skipped; a trial interrupted mid-run (one
        with a checkpoint but no record) continues bit-exactly from its
        last checkpoint.  Requires a store.
        """
        if self.store is None:
            raise StudyError("resume() requires a StudyRunner with a store")
        return self.run()

    def histories(self, results: dict[str, TrialResult] | None = None) -> dict[str, History]:
        """Convenience view of :meth:`run` output as ``{name: History}``."""
        if results is None:
            results = self.run()
        return {name: result.history for name, result in results.items()}

    # -- internals -----------------------------------------------------------
    def _completed_results(self) -> dict[str, TrialResult]:
        """Stored results for this study's trials, config-checked."""
        if self.store is None:
            return {}
        recorded = self.store.completed(self.study.name)
        results: dict[str, TrialResult] = {}
        for trial in self.study:
            result = recorded.get(trial.name)
            if result is None:
                continue
            if encode_state(result.config) != encode_state(trial.config.to_dict()):
                raise StudyError(
                    f"store records trial {trial.name!r} of study "
                    f"{self.study.name!r} with a different configuration; "
                    f"point the runner at a fresh store or rename the study"
                )
            results[trial.name] = result
        return results

    def _payload(self, trial: Trial) -> dict:
        """Self-contained work order for one trial (picklable)."""
        factory = self.callbacks
        resolved = factory(trial) if callable(factory) else factory
        payload = {
            "trial_name": trial.name,
            "config": trial.config.to_dict(),
            # Cloned so per-trial callback state (best metric, save
            # counters) never leaks between trials of a serial run.
            "callbacks": [copy.deepcopy(cb) for cb in resolved],
        }
        if self.store is not None:
            path = self.store.checkpoint_path(self.study.name, trial.name)
            payload["checkpoint_path"] = str(path)
            payload["checkpoint_every"] = self.checkpoint_every
        return payload

    def _record(self, trial: Trial, history_dict: dict) -> TrialResult:
        """Persist one finished trial and drop its in-flight checkpoint."""
        result = TrialResult(
            name=trial.name,
            tags=dict(trial.tags),
            config=trial.config.to_dict(),
            history=History.from_dict(history_dict),
        )
        if self.store is not None:
            self.store.record(self.study.name, result)
            self.store.clear_checkpoint(self.study.name, trial.name)
        return result

    def _run_parallel(
        self,
        pending: list[Trial],
        results: dict[str, TrialResult],
        n_jobs: int,
    ) -> None:
        """Fan pending trials out over a process pool, recording as they land."""
        workers = min(n_jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=get_mp_context(self.start_method)
        ) as pool:
            futures = {
                pool.submit(_execute_trial, self._payload(trial)): trial
                for trial in pending
            }
            outstanding = set(futures)
            try:
                while outstanding:
                    done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    done = list(done)
                    for index, future in enumerate(done):
                        trial = futures[future]
                        try:
                            history = future.result()
                        except Exception:
                            logger.error(
                                "trial %r of study %r failed",
                                trial.name, self.study.name,
                            )
                            # Siblings that completed in the same wait()
                            # batch still get salvaged below.
                            outstanding |= set(done[index + 1:])
                            raise
                        results[trial.name] = self._record(trial, history)
            except BaseException:
                self._salvage(futures, outstanding, results)
                raise

    def _salvage(self, futures, outstanding, results) -> None:
        """On failure, keep every other trial that still finished.

        Not-yet-started trials are cancelled, but trials already running
        when a sibling failed are allowed to finish (the pool shutdown
        waits for them regardless) and their results are recorded -- as
        are trials that had already completed -- so a later ``resume()``
        only re-runs what genuinely never completed.
        """
        running = [future for future in outstanding if not future.cancel()]
        for future in running:
            trial = futures[future]
            try:
                history = future.result()
            except BaseException:
                continue
            results[trial.name] = self._record(trial, history)
