"""Paper-scale sweep presets.

The paper's scalability evaluation (Fig. 12, Section V-E) simulates fleets
of 100/200/400 workers.  The figure entry points default to scaled-down
fleets so the benchmark suite stays CPU-friendly; the presets here describe
the *paper-scale* sweeps as ready-made :class:`~repro.study.study.Study`
grids so a multi-core host (or an overnight run) can reproduce the actual
axis of the paper:

    from repro.study import StudyRunner, StudyStore
    from repro.study.presets import get_preset

    study = get_preset("paper-scalability")
    runner = StudyRunner(study, store=StudyStore("results"),
                         n_jobs=3, max_processes=8)
    histories = runner.histories()

``benchmarks/bench_fig12_scalability.py`` consumes the same presets through
the ``BENCH_PRESET`` environment variable, so the benchmark harness can be
pointed at the paper axis without editing code.  Presets are grid studies,
hence resumable through a :class:`~repro.study.store.StudyStore` and
clampable through ``StudyRunner(max_processes=...)``.

The ``*-population`` presets sweep the *registered* population instead of
the participating fleet: trials run over the lazy worker registry
(:mod:`repro.population`) with a fixed candidate pool, extending the
scalability axis to a million registered workers while each round still
materialises only its cohort.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.config import ExperimentConfig
from repro.exceptions import StudyError
from repro.study.study import Study

#: The worker counts of the paper's scalability axis (Fig. 12).
PAPER_WORKER_SCALES = (100, 200, 400)

#: A smaller axis with the same shape, for dry-running the preset plumbing.
SMOKE_WORKER_SCALES = (8, 16, 24)

#: Registered-population axis for the lazy worker registry (three orders of
#: magnitude beyond the paper's fleets; the cohort stays candidate-bounded).
PAPER_POPULATION_SCALES = (1_000, 100_000, 1_000_000)

#: A smaller population axis for dry-running the preset plumbing.
SMOKE_POPULATION_SCALES = (500, 5_000)

#: Per-round dropout axis of the churn sweeps (0 = neutral elasticity).
PAPER_CHURN_RATES = (0.0, 0.1, 0.3)

#: A shorter axis for dry-running the churn preset plumbing.
SMOKE_CHURN_RATES = (0.0, 0.3)

#: Transport-codec axis of the codec sweeps (``none`` is the exact anchor).
PAPER_CODECS = ("none", "fp16", "bf16", "int8", "topk")

#: A shorter codec axis for dry-running the preset plumbing.
SMOKE_CODECS = ("none", "int8")

#: Split algorithms the codec sweeps cross with the codec axis.
PAPER_CODEC_ALGORITHMS = ("mergesfl", "splitfed")

#: Split-point policy axis (``uniform`` is the exact global-cut anchor).
PAPER_SPLIT_POLICIES = ("uniform", "profile", "adaptive")

#: A shorter policy axis for dry-running the preset plumbing.
SMOKE_SPLIT_POLICIES = ("uniform", "profile")


def scalability_study(
    dataset: str = "cifar10",
    scales: tuple[int, ...] = PAPER_WORKER_SCALES,
    algorithm: str = "mergesfl",
    non_iid_level: float = 0.0,
    name: str | None = None,
    **overrides,
) -> Study:
    """A ``num_workers`` grid matching the paper's scalability axis.

    ``overrides`` apply to every trial's config (``num_workers`` itself is
    the swept axis and is stripped from them).
    """
    from repro.experiments.figures import figure_config

    overrides = {k: v for k, v in overrides.items() if k != "num_workers"}
    base = figure_config(
        dataset, algorithm, non_iid_level, num_workers=scales[0], **overrides
    )
    if name is None:
        name = f"{dataset}-scalability-{'-'.join(str(s) for s in scales)}"
    return Study.grid(name, base, axes={"num_workers": scales})


def population_study(
    dataset: str = "blobs",
    scales: tuple[int, ...] = PAPER_POPULATION_SCALES,
    algorithm: str = "mergesfl",
    non_iid_level: float = 0.0,
    name: str | None = None,
    **overrides,
) -> Study:
    """A registered-population grid over the lazy worker registry.

    Sweeps ``num_workers`` far beyond the paper's fleets while holding the
    per-round cohort fixed through a candidate pool, so every trial does
    comparable work and the axis isolates the cost of *registering* workers
    (which the lazy registry keeps flat).  ``overrides`` apply to every
    trial's config; the population knobs themselves may be overridden too.
    """
    from repro.experiments.figures import figure_config

    overrides = {k: v for k, v in overrides.items() if k != "num_workers"}
    extras = dict(overrides.pop("extras", {}) or {})
    # Partitioning a fixed train set over 1e5+ workers yields empty shards;
    # sampled sharding derives shards per worker, O(1) in the population.
    extras.setdefault("population_sharding", "sampled")
    extras.setdefault("population_live_devices", 4096)
    overrides.setdefault("population", "lazy")
    overrides.setdefault("population_candidates", 64)
    overrides.setdefault("population_cache", 32)
    base = figure_config(
        dataset, algorithm, non_iid_level,
        num_workers=scales[0], extras=extras, **overrides,
    )
    if name is None:
        name = f"{dataset}-population-{'-'.join(str(s) for s in scales)}"
    return Study.grid(name, base, axes={"num_workers": scales})


def churn_study(
    dataset: str = "cifar10",
    rates: tuple[float, ...] = PAPER_CHURN_RATES,
    algorithm: str = "mergesfl",
    non_iid_level: float = 0.0,
    name: str | None = None,
    **overrides,
) -> Study:
    """A ``dropout_rate`` grid over elastic rounds (:mod:`repro.core.elastic`).

    Every trial runs with elasticity on -- over-selection 1.25 and a
    two-round rejoin staleness bound unless overridden -- and the axis
    sweeps the per-round dropout probability, so the study measures the
    accuracy cost of churn under the recovery machinery (the rate-0.0 trial
    isolates the over-selection padding with zero churn).
    """
    from repro.experiments.figures import figure_config

    overrides = {k: v for k, v in overrides.items() if k != "dropout_rate"}
    overrides.setdefault("elastic", True)
    overrides.setdefault("over_select_factor", 1.25)
    overrides.setdefault("rejoin_staleness_bound", 2)
    base = figure_config(
        dataset, algorithm, non_iid_level, dropout_rate=rates[0], **overrides
    )
    if name is None:
        name = f"{dataset}-churn-{'-'.join(str(r) for r in rates)}"
    return Study.grid(name, base, axes={"dropout_rate": rates})


def codec_study(
    dataset: str = "cifar10",
    codecs: tuple[str, ...] = PAPER_CODECS,
    algorithms: tuple[str, ...] = PAPER_CODEC_ALGORITHMS,
    non_iid_level: float = 0.0,
    name: str | None = None,
    **overrides,
) -> Study:
    """A ``codec`` x ``algorithm`` grid over the feature transport.

    Every trial runs on the process executor (an in-process executor has no
    wire, so codecs would be inert) and sweeps the transport codec
    (:mod:`repro.parallel.codec`) against the split algorithms, measuring
    accuracy cost versus wire compression: the ``none`` column is the exact
    anchor, and each history carries per-round ``bytes_on_wire`` /
    ``compression_ratio`` so the trade-off is read straight off the records.
    """
    from repro.experiments.figures import figure_config

    overrides = {k: v for k, v in overrides.items()
                 if k not in ("codec", "algorithm")}
    overrides.setdefault("executor", "process")
    overrides.setdefault("transport", "shm")
    base = figure_config(
        dataset, algorithms[0], non_iid_level, codec=codecs[0], **overrides
    )
    if name is None:
        name = f"{dataset}-codec-{'-'.join(codecs)}"
    return Study.grid(
        name, base, axes={"algorithm": algorithms, "codec": codecs}
    )


def splitpoint_study(
    dataset: str = "cifar10",
    policies: tuple[str, ...] = PAPER_SPLIT_POLICIES,
    algorithm: str = "mergesfl",
    non_iid_level: float = 0.0,
    name: str | None = None,
    **overrides,
) -> Study:
    """A ``split_policy`` grid over per-worker split points.

    Sweeps the split-point policy (:mod:`repro.splitpoint`) on the Table-2
    heterogeneous device classes: the ``uniform`` column is the exact
    global-cut anchor, and each history carries per-round simulated time and
    traffic so waiting-time and wire savings are read straight off the
    records (see ``benchmarks/bench_splitpoint.py``).
    """
    from repro.experiments.figures import figure_config

    overrides = {k: v for k, v in overrides.items() if k != "split_policy"}
    base = figure_config(
        dataset, algorithm, non_iid_level, split_policy=policies[0], **overrides
    )
    if name is None:
        name = f"{dataset}-splitpoint-{'-'.join(policies)}"
    return Study.grid(name, base, axes={"split_policy": policies})


def _paper_scalability(**overrides) -> Study:
    return scalability_study(scales=PAPER_WORKER_SCALES,
                             name="paper-scalability", **overrides)


def _paper_scalability_noniid(**overrides) -> Study:
    return scalability_study(scales=PAPER_WORKER_SCALES, non_iid_level=10.0,
                             name="paper-scalability-noniid", **overrides)


def _smoke_scalability(**overrides) -> Study:
    return scalability_study(scales=SMOKE_WORKER_SCALES,
                             name="smoke-scalability", **overrides)


def _paper_population(**overrides) -> Study:
    return population_study(scales=PAPER_POPULATION_SCALES,
                            name="paper-population", **overrides)


def _smoke_population(**overrides) -> Study:
    return population_study(scales=SMOKE_POPULATION_SCALES,
                            name="smoke-population", **overrides)


def _paper_churn(**overrides) -> Study:
    return churn_study(rates=PAPER_CHURN_RATES, non_iid_level=10.0,
                       name="paper-churn", **overrides)


def _smoke_churn(**overrides) -> Study:
    return churn_study(dataset="blobs", rates=SMOKE_CHURN_RATES,
                       name="smoke-churn", **overrides)


def _paper_codec(**overrides) -> Study:
    return codec_study(codecs=PAPER_CODECS, name="paper-codec", **overrides)


def _paper_splitpoint(**overrides) -> Study:
    return splitpoint_study(policies=PAPER_SPLIT_POLICIES,
                            name="paper-splitpoint", **overrides)


def _smoke_splitpoint(**overrides) -> Study:
    return splitpoint_study(dataset="har", policies=SMOKE_SPLIT_POLICIES,
                            name="smoke-splitpoint", **overrides)


def _smoke_codec(**overrides) -> Study:
    return codec_study(dataset="blobs", codecs=SMOKE_CODECS,
                       algorithms=("mergesfl",), name="smoke-codec",
                       **overrides)


#: Name -> study builder; builders accept config overrides.
PRESETS: dict[str, Callable[..., Study]] = {
    "paper-scalability": _paper_scalability,
    "paper-scalability-noniid": _paper_scalability_noniid,
    "smoke-scalability": _smoke_scalability,
    "paper-population": _paper_population,
    "smoke-population": _smoke_population,
    "paper-churn": _paper_churn,
    "smoke-churn": _smoke_churn,
    "paper-codec": _paper_codec,
    "smoke-codec": _smoke_codec,
    "paper-splitpoint": _paper_splitpoint,
    "smoke-splitpoint": _smoke_splitpoint,
}


def get_preset(name: str, **overrides) -> Study:
    """Build a preset study by name, applying config ``overrides``."""
    try:
        builder = PRESETS[name]
    except KeyError:
        raise StudyError(
            f"unknown study preset {name!r} "
            f"(available: {', '.join(sorted(PRESETS))})"
        ) from None
    return builder(**overrides)


def preset_scales(name: str) -> tuple[int, ...]:
    """The ``num_workers`` axis a preset sweeps, in definition order."""
    return tuple(trial.tags["num_workers"] for trial in get_preset(name))
