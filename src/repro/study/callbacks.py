"""Shipped session callbacks.

Packaged :class:`~repro.api.events.Callback` implementations covering the
recurring needs of sweep runs -- stop early, checkpoint periodically, log
records, time rounds.  Attach them to any session with
``session.add_callback(...)``; :class:`~repro.study.runner.StudyRunner`
wires them into every trial (they are plain-attribute objects, so they
pickle into trial worker processes).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from pathlib import Path

from repro.api.events import Callback, RoundEnd, RoundStart
from repro.exceptions import ConfigurationError


class EarlyStopping(Callback):
    """Stop a run on a reached target or a stalled metric.

    Args:
        metric: A :class:`~repro.metrics.history.RoundRecord` field name
            (e.g. ``"test_accuracy"``, ``"train_loss"``).
        target: Stop as soon as the metric reaches this value.
        patience: Stop after this many consecutive rounds without
            improvement over the best value seen.
        min_delta: Minimum change that counts as an improvement.
        mode: ``"max"`` when larger is better, ``"min"`` when smaller is.

    At least one of ``target`` and ``patience`` must be given.
    """

    def __init__(
        self,
        metric: str = "test_accuracy",
        target: float | None = None,
        patience: int | None = None,
        min_delta: float = 0.0,
        mode: str = "max",
    ) -> None:
        if target is None and patience is None:
            raise ConfigurationError(
                "EarlyStopping needs a target and/or a patience"
            )
        if mode not in ("max", "min"):
            raise ConfigurationError(f"mode must be 'max' or 'min', got {mode!r}")
        if patience is not None and patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        self.metric = metric
        self.target = target
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best: float | None = None
        self.stale_rounds = 0
        self.stopped_round: int | None = None

    def _value(self, record) -> float:
        try:
            return float(getattr(record, self.metric))
        except AttributeError:
            raise ConfigurationError(
                f"RoundRecord has no metric {self.metric!r}"
            ) from None

    def on_round_end(self, session, event: RoundEnd) -> bool:
        value = self._value(event.record)
        signed = value if self.mode == "max" else -value
        if self.target is not None:
            signed_target = self.target if self.mode == "max" else -self.target
            if signed >= signed_target:
                self.stopped_round = event.record.round_index
                return True
        if self.best is None or signed > self.best + self.min_delta:
            self.best = signed
            self.stale_rounds = 0
        else:
            self.stale_rounds += 1
            if self.patience is not None and self.stale_rounds >= self.patience:
                self.stopped_round = event.record.round_index
                return True
        return False

    def state_dict(self) -> dict:
        return {
            "best": self.best,
            "stale_rounds": self.stale_rounds,
            "stopped_round": self.stopped_round,
        }

    def load_state_dict(self, state: dict) -> None:
        self.best = state["best"]
        self.stale_rounds = state["stale_rounds"]
        self.stopped_round = state["stopped_round"]


class PeriodicCheckpoint(Callback):
    """Save a session checkpoint every ``every`` completed rounds.

    The write goes through :meth:`Session.save_checkpoint`, so it is atomic
    and emits ``checkpoint_saved``.  A sweep killed mid-trial resumes from
    the last such checkpoint instead of restarting the trial (see
    :meth:`repro.study.runner.StudyRunner.resume`).
    """

    def __init__(self, path: str | Path, every: int = 1) -> None:
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        self.path = str(path)
        self.every = every
        self.saves = 0

    def on_round_end(self, session, event: RoundEnd) -> None:
        if session.rounds_completed % self.every == 0:
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
            # Count first: the save serialises this callback's state, and
            # the recorded counter must include the write in progress or a
            # resumed run ends one save short of an uninterrupted one.
            self.saves += 1
            session.save_checkpoint(self.path)

    def state_dict(self) -> dict:
        return {"saves": self.saves}

    def load_state_dict(self, state: dict) -> None:
        self.saves = state["saves"]


class JSONLLogger(Callback):
    """Append every round record to a JSONL file as it is produced."""

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        self.lines = 0

    def on_round_end(self, session, event: RoundEnd) -> None:
        path = Path(self.path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as stream:
            stream.write(json.dumps(asdict(event.record)) + "\n")
        self.lines += 1

    def state_dict(self) -> dict:
        return {"lines": self.lines}

    def load_state_dict(self, state: dict) -> None:
        """Restore the line counter and drop post-checkpoint lines.

        A run killed between a checkpoint and the next one may have
        appended records the resumed run will re-produce; truncating the
        file back to the checkpointed line count keeps the log duplicate-
        free and identical to an uninterrupted run's.
        """
        self.lines = state["lines"]
        path = Path(self.path)
        if path.exists():
            lines = path.read_text().splitlines(keepends=True)
            if len(lines) > self.lines:
                path.write_text("".join(lines[:self.lines]))


class Timing(Callback):
    """Measure real (host) wall-clock time per round.

    The simulated round durations live in the history records; this
    callback measures how long the *simulation itself* takes, which is
    what executor/transport benchmarking wants.  It is the benchmark
    suite's single wall-clock source: round windows are contiguous
    (``round_start`` fires immediately after the previous ``round_end``),
    so under a pipelined or bounded-staleness schedule any work still in
    flight at a round boundary lands in exactly one round's window and
    ``total`` never double-counts overlapped stages.
    """

    def __init__(self) -> None:
        self.durations: list[float] = []
        self._started: float | None = None

    def on_round_start(self, session, event: RoundStart) -> None:
        self._started = time.perf_counter()

    def on_round_end(self, session, event: RoundEnd) -> None:
        if self._started is not None:
            self.durations.append(time.perf_counter() - self._started)
            self._started = None

    @property
    def total(self) -> float:
        """Total measured wall-clock seconds across recorded rounds."""
        return sum(self.durations)

    def state_dict(self) -> dict:
        return {"durations": list(self.durations)}

    def load_state_dict(self, state: dict) -> None:
        self.durations = list(state["durations"])
        self._started = None
