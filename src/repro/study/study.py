"""Declarative descriptions of multi-trial experiment sweeps.

Every result in the paper is a sweep -- the same experiment over
algorithms x datasets x non-IID levels x scales.  A :class:`Study` names
such a sweep and enumerates its :class:`Trial`\\ s, each a complete
:class:`~repro.config.ExperimentConfig` tagged with the axis values that
produced it::

    base = ExperimentConfig(dataset="blobs", model="mlp", num_rounds=4)
    study = Study.grid("ablation", base, axes={
        "algorithm": ("mergesfl", "mergesfl_no_fm"),
        "non_iid_level": (0.0, 10.0),
    })
    [t.name for t in study]
    # ['algorithm=mergesfl,non_iid_level=0', ..., 'algorithm=mergesfl_no_fm,non_iid_level=10']

Studies are pure descriptions; :class:`repro.study.runner.StudyRunner`
executes them (in parallel, resumably) and
:class:`repro.study.store.StudyStore` persists the per-trial results.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from itertools import product

from repro.config import ExperimentConfig
from repro.exceptions import StudyError


def _format_axis_value(value: object) -> str:
    """Compact, filename-friendly rendering of one axis value."""
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _check_name(kind: str, name: str) -> str:
    """Validate a study/trial name (non-empty, stays inside the store dir)."""
    if not isinstance(name, str) or not name:
        raise StudyError(f"{kind} name must be a non-empty string, got {name!r}")
    if "/" in name or "\\" in name:
        raise StudyError(f"{kind} name {name!r} may not contain path separators")
    if name in (".", ".."):
        raise StudyError(
            f"{kind} name {name!r} would escape the study store directory"
        )
    return name


@dataclass(frozen=True)
class Trial:
    """One named configuration inside a study.

    Attributes:
        name: Unique (within the study) identifier; also the key under
            which results and checkpoints are stored.
        config: The complete experiment configuration of this trial.
        tags: The axis values that produced the trial (e.g.
            ``{"algorithm": "mergesfl", "non_iid_level": 10.0}``); free-form
            for hand-built trials.
    """

    name: str
    config: ExperimentConfig
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_name("trial", self.name)
        if not isinstance(self.config, ExperimentConfig):
            raise StudyError(
                f"trial {self.name!r} config must be an ExperimentConfig, "
                f"got {type(self.config).__name__}"
            )


class Study:
    """A named, ordered set of trials.

    Args:
        name: Study identifier; results live under this name in a
            :class:`~repro.study.store.StudyStore`.
        trials: The trials, with unique names.
    """

    def __init__(self, name: str, trials: Iterable[Trial]) -> None:
        self.name = _check_name("study", name)
        self.trials: tuple[Trial, ...] = tuple(trials)
        if not self.trials:
            raise StudyError(f"study {name!r} has no trials")
        seen: set[str] = set()
        for trial in self.trials:
            if trial.name in seen:
                raise StudyError(
                    f"study {name!r} defines trial {trial.name!r} twice"
                )
            seen.add(trial.name)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_configs(
        cls,
        name: str,
        configs: Mapping[str, ExperimentConfig],
        tags: Mapping[str, Mapping] | None = None,
    ) -> "Study":
        """Build a study from an explicit ``{trial name: config}`` mapping.

        ``tags`` optionally supplies per-trial tags under the same keys.
        """
        tags = tags or {}
        return cls(name, [
            Trial(trial_name, config, dict(tags.get(trial_name, {})))
            for trial_name, config in configs.items()
        ])

    @classmethod
    def grid(
        cls,
        name: str,
        base: ExperimentConfig,
        axes: Mapping[str, Sequence],
    ) -> "Study":
        """Build the full cross product of ``axes`` over ``base``.

        Each axis is a config field name (or an ``extras`` key) mapped to
        the values it sweeps; the leftmost axis varies slowest.  Trials are
        named ``axis=value,axis=value`` and tagged with their axis values.
        """
        if not axes:
            raise StudyError(f"study {name!r} grid needs at least one axis")
        axis_names = list(axes)
        for axis, values in axes.items():
            if not values:
                raise StudyError(
                    f"study {name!r} grid axis {axis!r} has no values"
                )
        trials = []
        for combo in product(*(axes[axis] for axis in axis_names)):
            changes = dict(zip(axis_names, combo))
            trial_name = ",".join(
                f"{axis}={_format_axis_value(value)}"
                for axis, value in changes.items()
            )
            trials.append(Trial(trial_name, base.replace(**changes), changes))
        return cls(name, trials)

    @classmethod
    def variations(
        cls,
        name: str,
        base: ExperimentConfig,
        variations: Mapping[str, Mapping],
    ) -> "Study":
        """Build one trial per named ``config.replace``-style change set.

        ``{"fast": {"learning_rate": 0.2}, "base": {}}`` yields two trials;
        an empty change set reproduces ``base`` unchanged.
        """
        if not variations:
            raise StudyError(f"study {name!r} defines no variations")
        return cls(name, [
            Trial(trial_name, base.replace(**dict(changes)),
                  {"variation": trial_name, **dict(changes)})
            for trial_name, changes in variations.items()
        ])

    def with_seeds(self, seeds: Iterable[int]) -> "Study":
        """Replicate every trial under each seed (deterministic naming).

        Trial ``name`` becomes ``name,seed=s`` with ``seed`` added to both
        the config and the tags, so repeated-seed sweeps stay resumable and
        bit-reproducible trial by trial.
        """
        seeds = tuple(seeds)
        if not seeds:
            raise StudyError(f"study {self.name!r} with_seeds got no seeds")
        return Study(self.name, [
            Trial(f"{trial.name},seed={seed}",
                  trial.config.replace(seed=seed),
                  {**trial.tags, "seed": seed})
            for trial in self.trials
            for seed in seeds
        ])

    # -- access --------------------------------------------------------------
    def names(self) -> list[str]:
        """Trial names in definition order."""
        return [trial.name for trial in self.trials]

    def trial(self, name: str) -> Trial:
        """Look up one trial by name."""
        for trial in self.trials:
            if trial.name == name:
                return trial
        raise StudyError(
            f"study {self.name!r} has no trial {name!r} "
            f"(trials: {', '.join(self.names())})"
        )

    def __iter__(self) -> Iterator[Trial]:
        return iter(self.trials)

    def __len__(self) -> int:
        return len(self.trials)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Study({self.name!r}, {len(self.trials)} trials)"
