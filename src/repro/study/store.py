"""On-disk persistence for study results and in-flight trial checkpoints.

Layout under one root directory::

    <root>/<study name>/trials.jsonl                  # one record per trial
    <root>/<study name>/checkpoints/<trial>.ckpt.json # in-flight sessions

``trials.jsonl`` is append-only: the runner writes one JSON line the moment
a trial completes, so a killed sweep keeps everything finished before the
kill.  Reading tolerates a truncated final line (the signature a mid-write
kill leaves behind).  Checkpoints are full
:class:`~repro.api.session.Session` checkpoints written by
:class:`~repro.study.callbacks.PeriodicCheckpoint`, letting a resumed run
continue an interrupted trial bit-exactly instead of restarting it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.metrics.history import History
from repro.utils.logging import get_logger

logger = get_logger("study.store")


@dataclass
class TrialResult:
    """The persisted outcome of one completed trial.

    Attributes:
        name: The trial's name within its study.
        tags: The trial's axis values, as defined by the study.
        config: The trial's configuration as a plain dict
            (``ExperimentConfig.to_dict()``).
        history: The full per-round history of the run.
    """

    name: str
    tags: dict
    config: dict
    history: History = field(default_factory=History)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "tags": self.tags,
            "config": self.config,
            "history": self.history.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            tags=dict(payload.get("tags", {})),
            config=dict(payload.get("config", {})),
            history=History.from_dict(payload.get("history", {})),
        )


class StudyStore:
    """Filesystem-backed store of per-trial results and checkpoints."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------
    def study_dir(self, study_name: str) -> Path:
        """Directory holding one study's records and checkpoints."""
        return self.root / study_name

    def records_path(self, study_name: str) -> Path:
        """The study's append-only JSONL results file."""
        return self.study_dir(study_name) / "trials.jsonl"

    def checkpoint_path(self, study_name: str, trial_name: str) -> Path:
        """Where an in-flight checkpoint of ``trial_name`` lives."""
        return self.study_dir(study_name) / "checkpoints" / f"{trial_name}.ckpt.json"

    # -- writing -------------------------------------------------------------
    def record(self, study_name: str, result: TrialResult) -> None:
        """Append one completed-trial record to the study's JSONL file."""
        path = self.records_path(study_name)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as stream:
            stream.write(json.dumps(result.to_dict()) + "\n")

    def clear_checkpoint(self, study_name: str, trial_name: str) -> None:
        """Drop the trial's in-flight checkpoint (it completed)."""
        self.checkpoint_path(study_name, trial_name).unlink(missing_ok=True)

    # -- reading -------------------------------------------------------------
    def completed(self, study_name: str) -> dict[str, TrialResult]:
        """All recorded results of ``study_name``, keyed by trial name.

        A malformed line (a sweep killed mid-append) is skipped with a
        warning; when a trial appears twice the later record wins.
        """
        path = self.records_path(study_name)
        results: dict[str, TrialResult] = {}
        if not path.exists():
            return results
        with path.open() as stream:
            for line_number, line in enumerate(stream, start=1):
                if not line.strip():
                    continue
                try:
                    result = TrialResult.from_dict(json.loads(line))
                except (ValueError, KeyError, TypeError) as error:
                    logger.warning(
                        "skipping malformed record %s:%d (%s)",
                        path, line_number, error,
                    )
                    continue
                results[result.name] = result
        return results
