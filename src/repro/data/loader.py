"""Mini-batch loading."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import get_rng_state, new_rng, set_rng_state


class BatchLoader:
    """Cycling mini-batch sampler over a worker's local shard.

    Unlike an epoch-based loader, federated workers draw a fixed number of
    mini-batches per round regardless of shard size, so this loader samples
    batches with replacement across rounds: it shuffles the shard, walks it
    sequentially, and reshuffles when exhausted.  Batch size may change
    between calls (batch size regulation reconfigures it every round).
    """

    def __init__(self, dataset: Dataset, seed: int = 0) -> None:
        self.dataset = dataset
        self._rng = new_rng(seed)
        self._order = self._rng.permutation(len(dataset))
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.dataset)

    def next_indices(self, batch_size: int) -> np.ndarray:
        """Draw the next mini-batch's shard indices without materialising it.

        Used by executors that hold a copy of the shard elsewhere (worker
        processes): the sampling state advances here, in the checkpointed
        loader, and only the indices travel.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        size = min(batch_size, len(self.dataset))
        picked: list[int] = []
        while len(picked) < size:
            if self._cursor >= len(self._order):
                self._order = self._rng.permutation(len(self.dataset))
                self._cursor = 0
            take = min(size - len(picked), len(self._order) - self._cursor)
            picked.extend(self._order[self._cursor:self._cursor + take].tolist())
            self._cursor += take
        return np.asarray(picked, dtype=np.int64)

    def next_batch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Return the next ``(data, targets)`` mini-batch of the given size."""
        indices = self.next_indices(batch_size)
        return self.dataset.data[indices], self.dataset.targets[indices]

    def state_dict(self) -> dict:
        """Sampling state (RNG, shuffle order, cursor) for checkpointing."""
        return {
            "rng": get_rng_state(self._rng),
            "order": self._order.copy(),
            "cursor": self._cursor,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore sampling state captured by :meth:`state_dict`."""
        order = np.asarray(state["order"], dtype=np.int64)
        if order.shape != self._order.shape:
            raise ValueError(
                f"loader order length {order.shape[0]} does not match the "
                f"dataset size {self._order.shape[0]}"
            )
        set_rng_state(self._rng, state["rng"])
        self._order = order.copy()
        self._cursor = int(state["cursor"])

    def iter_eval_batches(self, batch_size: int):
        """Iterate once over the dataset in order (for evaluation)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, len(self.dataset), batch_size):
            stop = start + batch_size
            yield self.dataset.data[start:stop], self.dataset.targets[start:stop]
