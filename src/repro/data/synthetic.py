"""Synthetic stand-ins for the paper's four datasets.

Each generator produces class-conditional data: every class ``c`` owns a
random low-frequency template, and a sample of class ``c`` is that template
plus Gaussian noise, shaped like the real dataset's tensors (inertial
windows for HAR, waveforms for Speech, RGB images for CIFAR-10/IMAGE-100).
Such data is learnable by the scaled-down model zoo within a handful of
communication rounds, while exhibiting the same label-skew phenomena under
Dirichlet partitioning that drive the paper's non-IID results.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.api.registry import DATASETS, register_dataset
from repro.data.dataset import Dataset, TrainTestSplit
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset analogue.

    Attributes:
        name: Registry key.
        feature_shape: Per-sample tensor shape.
        num_classes: Number of classes.
        default_model: Model-zoo key the paper pairs with this dataset.
        paper_name: Name of the dataset in the paper.
    """

    name: str
    feature_shape: tuple[int, ...]
    num_classes: int
    default_model: str
    paper_name: str


DATASET_SPECS: dict[str, DatasetSpec] = {
    "har": DatasetSpec("har", (9, 128), 6, "cnn_h", "Human Activity Recognition"),
    "speech": DatasetSpec("speech", (1, 1024), 10, "cnn_s", "Google Speech"),
    "cifar10": DatasetSpec("cifar10", (3, 32, 32), 10, "alexnet_s", "CIFAR-10"),
    "image100": DatasetSpec("image100", (3, 32, 32), 20, "vgg_s", "IMAGE-100"),
    "blobs": DatasetSpec("blobs", (32,), 4, "mlp", "synthetic blobs"),
}


def _block_upsample(template: np.ndarray, factor: int) -> np.ndarray:
    """Upsample the trailing spatial axes of ``template`` by block repetition."""
    if template.ndim == 2:  # (channels, length)
        return np.repeat(template, factor, axis=1)
    if template.ndim == 3:  # (channels, height, width)
        return np.repeat(np.repeat(template, factor, axis=1), factor, axis=2)
    return template


def _make_templates(
    feature_shape: tuple[int, ...],
    num_classes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-class templates with spatial structure matched to the tensor shape.

    Images get blocky low-frequency 2-D patterns (so convolution + pooling
    preserve the class signal); sequences get piecewise-constant 1-D
    patterns; plain vectors get white Gaussian templates.
    """
    factor = 4
    if len(feature_shape) == 3:
        channels, height, width = feature_shape
        low = rng.normal(
            0.0, 1.0,
            size=(num_classes, channels, max(1, height // factor), max(1, width // factor)),
        )
        templates = np.stack([
            _block_upsample(low[cls], factor)[:, :height, :width]
            for cls in range(num_classes)
        ])
    elif len(feature_shape) == 2:
        channels, length = feature_shape
        low = rng.normal(
            0.0, 1.0, size=(num_classes, channels, max(1, length // factor))
        )
        templates = np.stack([
            _block_upsample(low[cls], factor)[:, :length]
            for cls in range(num_classes)
        ])
    else:
        templates = rng.normal(0.0, 1.0, size=(num_classes, *feature_shape))
    return templates


def _class_conditional(
    feature_shape: tuple[int, ...],
    num_classes: int,
    train_samples: int,
    test_samples: int,
    noise: float,
    signal: float,
    rng: np.random.Generator,
    name: str,
    smooth: bool = True,
) -> TrainTestSplit:
    """Generate a class-conditional Gaussian dataset with per-class templates."""
    if smooth:
        templates = _make_templates(feature_shape, num_classes, rng)
    else:
        templates = rng.normal(0.0, 1.0, size=(num_classes, *feature_shape))
    templates = templates * signal

    def _sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        data = templates[labels] + rng.normal(0.0, noise, size=(count, *feature_shape))
        return data, labels

    train_data, train_labels = _sample(train_samples)
    test_data, test_labels = _sample(test_samples)
    return TrainTestSplit(
        train=Dataset(train_data, train_labels, num_classes, name=name),
        test=Dataset(test_data, test_labels, num_classes, name=name),
    )


@register_dataset("har", paper_name="Human Activity Recognition")
def make_har(
    train_samples: int = 2000,
    test_samples: int = 400,
    seed: int = 0,
    noise: float = 0.8,
) -> TrainTestSplit:
    """Synthetic analogue of the UCI HAR dataset (9x128 inertial windows, 6 classes)."""
    spec = DATASET_SPECS["har"]
    return _class_conditional(
        spec.feature_shape, spec.num_classes, train_samples, test_samples,
        noise=noise, signal=1.0, rng=new_rng(seed), name=spec.name,
    )


@register_dataset("speech", paper_name="Google Speech")
def make_speech(
    train_samples: int = 2000,
    test_samples: int = 400,
    seed: int = 0,
    noise: float = 0.8,
) -> TrainTestSplit:
    """Synthetic analogue of Google Speech (1x1024 waveforms, 10 classes)."""
    spec = DATASET_SPECS["speech"]
    return _class_conditional(
        spec.feature_shape, spec.num_classes, train_samples, test_samples,
        noise=noise, signal=1.0, rng=new_rng(seed), name=spec.name,
    )


@register_dataset("cifar10", paper_name="CIFAR-10")
def make_cifar10(
    train_samples: int = 2000,
    test_samples: int = 400,
    seed: int = 0,
    noise: float = 0.6,
) -> TrainTestSplit:
    """Synthetic analogue of CIFAR-10 (3x32x32 images, 10 classes)."""
    spec = DATASET_SPECS["cifar10"]
    return _class_conditional(
        spec.feature_shape, spec.num_classes, train_samples, test_samples,
        noise=noise, signal=1.0, rng=new_rng(seed), name=spec.name,
    )


@register_dataset("image100", paper_name="IMAGE-100")
def make_image100(
    train_samples: int = 2000,
    test_samples: int = 400,
    seed: int = 0,
    noise: float = 0.6,
) -> TrainTestSplit:
    """Synthetic analogue of IMAGE-100.

    The paper subsets ImageNet to 100 classes at 64x64; the analogue keeps
    the multi-class flavour with 20 classes at 32x32 so VGG-S training stays
    CPU-tractable while remaining the hardest task in the suite.
    """
    spec = DATASET_SPECS["image100"]
    return _class_conditional(
        spec.feature_shape, spec.num_classes, train_samples, test_samples,
        noise=noise, signal=1.0, rng=new_rng(seed), name=spec.name,
    )


@register_dataset("blobs", paper_name="synthetic blobs")
def make_blobs(
    train_samples: int = 1000,
    test_samples: int = 200,
    seed: int = 0,
    noise: float = 0.6,
) -> TrainTestSplit:
    """A tiny vector dataset for fast unit tests (32-dim, 4 classes)."""
    spec = DATASET_SPECS["blobs"]
    return _class_conditional(
        spec.feature_shape, spec.num_classes, train_samples, test_samples,
        noise=noise, signal=1.2, rng=new_rng(seed), name=spec.name, smooth=False,
    )


#: Built-in makers (kept for backwards compatibility; the authoritative,
#: extensible mapping is :data:`repro.api.registry.DATASETS`).
DATASET_REGISTRY: dict[str, Callable[..., TrainTestSplit]] = {
    "har": make_har,
    "speech": make_speech,
    "cifar10": make_cifar10,
    "image100": make_image100,
    "blobs": make_blobs,
}

#: Snapshot of the original dict entries, so mutations of
#: ``DATASET_REGISTRY`` by legacy code remain detectable and keep their
#: pre-registry behaviour.
_DATASET_REGISTRY_BUILTINS = dict(DATASET_REGISTRY)


def make_dataset(
    name: str,
    train_samples: int = 2000,
    test_samples: int = 400,
    seed: int = 0,
) -> TrainTestSplit:
    """Build a dataset analogue by registry name.

    Resolves through :data:`repro.api.registry.DATASETS`, so datasets
    registered by third-party code (``@register_dataset``) work here too.
    Entries added to -- or replaced in -- the legacy ``DATASET_REGISTRY``
    dict also keep working: a mutated dict entry takes precedence, as it
    did before the registries existed.
    """
    legacy = DATASET_REGISTRY.get(name)
    if legacy is not None and legacy is not _DATASET_REGISTRY_BUILTINS.get(name):
        maker = legacy
    else:
        maker = DATASETS.get(name)
    return maker(train_samples=train_samples, test_samples=test_samples, seed=seed)
