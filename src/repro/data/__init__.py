"""Datasets, partitioning and batch loading.

The paper evaluates on HAR, Google Speech, CIFAR-10 and IMAGE-100.  Those
datasets cannot be downloaded in this offline environment, so
:mod:`repro.data.synthetic` generates class-conditional synthetic datasets
with matching tensor shapes and class counts.  Statistical heterogeneity is
reproduced exactly as in the paper: worker shards are drawn from a
Dirichlet distribution whose concentration controls the non-IID level
``p = 1 / delta``.
"""

from repro.data.dataset import Dataset, TrainTestSplit
from repro.data.synthetic import (
    make_dataset,
    make_har,
    make_speech,
    make_cifar10,
    make_image100,
    make_blobs,
    DATASET_REGISTRY,
    DATASET_SPECS,
    DatasetSpec,
)
from repro.data.partition import (
    iid_partition,
    dirichlet_partition,
    partition_dataset,
    label_distribution,
    non_iid_level_to_alpha,
)
from repro.data.loader import BatchLoader

__all__ = [
    "Dataset",
    "TrainTestSplit",
    "make_dataset",
    "make_har",
    "make_speech",
    "make_cifar10",
    "make_image100",
    "make_blobs",
    "DATASET_REGISTRY",
    "DATASET_SPECS",
    "DatasetSpec",
    "iid_partition",
    "dirichlet_partition",
    "partition_dataset",
    "label_distribution",
    "non_iid_level_to_alpha",
    "BatchLoader",
]
