"""Worker data partitioning (statistical heterogeneity).

The paper draws each worker's class proportions from a Dirichlet
distribution ``Dir(delta * q)`` where ``q`` is the prior class distribution
and ``delta`` controls identicalness; the non-IID level is reported as
``p = 1 / delta`` with ``p = 0`` denoting IID (Section V-A).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError
from repro.utils.rng import new_rng


def non_iid_level_to_alpha(level: float) -> float | None:
    """Convert the paper's non-IID level ``p`` into a Dirichlet concentration.

    Returns ``None`` for ``p == 0`` (IID).
    """
    if level < 0:
        raise ValueError(f"non-IID level must be non-negative, got {level}")
    if level == 0:
        return None
    return 1.0 / level


def iid_partition(
    targets: np.ndarray, num_workers: int, rng: np.random.Generator | None = None
) -> list[np.ndarray]:
    """Shuffle samples and deal them out evenly across workers."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    rng = rng if rng is not None else new_rng()
    indices = rng.permutation(len(targets))
    return [np.sort(shard) for shard in np.array_split(indices, num_workers)]


def dirichlet_partition(
    targets: np.ndarray,
    num_workers: int,
    alpha: float,
    rng: np.random.Generator | None = None,
    min_samples: int = 2,
    max_retries: int = 50,
) -> list[np.ndarray]:
    """Partition by drawing per-worker class proportions from ``Dir(alpha)``.

    Args:
        targets: Integer labels of the full training set.
        num_workers: Number of shards to create.
        alpha: Dirichlet concentration; small alpha means heavy label skew.
        rng: Random generator.
        min_samples: Minimum shard size; the draw is retried until satisfied.
        max_retries: Maximum number of re-draws before giving up.

    Returns:
        A list of ``num_workers`` index arrays (sorted, disjoint, covering
        all samples).
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = rng if rng is not None else new_rng()
    targets = np.asarray(targets, dtype=np.int64)
    num_classes = int(targets.max()) + 1 if targets.size else 0
    if num_classes == 0:
        raise DataError("cannot partition an empty dataset")

    for __ in range(max_retries):
        shards: list[list[int]] = [[] for __ in range(num_workers)]
        for cls in range(num_classes):
            cls_indices = np.flatnonzero(targets == cls)
            rng.shuffle(cls_indices)
            proportions = rng.dirichlet([alpha] * num_workers)
            counts = np.floor(proportions * len(cls_indices)).astype(int)
            # Distribute the remainder to the largest-proportion workers.
            remainder = len(cls_indices) - counts.sum()
            if remainder > 0:
                order = np.argsort(-proportions)
                counts[order[:remainder]] += 1
            offset = 0
            for worker, count in enumerate(counts):
                shards[worker].extend(cls_indices[offset:offset + count].tolist())
                offset += count
        sizes = [len(shard) for shard in shards]
        if min(sizes) >= min_samples:
            return [np.sort(np.asarray(shard, dtype=np.int64)) for shard in shards]
    # Fall back: top up undersized shards from the largest one.
    shards_arrays = [np.asarray(shard, dtype=np.int64) for shard in shards]
    for worker, shard in enumerate(shards_arrays):
        while len(shards_arrays[worker]) < min_samples:
            donor = int(np.argmax([len(s) for s in shards_arrays]))
            moved, shards_arrays[donor] = (
                shards_arrays[donor][:1],
                shards_arrays[donor][1:],
            )
            shards_arrays[worker] = np.concatenate([shards_arrays[worker], moved])
    return [np.sort(shard) for shard in shards_arrays]


def partition_dataset(
    dataset: Dataset,
    num_workers: int,
    non_iid_level: float = 0.0,
    seed: int = 0,
) -> list[np.ndarray]:
    """Partition a dataset by the paper's non-IID level convention."""
    rng = new_rng(seed)
    alpha = non_iid_level_to_alpha(non_iid_level)
    if alpha is None:
        return iid_partition(dataset.targets, num_workers, rng)
    return dirichlet_partition(dataset.targets, num_workers, alpha, rng)


def label_distribution(
    targets: np.ndarray, indices: np.ndarray, num_classes: int
) -> np.ndarray:
    """Normalised label histogram of ``targets[indices]`` (vector V_i, Eq. 11)."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        return np.full(num_classes, 1.0 / num_classes)
    counts = np.bincount(targets[indices], minlength=num_classes).astype(np.float64)
    return counts / counts.sum()
