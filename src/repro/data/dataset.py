"""In-memory dataset containers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError


@dataclass
class Dataset:
    """A supervised dataset held fully in memory.

    Attributes:
        data: Input array of shape ``(samples, *feature_shape)``.
        targets: Integer labels of shape ``(samples,)``.
        num_classes: Number of distinct classes.
        name: Human-readable dataset name.
    """

    data: np.ndarray
    targets: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        self.targets = np.asarray(self.targets, dtype=np.int64)
        if self.data.shape[0] != self.targets.shape[0]:
            raise DataError(
                f"data has {self.data.shape[0]} samples but targets has "
                f"{self.targets.shape[0]}"
            )
        if self.targets.size and (
            self.targets.min() < 0 or self.targets.max() >= self.num_classes
        ):
            raise DataError(
                f"targets out of range for {self.num_classes} classes: "
                f"[{self.targets.min()}, {self.targets.max()}]"
            )

    def __len__(self) -> int:
        return int(self.data.shape[0])

    @property
    def feature_shape(self) -> tuple[int, ...]:
        """Shape of a single input sample."""
        return tuple(self.data.shape[1:])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new dataset restricted to ``indices`` (copies the slices)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise DataError("subset indices out of range")
        return Dataset(
            data=self.data[indices].copy(),
            targets=self.targets[indices].copy(),
            num_classes=self.num_classes,
            name=self.name,
        )

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, shape ``(num_classes,)``."""
        return np.bincount(self.targets, minlength=self.num_classes)


@dataclass
class TrainTestSplit:
    """A dataset split into train and test partitions."""

    train: Dataset
    test: Dataset

    @property
    def num_classes(self) -> int:
        """Number of classes (shared by both partitions)."""
        return self.train.num_classes

    @property
    def feature_shape(self) -> tuple[int, ...]:
        """Per-sample input shape (shared by both partitions)."""
        return self.train.feature_shape
