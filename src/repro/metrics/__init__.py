"""Metrics: training history, time-to-accuracy, traffic-to-accuracy."""

from repro.metrics.history import History, RoundRecord
from repro.metrics.summary import (
    time_to_accuracy,
    traffic_to_accuracy,
    final_accuracy,
    best_accuracy,
    mean_waiting_time,
    speedup,
    compare_histories,
)

__all__ = [
    "History",
    "RoundRecord",
    "time_to_accuracy",
    "traffic_to_accuracy",
    "final_accuracy",
    "best_accuracy",
    "mean_waiting_time",
    "speedup",
    "compare_histories",
]
