"""Summary statistics over training histories (the paper's three metrics)."""

from __future__ import annotations

import numpy as np

from repro.metrics.history import History


def final_accuracy(history: History) -> float:
    """Test accuracy after the last round (the paper's 'final test accuracy')."""
    if not history.records:
        return 0.0
    return history.records[-1].test_accuracy


def best_accuracy(history: History) -> float:
    """Best test accuracy observed during training."""
    if not history.records:
        return 0.0
    return max(history.accuracies)


def time_to_accuracy(history: History, target: float) -> float | None:
    """Simulated seconds until the target accuracy is first reached.

    Returns ``None`` if the target was never reached.
    """
    for record in history.records:
        if record.test_accuracy >= target:
            return record.sim_time
    return None


def traffic_to_accuracy(history: History, target: float) -> float | None:
    """Cumulative traffic (MB) when the target accuracy is first reached."""
    for record in history.records:
        if record.test_accuracy >= target:
            return record.traffic_mb
    return None


def mean_waiting_time(history: History) -> float:
    """Average per-round waiting time over the whole run."""
    if not history.records:
        return 0.0
    return float(np.mean(history.waiting_times))


def speedup(baseline: History, candidate: History, target: float) -> float | None:
    """Ratio of baseline to candidate time-to-accuracy (>1 means faster).

    Returns ``None`` if either run never reaches the target.
    """
    baseline_time = time_to_accuracy(baseline, target)
    candidate_time = time_to_accuracy(candidate, target)
    if baseline_time is None or candidate_time is None or candidate_time == 0:
        return None
    return baseline_time / candidate_time


def participation_summary(history: History) -> dict:
    """Aggregate the per-round participation history of a run.

    Uses the ``selected_ids`` recorded per round, so it works for eager and
    lazy populations alike (and for histories loaded from checkpoints).

    Returns:
        ``distinct_workers`` (how many workers ever participated),
        ``total_selections`` (sum of cohort sizes), ``mean_cohort`` /
        ``max_cohort`` (per-round cohort statistics) and ``selections``
        (mapping from worker id to times selected).
    """
    selections: dict[int, int] = {}
    cohorts = []
    for record in history.records:
        cohorts.append(len(record.selected_ids))
        for worker_id in record.selected_ids:
            selections[worker_id] = selections.get(worker_id, 0) + 1
    return {
        "distinct_workers": len(selections),
        "total_selections": int(np.sum(cohorts)) if cohorts else 0,
        "mean_cohort": float(np.mean(cohorts)) if cohorts else 0.0,
        "max_cohort": int(np.max(cohorts)) if cohorts else 0,
        "selections": selections,
    }


def cache_hit_rate(history: History) -> float:
    """Fraction of worker materialisations served by the delta cache.

    ``0.0`` when the run recorded no cache events (eager populations,
    disabled caches, or an empty history).
    """
    hits = sum(record.cache_hits for record in history.records)
    misses = sum(record.cache_misses for record in history.records)
    if hits + misses == 0:
        return 0.0
    return hits / (hits + misses)


def mean_effective_staleness(history: History) -> float:
    """Average realized staleness across the run's rounds (0.0 when exact)."""
    if not history.records:
        return 0.0
    return float(np.mean([r.effective_staleness for r in history.records]))


def mean_dropout_rate(history: History) -> float:
    """Average per-round dropout rate (0.0 for non-elastic runs)."""
    if not history.records:
        return 0.0
    return float(np.mean([record.dropout_rate for record in history.records]))


def mean_effective_cohort(history: History) -> float:
    """Average number of updates entering the per-round aggregate.

    Records written before elasticity existed (or by non-elastic runs of
    older versions) carry ``effective_cohort == 0``; those fall back to
    ``num_selected``, which is what the synchronous engines aggregated.
    """
    if not history.records:
        return 0.0
    return float(
        np.mean([
            record.effective_cohort if record.effective_cohort > 0
            else record.num_selected
            for record in history.records
        ])
    )


def total_bytes_on_wire(history: History) -> int:
    """Array-payload bytes that crossed process boundaries over the run."""
    return int(sum(record.bytes_on_wire for record in history.records))


def total_logical_bytes(history: History) -> int:
    """Dense pre-codec bytes those wire payloads represent over the run."""
    return int(sum(record.logical_bytes for record in history.records))


def mean_compression_ratio(history: History) -> float:
    """Logical-to-wire byte ratio over the whole run.

    ``1.0`` at ``codec="none"`` on a process executor, ``> 1`` under a
    compressing codec, and ``0.0`` when nothing crossed a process boundary
    (in-process executors, empty histories).
    """
    wire = total_bytes_on_wire(history)
    if wire == 0:
        return 0.0
    return total_logical_bytes(history) / wire


def schedule_divergence(relaxed: History, exact: History) -> dict:
    """Convergence delta of a relaxed schedule against its exact reference.

    Compares per-round test accuracy of a bounded-staleness run against the
    exact (sync/pipelined/staleness-0) run of the same configuration, so
    the relaxation's cost is a measured number rather than a hope.

    Returns:
        ``per_round`` (absolute accuracy deltas over the common prefix),
        ``max`` (worst per-round delta), ``final`` (absolute delta of the
        final accuracies) and ``mean_staleness`` (the relaxed run's average
        realized staleness).
    """
    rounds = min(len(relaxed.records), len(exact.records))
    per_round = [
        abs(relaxed.records[i].test_accuracy - exact.records[i].test_accuracy)
        for i in range(rounds)
    ]
    return {
        "per_round": per_round,
        "max": max(per_round) if per_round else 0.0,
        "final": abs(final_accuracy(relaxed) - final_accuracy(exact)),
        "mean_staleness": mean_effective_staleness(relaxed),
    }


def compare_histories(
    histories: dict[str, History], target: float | None = None
) -> dict[str, dict[str, float | None]]:
    """Tabulate final accuracy, waiting time and time/traffic-to-accuracy.

    Args:
        histories: Mapping from approach name to its history.
        target: Accuracy target; when omitted, the highest accuracy reached
            by every approach is used, so every row is populated.

    Returns:
        Mapping from approach name to a metric dictionary.
    """
    if target is None and histories:
        ceilings = [best_accuracy(history) for history in histories.values()]
        target = min(ceilings) if ceilings else 0.0
    table: dict[str, dict[str, float | None]] = {}
    for name, history in histories.items():
        table[name] = {
            "final_accuracy": final_accuracy(history),
            "best_accuracy": best_accuracy(history),
            "time_to_target_s": time_to_accuracy(history, target),
            "traffic_to_target_mb": traffic_to_accuracy(history, target),
            "mean_waiting_time_s": mean_waiting_time(history),
            "total_time_s": history.records[-1].sim_time if history.records else 0.0,
            "total_traffic_mb": history.records[-1].traffic_mb if history.records else 0.0,
        }
    return table
