"""Per-round training history."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict


@dataclass
class RoundRecord:
    """Everything measured about one communication round.

    Attributes:
        round_index: Zero-based round counter.
        sim_time: Cumulative simulated wall-clock time (seconds).
        duration: This round's duration (seconds).
        waiting_time: Average worker idle time in this round (seconds).
        traffic_mb: Cumulative network traffic (MB).
        train_loss: Mean training loss over the round's iterations.
        test_loss: Test loss of the global model after the round.
        test_accuracy: Test accuracy of the global model after the round.
        num_selected: Number of workers in the round's worker set.
        total_batch: Total merged batch size.
        merged_kl: KL divergence of the merged label distribution.
        effective_staleness: Mean realized staleness of the round's bottom
            forwards -- how many local updates behind the strict schedule
            they ran.  ``0.0`` under any exact schedule (sync, pipelined,
            staleness bound 0, or a relaxation that fell back); positive
            only when a bounded-staleness schedule actually relaxed the
            round, which makes the relaxation measurable per round.
        selected_ids: Global ids of the round's selected cohort, in plan
            order -- the participation history churn scenarios build on.
        cache_hits: Worker materialisations served from the population's
            :class:`~repro.population.cache.DeltaCache` this round
            (``0`` for eager populations and disabled caches).
        cache_misses: Materialisations that fell back to the plain global
            model this round (FedAvg-install semantics).
        dropped_ids: Workers whose update missed the round -- simulated
            dropouts and stragglers plus any real executor deaths
            (empty when elasticity is off).
        completed_ids: Workers whose update made the round's aggregate
            (empty when elasticity is off).
        rejoined_ids: Workers whose earlier missing update was folded into
            this round's aggregate within the rejoin staleness bound.
        dropout_rate: Fraction of the planned cohort that missed the round.
        effective_cohort: Number of updates in the round's aggregate
            (completed + rejoined; equals ``num_selected`` when
            elasticity is off).
        bytes_on_wire: Array-payload bytes that actually crossed the
            executor's process boundary this round (both directions,
            post-codec; ``0`` for in-process executors).
        logical_bytes: Dense bytes those payloads represent pre-codec;
            equals ``bytes_on_wire`` at ``codec="none"``.
        compression_ratio: ``logical_bytes / bytes_on_wire`` for the round
            (``0.0`` when nothing crossed a process boundary).
    """

    round_index: int
    sim_time: float
    duration: float
    waiting_time: float
    traffic_mb: float
    train_loss: float
    test_loss: float
    test_accuracy: float
    num_selected: int
    total_batch: int
    merged_kl: float = 0.0
    effective_staleness: float = 0.0
    selected_ids: list[int] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    dropped_ids: list[int] = field(default_factory=list)
    completed_ids: list[int] = field(default_factory=list)
    rejoined_ids: list[int] = field(default_factory=list)
    dropout_rate: float = 0.0
    effective_cohort: int = 0
    bytes_on_wire: int = 0
    logical_bytes: int = 0
    compression_ratio: float = 0.0


#: :class:`RoundRecord` fields that measure transport wire traffic.  They
#: depend on the execution *topology* (executor, transport, schedule), not
#: on the training trajectory, so cross-topology equivalence checks compare
#: records with these stripped while everything else stays bit-exact.
WIRE_FIELDS = ("bytes_on_wire", "logical_bytes", "compression_ratio")


def wire_round_delta(before: dict | None, after: dict | None
                     ) -> tuple[int, int, float]:
    """Per-round ``(bytes_on_wire, logical_bytes, compression_ratio)``.

    Computed from two executor ``transport_stats()`` snapshots (monotonic
    counters, or ``None`` for in-process executors, which yields zeros).
    """
    if before is None or after is None:
        return 0, 0, 0.0
    wire = int(after["bytes_on_wire"]) - int(before["bytes_on_wire"])
    logical = int(after["logical_bytes"]) - int(before["logical_bytes"])
    ratio = (logical / wire) if wire > 0 else 0.0
    return wire, logical, ratio


@dataclass
class History:
    """Ordered collection of :class:`RoundRecord` for one training run."""

    algorithm: str = ""
    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Append a round record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> RoundRecord:
        return self.records[index]

    # -- convenience accessors ------------------------------------------------
    @property
    def accuracies(self) -> list[float]:
        """Per-round test accuracy."""
        return [record.test_accuracy for record in self.records]

    @property
    def times(self) -> list[float]:
        """Per-round cumulative simulated time."""
        return [record.sim_time for record in self.records]

    @property
    def traffic(self) -> list[float]:
        """Per-round cumulative traffic in MB."""
        return [record.traffic_mb for record in self.records]

    @property
    def waiting_times(self) -> list[float]:
        """Per-round average waiting time."""
        return [record.waiting_time for record in self.records]

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "algorithm": self.algorithm,
            "records": [asdict(record) for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "History":
        """Inverse of :meth:`to_dict`."""
        history = cls(algorithm=payload.get("algorithm", ""))
        for record in payload.get("records", []):
            history.append(RoundRecord(**record))
        return history
