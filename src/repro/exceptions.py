"""Exception hierarchy for the MergeSFL reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An experiment or model configuration is invalid."""


class ShapeError(ReproError):
    """A tensor has an unexpected shape."""


class SplitError(ReproError):
    """A model cannot be split at the requested layer."""


class SelectionError(ReproError):
    """Worker selection could not produce a feasible worker set."""


class DataError(ReproError):
    """A dataset or partition is malformed."""


class TransportError(ReproError):
    """An inter-process feature transport failed (corrupt frame, dead peer)."""


class ExecutorDeathError(ReproError, RuntimeError):
    """A pooled executor process died with work in flight.

    Subclasses :class:`RuntimeError` so callers matching the historical
    ``"died"`` message keep working; additionally carries the worker ids
    that were homed on the dead process, which is what lets an elastic
    engine re-plan the round with the survivors instead of failing it.
    """

    def __init__(self, message: str, worker_ids=()) -> None:
        super().__init__(message)
        self.worker_ids = [int(worker_id) for worker_id in worker_ids]


class CallbackError(ReproError):
    """A session event callback raised; the message names the callback."""


class StudyError(ReproError):
    """A study definition or a study run is invalid or inconsistent."""
