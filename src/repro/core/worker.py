"""Worker-side training of the bottom model."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.loader import BatchLoader
from repro.data.partition import label_distribution
from repro.nn.module import Sequential
from repro.nn.optim import SGD


class SplitWorker:
    """A federated worker holding a bottom model and a local data shard.

    The worker performs the worker side of split training: forward
    propagation of the bottom model on a local mini-batch (producing the
    features sent to the PS) and backward propagation from the gradient the
    PS dispatches back, followed by a local SGD step whose learning rate is
    scaled with the worker's batch size (Section IV-B).
    """

    def __init__(
        self,
        worker_id: int,
        dataset: Dataset,
        num_classes: int,
        seed: int = 0,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = 5.0,
    ) -> None:
        self.worker_id = worker_id
        self.dataset = dataset
        self.num_classes = num_classes
        self.loader = BatchLoader(dataset, seed=seed)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self.bottom: Sequential | None = None
        self.optimizer: SGD | None = None
        self.participation_count = 0
        self._pending_batch_size = 0

    # -- state -------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Size of the local data shard."""
        return len(self.dataset)

    def local_label_distribution(self) -> np.ndarray:
        """Label distribution V_i of the whole local shard."""
        return label_distribution(
            self.dataset.targets, np.arange(len(self.dataset)), self.num_classes
        )

    def receive_bottom_model(self, bottom: Sequential, learning_rate: float) -> None:
        """Install a fresh copy of the global bottom model for this round."""
        self.bottom = bottom.clone()
        self.bottom.train()
        self.optimizer = SGD(
            self.bottom.parameters(),
            lr=learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            max_grad_norm=self.max_grad_norm,
        )

    def set_learning_rate(self, learning_rate: float) -> None:
        """Update the local learning rate (batch-size-proportional scaling)."""
        if self.optimizer is None:
            raise RuntimeError("worker has no bottom model installed")
        self.optimizer.lr = learning_rate

    def state_dict(self) -> dict:
        """Round-persistent state for checkpointing.

        The bottom model and its optimizer are re-installed from the global
        model at the start of every round, so only the sampling state and
        the participation counter survive across rounds.
        """
        return {
            "participation_count": self.participation_count,
            "loader": self.loader.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.participation_count = int(state["participation_count"])
        self.loader.load_state_dict(state["loader"])

    def bottom_state(self) -> dict[str, np.ndarray]:
        """State dict of the locally updated bottom model."""
        if self.bottom is None:
            raise RuntimeError("worker has no bottom model installed")
        return self.bottom.state_dict()

    # -- split training ------------------------------------------------------
    def draw_batch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw the next local mini-batch without running the bottom model.

        Used by executors that carry out the bottom-model compute elsewhere
        (stacked kernels, worker processes): the sampling state stays on the
        worker, where it is checkpointed, regardless of where the arithmetic
        happens.
        """
        data, labels = self.loader.next_batch(batch_size)
        self._pending_batch_size = data.shape[0]
        return data, labels

    def draw_batch_indices(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw the next mini-batch as ``(shard_indices, labels)``.

        For executors that hold a copy of the (static) shard next to the
        compute: only the drawn indices need to travel, the sampling RNG
        advances exactly as in :meth:`draw_batch`.
        """
        indices = self.loader.next_indices(batch_size)
        self._pending_batch_size = indices.shape[0]
        return indices, self.dataset.targets[indices]

    def forward_batch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Run the bottom model on the next local mini-batch.

        Returns:
            ``(features, labels)`` where ``features`` is the split-layer
            activation sent to the PS.
        """
        if self.bottom is None:
            raise RuntimeError("worker has no bottom model installed")
        data, labels = self.draw_batch(batch_size)
        features = self.bottom.forward(data)
        return features, labels

    def backward_and_step(self, feature_gradient: np.ndarray) -> None:
        """Back-propagate the dispatched gradient and take a local SGD step."""
        if self.bottom is None or self.optimizer is None:
            raise RuntimeError("worker has no bottom model installed")
        if feature_gradient.shape[0] != self._pending_batch_size:
            raise ValueError(
                f"gradient batch {feature_gradient.shape[0]} does not match the "
                f"pending forward batch {self._pending_batch_size}"
            )
        self.optimizer.zero_grad()
        self.bottom.backward(feature_gradient)
        self.optimizer.step()

    # -- local (non-split) training for FL baselines -------------------------
    def train_full_model(
        self,
        model: Sequential,
        loss_fn,
        iterations: int,
        batch_size: int,
        learning_rate: float,
    ) -> dict[str, np.ndarray]:
        """Train a full model locally (used by FedAvg / PyramidFL baselines).

        Returns the locally updated state dict; the caller owns aggregation.
        """
        local = model.clone()
        local.train()
        optimizer = SGD(
            local.parameters(),
            lr=learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            max_grad_norm=self.max_grad_norm,
        )
        for __ in range(iterations):
            data, labels = self.loader.next_batch(batch_size)
            optimizer.zero_grad()
            logits = local.forward(data)
            loss_fn.forward(logits, labels)
            local.backward(loss_fn.backward())
            optimizer.step()
        return local.state_dict()
