"""Worker selection (Eq. 13 + the genetic algorithm of Alg. 1, lines 3-5).

The control module must pick a worker set ``S^h`` whose merged label
distribution is as close to IID as possible while the occupied ingress
bandwidth stays within budget.  Workers that have participated less often
get higher priority so every worker's data eventually contributes.

Everything here operates on dense metadata arrays -- per-sample durations,
label-distribution rows, participation counts -- with *positional* indices:
no live worker objects are needed to plan a round.  That makes the module
population-agnostic: a lazily-materialised registry hands the GA the rows
of its per-round candidate pool and the resulting positional selection is
remapped to global worker ids afterwards
(:meth:`repro.core.controller.RoundPlan.remapped`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batching import occupied_bandwidth
from repro.core.divergence import _EPS, kl_divergence, mixed_label_distribution
from repro.exceptions import SelectionError
from repro.utils.numeric import normalize_distribution
from repro.utils.rng import new_rng


def selection_priorities(participation_counts: np.ndarray) -> np.ndarray:
    """Selection priority p_i = sum_j (K_j + 1) / (K_i + 1)  (Eq. 13)."""
    counts = np.asarray(participation_counts, dtype=np.float64)
    if np.any(counts < 0):
        raise ValueError("participation counts must be non-negative")
    total = (counts + 1.0).sum()
    return total / (counts + 1.0)


@dataclass
class SelectionResult:
    """Outcome of a worker-selection run.

    Attributes:
        selected: Sorted worker indices forming ``S^h``.
        kl: KL divergence of the selected set's merged label distribution.
        feasible: Whether the bandwidth constraint is satisfied.
    """

    selected: np.ndarray
    kl: float
    feasible: bool


def _fitness(
    mask: np.ndarray,
    batch_sizes: np.ndarray,
    label_distributions: np.ndarray,
    target: np.ndarray,
    bandwidth_per_sample: "float | np.ndarray",
    bandwidth_budget: float,
) -> float:
    """Penalised fitness: KL divergence + constraint violation - utilisation bonus.

    ``bandwidth_per_sample`` may be a scalar (one exchange size for every
    worker, the historical path) or a per-worker vector ``c_i`` so workers
    cut at different split depths are costed by their own exchange size.
    """
    selected = np.flatnonzero(mask)
    if selected.size == 0:
        return 1e6
    phi = mixed_label_distribution(label_distributions, batch_sizes, selected)
    kl = kl_divergence(phi, target)
    used = occupied_bandwidth(batch_sizes, selected, bandwidth_per_sample)
    violation = max(0.0, used - bandwidth_budget) / bandwidth_budget
    utilisation = min(1.0, used / bandwidth_budget)
    return kl + 10.0 * violation + 0.05 * (1.0 - utilisation)


class PopulationFitness:
    """Vectorized GA fitness: a whole population evaluated in one pass.

    The per-worker KL contribution vectors ``d_i * V_i`` (the numerator
    terms of Eq. 11) and the smoothed reference distribution of Eq. 12 are
    precomputed once per round; evaluating a population of membership masks
    is then one masked matrix reduction plus a row-wise KL instead of a
    Python loop over individuals -- ``population x generations`` scalar
    fitness calls collapse into ``generations`` matrix ops.

    Every reduction is arranged to be bit-identical to :func:`_fitness`:
    unselected workers contribute exact ``0.0`` rows to a sequential sum
    over the worker axis (adding ``0.0`` is a bitwise no-op), batch-size
    sums are integer-valued and therefore order-independent in float64, and
    the per-class reductions run over the same contiguous axis length as
    the scalar path.  The GA's comparisons -- and therefore its
    :class:`SelectionResult` -- are unchanged for a fixed seed.
    """

    def __init__(
        self,
        batch_sizes: np.ndarray,
        label_distributions: np.ndarray,
        target_distribution: np.ndarray,
        bandwidth_per_sample: "float | np.ndarray",
        bandwidth_budget: float,
    ) -> None:
        self._batches = np.asarray(batch_sizes, dtype=np.int64)
        if np.any(self._batches < 0):
            # Mirrors the check mixed_label_distribution applies per mask.
            raise ValueError("batch sizes must be non-negative")
        self._matrix = np.atleast_2d(np.asarray(label_distributions, dtype=np.float64))
        #: Per-worker contributions ``d_i * V_i`` to the merged mixture.
        self._contributions = self._batches.astype(np.float64)[:, None] * self._matrix
        # The smoothed reference distribution: identical for every mask, so
        # the normalisation inside ``kl_divergence`` is hoisted out.
        self._target = np.asarray(target_distribution, dtype=np.float64)
        phi0 = normalize_distribution(self._target)
        phi0 = phi0 + _EPS
        self._phi0 = phi0 / phi0.sum()
        per_sample = np.asarray(bandwidth_per_sample, dtype=np.float64)
        if per_sample.ndim > 0:
            if per_sample.shape[0] != self._batches.shape[0]:
                raise SelectionError(
                    "bandwidth_per_sample vector and batch_sizes describe "
                    "different worker counts"
                )
            #: Per-worker occupied bandwidth when selected: ``d_i * c_i``.
            self._bandwidth_costs = self._batches.astype(np.float64) * per_sample
        else:
            self._bandwidth_costs = None
        self._bandwidth_per_sample = bandwidth_per_sample
        self._bandwidth_budget = bandwidth_budget
        self._incremental: IncrementalFitness | None = None

    def evaluate(self, masks: np.ndarray) -> np.ndarray:
        """Fitness of every row of ``masks`` (a ``(population, N)`` matrix).

        Duplicate individuals -- common once the GA starts converging --
        are evaluated once and their score broadcast back.
        """
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        unique, inverse = np.unique(masks, axis=0, return_inverse=True)
        if unique.shape[0] < masks.shape[0]:
            return self.evaluate(unique)[inverse]
        nonempty = masks.any(axis=1)
        fitness = np.full(masks.shape[0], 1e6)
        if not np.any(nonempty):
            return fitness
        # Masks whose selected workers all have zero batch size take the
        # scalar path's uniform-mean fallback; evaluate them one by one (a
        # degenerate case, unreachable from the engines where batches >= 1).
        sizes_all = masks @ self._batches
        degenerate = nonempty & (sizes_all == 0)
        if np.any(degenerate):
            for row in np.flatnonzero(degenerate):
                fitness[row] = _fitness(
                    masks[row], self._batches, self._matrix, self._target,
                    self._bandwidth_per_sample, self._bandwidth_budget,
                )
            nonempty = nonempty & ~degenerate
            if not np.any(nonempty):
                return fitness
        # Masked stack: unselected workers become exact-zero rows, so the
        # sequential sum over the worker axis reproduces the scalar path's
        # selected-rows sum bit for bit.
        stacked = masks[:, :, None] * self._contributions[None, :, :]
        mixture = stacked.sum(axis=1)[nonempty]
        sizes = sizes_all[nonempty]
        phi = mixture / sizes[:, None].astype(np.float64)
        # mixed_label_distribution normalises the mixture, kl_divergence
        # normalises again and applies epsilon smoothing; mirror all three.
        phi = phi / phi.sum(axis=1, keepdims=True)
        phi = phi / phi.sum(axis=1, keepdims=True)
        phi = phi + _EPS
        phi = phi / phi.sum(axis=1, keepdims=True)
        kl = np.sum(phi * np.log(phi / self._phi0[None, :]), axis=1)
        if self._bandwidth_costs is None:
            used = sizes.astype(np.float64) * self._bandwidth_per_sample
        else:
            # Per-row subset sums in ascending index order -- boolean
            # indexing compacts exactly like occupied_bandwidth's
            # ``costs[selected]``, so the vector path agrees bitwise with
            # the scalar helpers too.
            used = np.array(
                [float(self._bandwidth_costs[row].sum()) for row in masks[nonempty]]
            )
        budget = self._bandwidth_budget
        violation = np.maximum(0.0, used - budget) / budget
        utilisation = np.minimum(1.0, used / budget)
        fitness[nonempty] = kl + 10.0 * violation + 0.05 * (1.0 - utilisation)
        return fitness

    def incremental(self, mask: np.ndarray) -> "IncrementalFitness":
        """An O(classes)-per-flip evaluator anchored at ``mask``."""
        return IncrementalFitness(self, mask)

    def delta_evaluate(self, mask: np.ndarray, flip_index: int) -> float:
        """Fitness of ``mask`` with bit ``flip_index`` flipped, in O(classes).

        The cached mixture numerator/denominator is rebuilt (one ``(N,
        classes)`` reduction) only when ``mask`` differs from the previously
        anchored mask; scanning a 1-flip neighbourhood of one mask then
        costs O(classes) per candidate instead of re-reducing the full
        stack for every neighbour.
        """
        mask = np.asarray(mask, dtype=bool)
        cached = self._incremental
        if cached is None or not cached.matches(mask):
            cached = self._incremental = IncrementalFitness(self, mask)
        return cached.flip_score(int(flip_index))


class IncrementalFitness:
    """O(classes) neighbourhood fitness around an anchor mask.

    Local search and warm-started GA elites evaluate many 1-flip / 1-swap
    neighbours of a single current mask.  This helper caches the anchor's
    merged-mixture numerator ``sum_i d_i V_i``, its batch-size denominator
    and its occupied bandwidth, and scores each neighbour by adjusting
    those cached terms -- O(classes) per move instead of a full ``(N,
    classes)`` reduction.

    Numerics: after :meth:`resync` the anchor's :meth:`score` is
    bit-identical to :meth:`PopulationFitness.evaluate` (the cached terms
    are rebuilt with the same sequential worker-axis fold).  Neighbour
    scores can differ from a from-scratch evaluation only by float-addition
    reassociation in the numerator (empirically ~1e-15 relative; covered
    by a hypothesis property test).  Committed moves re-synchronise every
    :attr:`resync_interval` flips so drift never accumulates.
    """

    #: Committed flips between full recomputations of the cached terms.
    resync_interval: int = 64

    def __init__(self, parent: PopulationFitness, mask: np.ndarray) -> None:
        self._parent = parent
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != parent._batches.shape:
            raise SelectionError("mask length does not match the worker count")
        self._mask = mask.copy()
        self.resync()

    @property
    def mask(self) -> np.ndarray:
        """A copy of the current anchor mask."""
        return self._mask.copy()

    def matches(self, mask: np.ndarray) -> bool:
        """Whether ``mask`` equals the current anchor."""
        return bool(np.array_equal(self._mask, mask))

    def resync(self) -> None:
        """Rebuild the cached terms from scratch (bit-exact with evaluate)."""
        parent, mask = self._parent, self._mask
        # Non-last-axis sum: a sequential fold over the worker axis with
        # exact 0.0 rows for unselected workers -- the same reduction
        # PopulationFitness.evaluate applies.
        self._numerator = (mask[:, None] * parent._contributions).sum(axis=0)
        self._size = int(mask @ parent._batches)
        self._count = int(mask.sum())
        if parent._bandwidth_costs is not None:
            self._used = float(parent._bandwidth_costs[mask].sum())
        else:
            self._used = float(self._size) * parent._bandwidth_per_sample
        self._commits = 0

    def score(self) -> float:
        """Fitness of the anchor mask itself."""
        return self._assemble(
            self._count, self._numerator, self._size, self._used,
            lambda: self._mask.copy(),
        )

    def flip_score(self, index: int) -> float:
        """Fitness of the anchor with bit ``index`` flipped (not committed)."""
        count, numerator, size, used = self._flip_terms(index)

        def degenerate_mask() -> np.ndarray:
            mask = self._mask.copy()
            mask[index] = not mask[index]
            return mask

        return self._assemble(count, numerator, size, used, degenerate_mask)

    def flip_scores(self) -> np.ndarray:
        """Fitness of every 1-flip neighbour, in one vectorized pass.

        Bitwise identical to ``[flip_score(i) for i in range(N)]``: each
        row's terms are the same ``sign * contribution`` adjustment of the
        cached anchor terms, and the row-wise assembly mirrors the scalar
        one reduction for reduction.  One ``(N, classes)`` matrix op
        replaces N Python-level flip evaluations, which is what makes a
        full first-improvement sweep cheaper than a single GA generation.
        """
        parent = self._parent
        signs = np.where(self._mask, -1.0, 1.0)
        steps = np.where(self._mask, -1, 1).astype(np.int64)
        numerators = self._numerator[None, :] + signs[:, None] * parent._contributions
        sizes = self._size + steps * parent._batches
        counts = self._count + steps
        if parent._bandwidth_costs is not None:
            used = self._used + signs * parent._bandwidth_costs
        else:
            used = sizes.astype(np.float64) * parent._bandwidth_per_sample

        def degenerate_mask(row: int) -> np.ndarray:
            mask = self._mask.copy()
            mask[row] = not mask[row]
            return mask

        return self._assemble_many(counts, numerators, sizes, used, degenerate_mask)

    def swap_scores(self, add_indices: np.ndarray, remove_index: int) -> np.ndarray:
        """Fitness of swapping ``remove_index`` for each of ``add_indices``.

        The vectorized counterpart of :meth:`swap_score` -- bitwise
        identical to calling it once per candidate -- so a swap sweep costs
        one matrix op per removed worker instead of one Python-level
        evaluation per (add, remove) pair.
        """
        parent = self._parent
        adds = np.asarray(add_indices, dtype=np.int64)
        if not self._mask[remove_index] or bool(self._mask[adds].any()):
            raise SelectionError(
                "swap must add an unselected worker and remove a selected one"
            )
        numerators = (
            self._numerator[None, :] + parent._contributions[adds]
        ) - parent._contributions[remove_index][None, :]
        sizes = (
            self._size + parent._batches[adds]
        ) - int(parent._batches[remove_index])
        counts = np.full(adds.shape[0], self._count, dtype=np.int64)
        if parent._bandwidth_costs is not None:
            used = (
                self._used + parent._bandwidth_costs[adds]
            ) - float(parent._bandwidth_costs[remove_index])
        else:
            used = sizes.astype(np.float64) * parent._bandwidth_per_sample

        def degenerate_mask(row: int) -> np.ndarray:
            mask = self._mask.copy()
            mask[adds[row]] = True
            mask[remove_index] = False
            return mask

        return self._assemble_many(counts, numerators, sizes, used, degenerate_mask)

    def swap_score(self, add_index: int, remove_index: int) -> float:
        """Fitness after adding ``add_index`` and removing ``remove_index``."""
        parent = self._parent
        if not self._mask[remove_index] or self._mask[add_index]:
            raise SelectionError(
                "swap must add an unselected worker and remove a selected one"
            )
        numerator = (
            self._numerator
            + parent._contributions[add_index]
            - parent._contributions[remove_index]
        )
        size = (
            self._size
            + int(parent._batches[add_index])
            - int(parent._batches[remove_index])
        )
        if parent._bandwidth_costs is not None:
            used = (
                self._used
                + float(parent._bandwidth_costs[add_index])
                - float(parent._bandwidth_costs[remove_index])
            )
        else:
            used = float(size) * parent._bandwidth_per_sample

        def degenerate_mask() -> np.ndarray:
            mask = self._mask.copy()
            mask[add_index] = True
            mask[remove_index] = False
            return mask

        return self._assemble(self._count, numerator, size, used, degenerate_mask)

    def flip(self, index: int) -> None:
        """Commit a bit flip, updating the cached terms in O(classes)."""
        count, numerator, size, used = self._flip_terms(index)
        self._mask[index] = not self._mask[index]
        self._count, self._numerator, self._size, self._used = (
            count, numerator, size, used,
        )
        self._commits += 1
        if self._commits >= self.resync_interval:
            self.resync()

    def swap(self, add_index: int, remove_index: int) -> None:
        """Commit an add/remove pair."""
        self.flip(add_index)
        self.flip(remove_index)

    def _flip_terms(self, index: int) -> tuple[int, np.ndarray, int, float]:
        parent = self._parent
        adding = not self._mask[index]
        sign = 1.0 if adding else -1.0
        step = 1 if adding else -1
        numerator = self._numerator + sign * parent._contributions[index]
        size = self._size + step * int(parent._batches[index])
        count = self._count + step
        if parent._bandwidth_costs is not None:
            used = self._used + sign * float(parent._bandwidth_costs[index])
        else:
            # Scalar bandwidth derives exactly from the integer size, so
            # the scalar path never accumulates drift in ``used``.
            used = float(size) * parent._bandwidth_per_sample
        return count, numerator, size, used

    def _assemble(self, count, numerator, size, used, degenerate_mask) -> float:
        parent = self._parent
        if count == 0:
            return 1e6
        if size <= 0:
            # All-zero-batch selections take the scalar path's uniform-mean
            # fallback; rebuild the hypothetical mask only here (rare).
            return _fitness(
                degenerate_mask(), parent._batches, parent._matrix,
                parent._target, parent._bandwidth_per_sample,
                parent._bandwidth_budget,
            )
        phi = numerator / float(size)
        phi = phi / phi.sum()
        phi = phi / phi.sum()
        phi = phi + _EPS
        phi = phi / phi.sum()
        kl = float(np.sum(phi * np.log(phi / parent._phi0)))
        budget = parent._bandwidth_budget
        violation = max(0.0, used - budget) / budget
        utilisation = min(1.0, used / budget)
        return kl + 10.0 * violation + 0.05 * (1.0 - utilisation)

    def _assemble_many(self, counts, numerators, sizes, used,
                       degenerate_mask) -> np.ndarray:
        """Row-wise :meth:`_assemble`: same reductions, one matrix op.

        Sums run over the last (contiguous) axis, so each row reduces in
        the same order as the scalar path and the scores match bit for bit.
        """
        parent = self._parent
        scores = np.full(counts.shape[0], 1e6)
        live = counts > 0
        degenerate = live & (sizes <= 0)
        for row in np.flatnonzero(degenerate):
            scores[row] = _fitness(
                degenerate_mask(int(row)), parent._batches, parent._matrix,
                parent._target, parent._bandwidth_per_sample,
                parent._bandwidth_budget,
            )
        rows = live & ~degenerate
        if not np.any(rows):
            return scores
        phi = numerators[rows] / sizes[rows, None].astype(np.float64)
        phi = phi / phi.sum(axis=1, keepdims=True)
        phi = phi / phi.sum(axis=1, keepdims=True)
        phi = phi + _EPS
        phi = phi / phi.sum(axis=1, keepdims=True)
        kl = np.sum(phi * np.log(phi / parent._phi0[None, :]), axis=1)
        budget = parent._bandwidth_budget
        violation = np.maximum(0.0, used[rows] - budget) / budget
        utilisation = np.minimum(1.0, used[rows] / budget)
        scores[rows] = kl + 10.0 * violation + 0.05 * (1.0 - utilisation)
        return scores


def genetic_select(
    batch_sizes: np.ndarray,
    label_distributions: np.ndarray,
    target_distribution: np.ndarray,
    bandwidth_per_sample: float,
    bandwidth_budget: float,
    priorities: np.ndarray | None = None,
    population_size: int = 20,
    generations: int = 15,
    mutation_rate: float = 0.05,
    seed_fraction: float = 0.5,
    rng: np.random.Generator | None = None,
) -> SelectionResult:
    """Select the worker set ``S^h`` with a genetic algorithm (Alg. 1 line 5).

    Individuals are membership bit-masks over the workers.  The initial
    population is seeded with the ``m`` highest-priority workers (Eq. 13);
    evolution minimises the KL divergence of the merged label distribution
    under the ingress-bandwidth constraint (Eq. 10).

    Returns:
        The best individual found, decoded into a :class:`SelectionResult`.
    """
    rng = rng if rng is not None else new_rng()
    batch_sizes = np.asarray(batch_sizes, dtype=np.int64)
    label_distributions = np.atleast_2d(np.asarray(label_distributions))
    num_workers = batch_sizes.shape[0]
    if label_distributions.shape[0] != num_workers:
        raise SelectionError(
            "label_distributions and batch_sizes describe different worker counts"
        )
    if num_workers == 0:
        raise SelectionError("cannot select from zero workers")
    if priorities is None:
        priorities = np.ones(num_workers)
    priorities = np.asarray(priorities, dtype=np.float64)

    fitness = PopulationFitness(
        batch_sizes, label_distributions, target_distribution,
        bandwidth_per_sample, bandwidth_budget,
    )

    # Seed: the m highest-priority workers, plus random perturbations of it.
    seed_count = max(1, int(round(seed_fraction * num_workers)))
    priority_order = np.argsort(-priorities)
    seed_mask = np.zeros(num_workers, dtype=bool)
    seed_mask[priority_order[:seed_count]] = True

    population = [seed_mask.copy()]
    for __ in range(population_size - 1):
        individual = seed_mask.copy()
        flips = rng.random(num_workers) < 0.25
        individual[flips] = ~individual[flips]
        if not individual.any():
            individual[int(rng.integers(num_workers))] = True
        population.append(individual)

    scores = fitness.evaluate(np.stack(population))

    for __ in range(generations):
        new_population = [population[int(np.argmin(scores))].copy()]  # elitism
        while len(new_population) < population_size:
            # Tournament selection of two parents.
            contenders = rng.integers(0, population_size, size=4)
            parent_a = population[int(contenders[:2][np.argmin(scores[contenders[:2]])])]
            parent_b = population[int(contenders[2:][np.argmin(scores[contenders[2:]])])]
            # Uniform crossover.
            crossover = rng.random(num_workers) < 0.5
            child = np.where(crossover, parent_a, parent_b)
            # Bit-flip mutation.
            flips = rng.random(num_workers) < mutation_rate
            child = np.where(flips, ~child, child)
            if not child.any():
                child[int(rng.integers(num_workers))] = True
            new_population.append(child)
        population = new_population
        scores = fitness.evaluate(np.stack(population))

    best = population[int(np.argmin(scores))]
    selected = np.flatnonzero(best)
    phi = mixed_label_distribution(label_distributions, batch_sizes, selected)
    used = occupied_bandwidth(batch_sizes, selected, bandwidth_per_sample)
    return SelectionResult(
        selected=np.sort(selected),
        kl=kl_divergence(phi, target_distribution),
        feasible=used <= bandwidth_budget * (1.0 + 1e-9),
    )


def greedy_select(
    batch_sizes: np.ndarray,
    label_distributions: np.ndarray,
    target_distribution: np.ndarray,
    bandwidth_per_sample: "float | np.ndarray",
    bandwidth_budget: float,
    priorities: np.ndarray | None = None,
) -> SelectionResult:
    """Greedy baseline for the selection step (used by the ablation bench).

    Workers are added in priority order while they fit in the bandwidth
    budget and do not increase the KL divergence of the running mixture by
    more than they have to (each step picks the candidate whose addition
    yields the lowest mixture KL).

    The candidate scan is vectorized onto the precomputed contribution
    matrix ``d_i * V_i``: the running mixture numerator is maintained as a
    left fold in selection order -- exactly the reduction
    :func:`mixed_label_distribution` applies to the trial list, because the
    candidate is always appended last -- so every step scores all remaining
    candidates with one row-wise matrix reduction.  Results are
    bit-identical to the original O(N^2 C) Python loop over the scalar
    helpers (pinned by a regression test against that loop).
    """
    batch_sizes = np.asarray(batch_sizes, dtype=np.int64)
    if np.any(batch_sizes < 0):
        # Mirrors the check mixed_label_distribution applied per trial.
        raise ValueError("batch sizes must be non-negative")
    label_distributions = np.atleast_2d(
        np.asarray(label_distributions, dtype=np.float64)
    )
    num_workers = batch_sizes.shape[0]
    if priorities is None:
        priorities = np.ones(num_workers)
    contributions = batch_sizes.astype(np.float64)[:, None] * label_distributions
    # Smoothed reference distribution, hoisted out of kl_divergence.
    phi0 = normalize_distribution(np.asarray(target_distribution, dtype=np.float64))
    phi0 = phi0 + _EPS
    phi0 = phi0 / phi0.sum()
    vector_costs = None
    if np.ndim(bandwidth_per_sample) > 0:
        vector_costs = batch_sizes.astype(np.float64) * np.asarray(
            bandwidth_per_sample, dtype=np.float64
        )
    remaining = list(np.argsort(-np.asarray(priorities)))
    selected: list[int] = []
    # Left-fold mixture numerator over the selected workers, in selection
    # order; adding the candidate's contribution reproduces the scalar
    # path's trial-list fold bit for bit.
    numerator = np.zeros(label_distributions.shape[1], dtype=np.float64)
    size = 0
    while remaining:
        rem = np.asarray(remaining, dtype=np.int64)
        trial_sizes = size + batch_sizes[rem]
        if vector_costs is None:
            # Integer batch sums are exact in float64, so this equals the
            # scalar loop's per-trial occupied_bandwidth exactly.
            used = trial_sizes.astype(np.float64) * bandwidth_per_sample
        else:
            base = (
                float(vector_costs[np.asarray(selected, dtype=np.int64)].sum())
                if selected
                else 0.0
            )
            used = base + vector_costs[rem]
        feasible = used <= bandwidth_budget
        if not np.any(feasible):
            break
        kls = np.full(rem.shape[0], np.inf)
        candidates = np.flatnonzero(feasible)
        positive = trial_sizes[candidates] > 0
        good = candidates[positive]
        if good.size:
            mixtures = numerator[None, :] + contributions[rem[good]]
            phi = mixtures / trial_sizes[good, None].astype(np.float64)
            # mixed_label_distribution normalises the mixture and
            # kl_divergence normalises again with epsilon smoothing;
            # mirror all three row-wise (same chain as PopulationFitness).
            phi = phi / phi.sum(axis=1, keepdims=True)
            phi = phi / phi.sum(axis=1, keepdims=True)
            phi = phi + _EPS
            phi = phi / phi.sum(axis=1, keepdims=True)
            kls[good] = np.sum(phi * np.log(phi / phi0[None, :]), axis=1)
        # Trials whose batches sum to zero take the scalar path's
        # uniform-mean fallback (degenerate; unreachable from the engines).
        for pos in candidates[~positive]:
            trial = selected + [remaining[int(pos)]]
            kls[pos] = kl_divergence(
                mixed_label_distribution(label_distributions, batch_sizes, trial),
                target_distribution,
            )
        # argmin returns the first occurrence, matching the sequential
        # strict-< scan of the original loop.
        best_pos = int(np.argmin(kls))
        best_candidate = remaining[best_pos]
        selected.append(best_candidate)
        remaining.pop(best_pos)
        numerator = numerator + contributions[best_candidate]
        size = int(size + batch_sizes[best_candidate])
        if float(kls[best_pos]) < 1e-3 and len(selected) >= 2:
            break
    if not selected:
        # Always select at least the single highest-priority worker.
        selected = [int(np.argsort(-np.asarray(priorities))[0])]
    phi = mixed_label_distribution(label_distributions, batch_sizes, selected)
    used = occupied_bandwidth(batch_sizes, selected, bandwidth_per_sample)
    return SelectionResult(
        selected=np.sort(np.asarray(selected)),
        kl=kl_divergence(phi, target_distribution),
        feasible=used <= bandwidth_budget * (1.0 + 1e-9),
    )
